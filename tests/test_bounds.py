"""Unit tests for the analytic bounds module."""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    AUTH,
    ECHO,
    ParameterError,
    acceptance_latency,
    acceptance_spread,
    accuracy_excess,
    beta_max,
    beta_min,
    envelope_constants,
    gamma_max,
    gamma_min,
    long_run_rate_bounds,
    max_adjustment,
    messages_per_round_per_process,
    messages_per_round_total,
    precision_bound,
    require_valid,
    startup_precision_bound,
    theoretical_bounds,
    validate,
)
from repro.core.params import SyncParams, params_for


@pytest.fixture
def params() -> SyncParams:
    return params_for(7, authenticated=True, rho=1e-4, tdel=0.01, period=1.0)


def test_unknown_algorithm_rejected(params):
    with pytest.raises(ValueError):
        precision_bound(params, "nonsense")


def test_acceptance_spread_echo_is_twice_auth(params):
    assert acceptance_spread(params, AUTH) == pytest.approx(params.tdel)
    assert acceptance_spread(params, ECHO) == pytest.approx(2 * params.tdel)
    assert acceptance_latency(params, ECHO) == pytest.approx(2 * params.tdel)


def test_gamma_and_beta_ordering(params):
    for algorithm in (AUTH, ECHO):
        assert 0 < gamma_min(params, algorithm) < gamma_max(params, algorithm)
        assert 0 < beta_min(params, algorithm) < beta_max(params, algorithm)
        assert beta_max(params, algorithm) >= gamma_max(params, algorithm)


def test_precision_bound_positive_and_echo_larger(params):
    assert precision_bound(params, AUTH) > 0
    assert precision_bound(params, ECHO) > precision_bound(params, AUTH)


def test_precision_bound_increases_with_tdel(params):
    larger = params.with_(tdel=0.02)
    assert precision_bound(larger, AUTH) > precision_bound(params, AUTH)


def test_precision_bound_increases_with_rho(params):
    larger = params.with_(rho=1e-3)
    assert precision_bound(larger, AUTH) > precision_bound(params, AUTH)


def test_precision_bound_exceeds_delay_uncertainty(params):
    # Skew cannot be bounded below the single-hop delay uncertainty.
    assert precision_bound(params, AUTH) >= params.tdel - params.tmin


def test_startup_precision_at_least_steady(params):
    spread = params.with_(initial_offset_spread=0.2)
    assert startup_precision_bound(spread, AUTH) >= precision_bound(spread, AUTH)
    assert startup_precision_bound(spread, AUTH) >= 0.2


def test_rate_bounds_bracket_one(params):
    rate_min, rate_max = long_run_rate_bounds(params, AUTH)
    assert rate_min < 1.0 < rate_max


def test_rate_bounds_converge_to_hardware_as_period_grows(params):
    small_p = params.with_(period=0.5)
    large_p = params.with_(period=50.0)
    excess_small = accuracy_excess(small_p, AUTH)[1]
    excess_large = accuracy_excess(large_p, AUTH)[1]
    assert excess_large < excess_small
    assert excess_large < 0.01


def test_accuracy_excess_independent_of_n_and_f(params):
    other = params_for(25, authenticated=True, rho=params.rho, tdel=params.tdel, period=params.period)
    assert accuracy_excess(params, AUTH) == pytest.approx(accuracy_excess(other, AUTH))


def test_rate_bounds_raise_when_period_too_short(params):
    tiny = params.with_(period=0.012)
    with pytest.raises(ParameterError):
        long_run_rate_bounds(tiny, AUTH)


def test_envelope_constants_positive(params):
    a, b = envelope_constants(params, AUTH)
    assert a > 0 and b > 0


def test_max_adjustment_positive_and_bounded_by_period(params):
    adj = max_adjustment(params, AUTH)
    assert 0 < adj < params.period


def test_message_complexity(params):
    assert messages_per_round_per_process(params, AUTH) == 2 * (params.n - 1)
    assert messages_per_round_total(params, AUTH) == (params.n - params.f) * 2 * (params.n - 1)


def test_validate_accepts_good_parameters(params):
    assert validate(params, AUTH) == []
    require_valid(params, AUTH)  # should not raise


def test_validate_rejects_resilience_violation():
    params = SyncParams(n=6, f=3)
    assert any("n > 2f" in issue for issue in validate(params, AUTH))
    echo_params = SyncParams(n=6, f=2)
    assert any("n > 3f" in issue for issue in validate(echo_params, ECHO))


def test_validate_rejects_alpha_at_least_period(params):
    bad = params.with_(alpha=2.0)
    assert any("smaller than the period" in issue for issue in validate(bad, AUTH))


def test_validate_rejects_too_small_alpha(params):
    bad = params.with_(alpha=0.001)
    assert any("recommended" in issue for issue in validate(bad, AUTH))


def test_validate_rejects_too_short_period(params):
    bad = params.with_(period=0.021, alpha=0.0201)
    issues = validate(bad, AUTH)
    assert issues  # several conditions fire


def test_validate_rejects_huge_initial_spread(params):
    bad = params.with_(initial_offset_spread=5.0)
    assert any("initial_offset_spread" in issue for issue in validate(bad, AUTH))


def test_require_valid_raises_parameter_error():
    with pytest.raises(ParameterError):
        require_valid(SyncParams(n=6, f=3), AUTH)


def test_theoretical_bounds_record(params):
    bounds = theoretical_bounds(params, AUTH)
    assert bounds.algorithm == AUTH
    assert bounds.resilience == 3
    assert bounds.precision == pytest.approx(precision_bound(params, AUTH))
    assert bounds.beta_min < bounds.beta_max
    as_dict = bounds.as_dict()
    assert as_dict["precision"] == bounds.precision
    assert "rate_max" in as_dict


def test_theoretical_bounds_echo_resilience():
    params = params_for(7, authenticated=False)
    bounds = theoretical_bounds(params, ECHO)
    assert bounds.resilience == 2
    assert bounds.sigma == pytest.approx(2 * params.tdel)


def test_theoretical_bounds_rejects_invalid():
    with pytest.raises(ParameterError):
        theoretical_bounds(SyncParams(n=6, f=3), AUTH)
