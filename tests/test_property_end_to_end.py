"""Property-based end-to-end tests.

Hypothesis draws model parameters, adversary strategies and seeds, and the
paper's guarantees must hold for every draw.  Example counts are kept modest
because each example is a full simulation.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import metrics
from repro.core.bounds import AUTH, ECHO, precision_bound
from repro.core.params import params_for
from repro.workloads.scenarios import Scenario, run_scenario

FAST = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(
    n=st.integers(min_value=3, max_value=9),
    rho=st.sampled_from([1e-5, 1e-4, 1e-3]),
    tdel=st.sampled_from([0.005, 0.01, 0.02]),
    attack=st.sampled_from(["eager", "two_faced", "skew_max", "silent"]),
    clock_mode=st.sampled_from(["extreme", "random"]),
    delay_mode=st.sampled_from(["targeted", "uniform", "max", "min"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@FAST
def test_property_auth_precision_bound_holds(n, rho, tdel, attack, clock_mode, delay_mode, seed):
    params = params_for(n, authenticated=True, rho=rho, tdel=tdel, period=1.0, initial_offset_spread=tdel / 2)
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack=attack,
        rounds=5,
        clock_mode=clock_mode,
        delay_mode=delay_mode,
        seed=seed,
    )
    result = run_scenario(scenario, check_guarantees=False)
    assert result.completed_round >= 5
    assert result.precision <= precision_bound(params, AUTH) + 1e-9
    assert result.acceptance_spread <= tdel + 1e-9


@given(
    n=st.integers(min_value=4, max_value=10),
    rho=st.sampled_from([1e-4, 1e-3]),
    attack=st.sampled_from(["eager", "two_faced", "skew_max", "silent"]),
    delay_mode=st.sampled_from(["targeted", "uniform"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
@FAST
def test_property_echo_precision_bound_holds(n, rho, attack, delay_mode, seed):
    params = params_for(n, authenticated=False, rho=rho, tdel=0.01, period=1.0, initial_offset_spread=0.005)
    scenario = Scenario(
        params=params,
        algorithm="echo",
        attack=attack,
        rounds=5,
        clock_mode="extreme",
        delay_mode=delay_mode,
        seed=seed,
    )
    result = run_scenario(scenario, check_guarantees=False)
    assert result.completed_round >= 5
    assert result.precision <= precision_bound(params, ECHO) + 1e-9
    assert result.acceptance_spread <= 2 * 0.01 + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    join_at=st.floats(min_value=1.2, max_value=4.5),
)
@FAST
def test_property_joiner_always_integrates(seed, join_at):
    params = params_for(7, authenticated=True, initial_offset_spread=0.005)
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack="eager",
        rounds=7,
        joiner_count=1,
        join_time=join_at,
        clock_mode="random",
        delay_mode="uniform",
        seed=seed,
    )
    result = run_scenario(scenario, check_guarantees=False)
    joiner = scenario.joiner_pids[0]
    resyncs = result.trace.processes[joiner].resyncs
    assert resyncs, "the joiner must synchronize"
    assert resyncs[0].time - join_at <= 1.2 * params.period


@given(seed=st.integers(min_value=0, max_value=10_000), boot_spread=st.floats(min_value=0.0, max_value=0.3))
@FAST
def test_property_startup_always_converges(seed, boot_spread):
    params = params_for(5, authenticated=True, initial_offset_spread=0.05)
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack="silent",
        rounds=4,
        use_startup=True,
        boot_spread=boot_spread,
        clock_mode="random",
        delay_mode="uniform",
        seed=seed,
    )
    result = run_scenario(scenario, check_guarantees=False)
    settled = metrics.skew_after_round(result.trace, 1)
    assert settled is not None
    assert settled <= precision_bound(params, AUTH) + 1e-9
