"""Unit and property tests for the hardware clock models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clocks import (
    FixedRateClock,
    PiecewiseLinearClock,
    drifting_clock,
    fastest_clock,
    rate_bounds,
    slowest_clock,
    spread_offsets,
)


# -- rate_bounds -----------------------------------------------------------------


def test_rate_bounds_values():
    lo, hi = rate_bounds(0.01)
    assert hi == pytest.approx(1.01)
    assert lo == pytest.approx(1 / 1.01)


def test_rate_bounds_zero_drift():
    assert rate_bounds(0.0) == (1.0, 1.0)


def test_rate_bounds_rejects_negative():
    with pytest.raises(ValueError):
        rate_bounds(-0.1)


# -- FixedRateClock --------------------------------------------------------------


def test_fixed_rate_read():
    clock = FixedRateClock(rate=2.0, offset=1.0)
    assert clock.read(0.0) == 1.0
    assert clock.read(3.0) == 7.0


def test_fixed_rate_invert_roundtrip():
    clock = FixedRateClock(rate=1.5, offset=0.5)
    for t in [0.0, 0.1, 1.0, 17.3]:
        assert clock.invert(clock.read(t)) == pytest.approx(t)


def test_fixed_rate_invert_below_offset_clamps_to_zero():
    clock = FixedRateClock(rate=1.0, offset=5.0)
    assert clock.invert(2.0) == 0.0


def test_fixed_rate_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        FixedRateClock(rate=0.0)
    with pytest.raises(ValueError):
        FixedRateClock(rate=-1.0)


def test_fixed_rate_bounds_and_breakpoints():
    clock = FixedRateClock(rate=1.25, offset=0.0)
    assert clock.min_rate == clock.max_rate == 1.25
    assert list(clock.breakpoints()) == []


def test_fastest_and_slowest_clock_respect_drift():
    rho = 0.02
    assert fastest_clock(rho).respects_drift(rho)
    assert slowest_clock(rho).respects_drift(rho)
    assert not FixedRateClock(rate=1.05).respects_drift(0.01)


# -- PiecewiseLinearClock --------------------------------------------------------------


def test_piecewise_read_matches_manual_integration():
    clock = PiecewiseLinearClock([(0.0, 1.0), (10.0, 2.0), (20.0, 0.5)], offset=3.0)
    assert clock.read(0.0) == 3.0
    assert clock.read(5.0) == pytest.approx(8.0)
    assert clock.read(10.0) == pytest.approx(13.0)
    assert clock.read(15.0) == pytest.approx(23.0)
    assert clock.read(25.0) == pytest.approx(33.0 + 0.5 * 5.0 - 10.0 + 10)  # 20->25 at rate 0.5 from value 33
    assert clock.read(25.0) == pytest.approx(clock.read(20.0) + 2.5)


def test_piecewise_invert_roundtrip():
    clock = PiecewiseLinearClock([(0.0, 1.0), (2.0, 0.8), (7.0, 1.3)], offset=1.0)
    for t in [0.0, 1.0, 2.0, 3.5, 7.0, 12.0]:
        assert clock.invert(clock.read(t)) == pytest.approx(t)


def test_piecewise_requires_first_segment_at_zero():
    with pytest.raises(ValueError):
        PiecewiseLinearClock([(1.0, 1.0)])


def test_piecewise_requires_increasing_starts():
    with pytest.raises(ValueError):
        PiecewiseLinearClock([(0.0, 1.0), (5.0, 1.1), (5.0, 1.2)])


def test_piecewise_requires_positive_rates():
    with pytest.raises(ValueError):
        PiecewiseLinearClock([(0.0, 1.0), (1.0, 0.0)])


def test_piecewise_requires_nonempty():
    with pytest.raises(ValueError):
        PiecewiseLinearClock([])


def test_piecewise_breakpoints_exclude_zero():
    clock = PiecewiseLinearClock([(0.0, 1.0), (3.0, 1.1), (9.0, 0.9)])
    assert list(clock.breakpoints()) == [3.0, 9.0]


def test_piecewise_rate_extremes():
    clock = PiecewiseLinearClock([(0.0, 0.9), (1.0, 1.2)])
    assert clock.min_rate == 0.9
    assert clock.max_rate == 1.2


def test_piecewise_negative_time_reads_offset():
    clock = PiecewiseLinearClock([(0.0, 1.0)], offset=2.0)
    assert clock.read(-1.0) == 2.0


# -- drifting_clock -------------------------------------------------------------------


def test_drifting_clock_respects_drift_bound():
    clock = drifting_clock(rho=0.01, seed=3, segment_length=5.0, horizon=100.0)
    assert clock.respects_drift(0.01)


def test_drifting_clock_is_deterministic_per_seed():
    a = drifting_clock(rho=0.001, seed=7, horizon=50.0)
    b = drifting_clock(rho=0.001, seed=7, horizon=50.0)
    c = drifting_clock(rho=0.001, seed=8, horizon=50.0)
    assert a.read(33.3) == b.read(33.3)
    assert a.read(33.3) != c.read(33.3)


def test_drifting_clock_offset_applied():
    clock = drifting_clock(rho=0.001, offset=4.0, seed=1)
    assert clock.read(0.0) == 4.0


def test_drifting_clock_rejects_bad_segment_length():
    with pytest.raises(ValueError):
        drifting_clock(rho=0.001, segment_length=0.0)


# -- spread_offsets -----------------------------------------------------------------------


def test_spread_offsets_pins_extremes():
    offsets = spread_offsets(5, 0.3, seed=2)
    assert offsets[0] == 0.0
    assert offsets[1] == 0.3
    assert all(0.0 <= x <= 0.3 for x in offsets)
    assert len(offsets) == 5


def test_spread_offsets_single_process():
    assert spread_offsets(1, 0.5) == [0.0]


def test_spread_offsets_validation():
    with pytest.raises(ValueError):
        spread_offsets(0, 0.1)
    with pytest.raises(ValueError):
        spread_offsets(3, -0.1)


# -- property-based ------------------------------------------------------------------------


@st.composite
def piecewise_clocks(draw):
    n_segments = draw(st.integers(min_value=1, max_value=6))
    starts = [0.0]
    for _ in range(n_segments - 1):
        starts.append(starts[-1] + draw(st.floats(min_value=0.1, max_value=20.0)))
    rates = [draw(st.floats(min_value=0.5, max_value=2.0)) for _ in range(n_segments)]
    offset = draw(st.floats(min_value=0.0, max_value=10.0))
    return PiecewiseLinearClock(list(zip(starts, rates)), offset=offset)


@given(piecewise_clocks(), st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=80)
def test_property_clock_is_strictly_increasing(clock, t):
    assert clock.read(t + 1.0) > clock.read(t)


@given(piecewise_clocks(), st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=80)
def test_property_invert_is_inverse_of_read(clock, t):
    assert clock.invert(clock.read(t)) == pytest.approx(t, abs=1e-6)


@given(piecewise_clocks(), st.floats(min_value=0.0, max_value=100.0), st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=80)
def test_property_clock_advance_within_rate_bounds(clock, t1, dt):
    t2 = t1 + dt
    advance = clock.read(t2) - clock.read(t1)
    assert advance <= clock.max_rate * dt + 1e-9
    assert advance >= clock.min_rate * dt - 1e-9
