"""Integration tests: the non-authenticated (echo) synchronizer as a whole system."""

from __future__ import annotations

import pytest

from repro.analysis import metrics
from repro.core.bounds import ECHO, beta_max, beta_min, precision_bound
from repro.core.params import params_for
from repro.faults.strategies import TOLERATED_ATTACKS
from repro.workloads.scenarios import Scenario, run_scenario

ROUNDS = 8


def run_echo(n=7, attack="eager", rounds=ROUNDS, seed=0, **kwargs):
    params = kwargs.pop("params", None) or params_for(
        n, authenticated=False, rho=1e-4, tdel=0.01, period=1.0, initial_offset_spread=0.005
    )
    scenario = Scenario(
        params=params,
        algorithm="echo",
        attack=attack,
        rounds=rounds,
        clock_mode=kwargs.pop("clock_mode", "extreme"),
        delay_mode=kwargs.pop("delay_mode", "targeted"),
        seed=seed,
        **kwargs,
    )
    return run_scenario(scenario)


def test_benign_run_meets_all_guarantees():
    result = run_echo(attack="silent", delay_mode="uniform", clock_mode="random")
    assert result.completed_round >= ROUNDS
    assert result.guarantees_hold, result.guarantees.describe()


def test_precision_under_worst_case_conditions():
    result = run_echo(attack="skew_max")
    assert result.precision <= precision_bound(result.params, ECHO)
    assert result.guarantees_hold, result.guarantees.describe()


@pytest.mark.parametrize("attack", list(TOLERATED_ATTACKS))
def test_guarantees_hold_under_every_tolerated_attack(attack):
    result = run_echo(attack=attack, seed=abs(hash(attack)) % 1000)
    assert result.completed_round >= ROUNDS
    assert result.guarantees_hold, result.guarantees.describe()


@pytest.mark.parametrize("n", [4, 5, 7, 10, 13])
def test_various_system_sizes_at_max_faults(n):
    result = run_echo(n=n, attack="eager", seed=n)
    assert result.completed_round >= ROUNDS
    assert result.guarantees_hold, result.guarantees.describe()


def test_acceptance_spread_bounded_by_two_delays():
    result = run_echo(attack="eager")
    assert result.acceptance_spread <= 2 * result.params.tdel + 1e-9


def test_resync_intervals_within_beta_bounds():
    result = run_echo(attack="skew_max")
    stats = result.period_stats
    assert stats.minimum >= beta_min(result.params, ECHO) - 1e-9
    assert stats.maximum <= beta_max(result.params, ECHO) + 1e-9


def test_liveness_every_round_accepted_by_everyone():
    result = run_echo(attack="two_faced")
    assert metrics.liveness(result.trace, ROUNDS)


def test_skew_does_not_grow_over_time():
    result = run_echo(attack="skew_max", rounds=12)
    half = result.trace.end_time / 2
    assert metrics.max_skew(result.trace, t_start=half) <= precision_bound(result.params, ECHO)


def test_larger_drift_still_within_its_bound():
    params = params_for(7, authenticated=False, rho=2e-3, tdel=0.01, period=1.0, initial_offset_spread=0.005)
    result = run_echo(params=params, attack="skew_max")
    assert result.guarantees_hold, result.guarantees.describe()


def test_echo_uses_no_signatures_at_all():
    result = run_echo(attack="silent", delay_mode="uniform")
    assert "SignedRound" not in result.trace.message_stats
    assert "SignatureBundle" not in result.trace.message_stats
    assert result.trace.message_stats.get("InitMessage", 0) > 0
    assert result.trace.message_stats.get("EchoMessage", 0) > 0


def test_auth_tolerates_more_faults_than_echo_for_same_n():
    """The resilience gap the paper is about: at n=7 auth tolerates f=3, echo only f=2."""
    auth_params = params_for(7, authenticated=True)
    echo_params = params_for(7, authenticated=False)
    assert auth_params.f == 3 and echo_params.f == 2
    auth_result = run_scenario(
        Scenario(params=auth_params, algorithm="auth", attack="eager", rounds=6, seed=1,
                 clock_mode="extreme", delay_mode="targeted")
    )
    assert auth_result.guarantees_hold
