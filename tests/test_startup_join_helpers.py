"""Unit tests for the start-up and join helper functions."""

from __future__ import annotations

import pytest

from repro.core.join import join_latency_bound, join_time, joined
from repro.core.params import params_for
from repro.core.startup import startup_completion_bound, staggered_boot_times
from repro.sim.clocks import FixedRateClock
from repro.sim.trace import ResyncEvent, Trace


def test_staggered_boot_times_pin_extremes():
    times = staggered_boot_times(6, 0.4, seed=1)
    assert times[0] == 0.0
    assert times[1] == 0.4
    assert all(0.0 <= t <= 0.4 for t in times)
    assert len(times) == 6


def test_staggered_boot_times_single_and_validation():
    assert staggered_boot_times(1, 0.5) == [0.0]
    with pytest.raises(ValueError):
        staggered_boot_times(0, 0.5)
    with pytest.raises(ValueError):
        staggered_boot_times(3, -0.1)


def test_staggered_boot_times_deterministic():
    assert staggered_boot_times(5, 0.2, seed=9) == staggered_boot_times(5, 0.2, seed=9)


def test_startup_completion_bound_grows_with_spread():
    params = params_for(7, authenticated=True)
    assert startup_completion_bound(params, 0.5) > startup_completion_bound(params, 0.0)
    assert startup_completion_bound(params, 0.0) > params.period  # includes the round-1 fallback


def test_startup_completion_bound_echo_larger_than_auth():
    params = params_for(7, authenticated=False)
    assert startup_completion_bound(params, 0.1, "echo") > startup_completion_bound(params, 0.1, "auth")


def test_join_latency_bound_exceeds_period():
    params = params_for(7, authenticated=True)
    assert join_latency_bound(params, "auth") > params.period * 0.9


def make_trace_with_joiner(joined_at=None):
    trace = Trace()
    trace.add_process(0, FixedRateClock())
    trace.add_process(9, FixedRateClock())
    if joined_at is not None:
        trace.record_resync(ResyncEvent(pid=9, round=3, time=joined_at, logical_before=0, logical_after=3.01))
    trace.end_time = 10.0
    return trace


def test_joined_and_join_time():
    trace = make_trace_with_joiner(joined_at=3.4)
    assert joined(trace, 9)
    assert join_time(trace, 9, boot_time=2.9) == pytest.approx(0.5)


def test_join_time_raises_if_never_joined():
    trace = make_trace_with_joiner(joined_at=None)
    assert not joined(trace, 9)
    with pytest.raises(ValueError):
        join_time(trace, 9, boot_time=1.0)
