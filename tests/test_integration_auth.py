"""Integration tests: the authenticated synchronizer as a whole system.

Every test runs a full multi-process simulation and checks the paper's
guarantees through the exact trace measurements.
"""

from __future__ import annotations

import pytest

from repro.analysis import metrics
from repro.core.bounds import AUTH, beta_max, beta_min, precision_bound
from repro.core.params import params_for
from repro.faults.strategies import TOLERATED_ATTACKS
from repro.workloads.scenarios import Scenario, run_scenario

ROUNDS = 8


def run_auth(n=7, attack="eager", rounds=ROUNDS, seed=0, **kwargs):
    params = kwargs.pop("params", None) or params_for(
        n, authenticated=True, rho=1e-4, tdel=0.01, period=1.0, initial_offset_spread=0.005
    )
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack=attack,
        rounds=rounds,
        clock_mode=kwargs.pop("clock_mode", "extreme"),
        delay_mode=kwargs.pop("delay_mode", "targeted"),
        seed=seed,
        **kwargs,
    )
    return run_scenario(scenario)


def test_benign_run_meets_all_guarantees():
    result = run_auth(attack="silent", delay_mode="uniform", clock_mode="random")
    assert result.completed_round >= ROUNDS
    assert result.guarantees_hold, result.guarantees.describe()


def test_precision_under_worst_case_clocks_and_delays():
    result = run_auth(attack="skew_max")
    bound = precision_bound(result.params, AUTH)
    assert result.precision <= bound
    assert result.guarantees_hold, result.guarantees.describe()


@pytest.mark.parametrize("attack", list(TOLERATED_ATTACKS))
def test_guarantees_hold_under_every_tolerated_attack(attack):
    result = run_auth(attack=attack, seed=abs(hash(attack)) % 1000)
    assert result.completed_round >= ROUNDS
    assert result.guarantees_hold, result.guarantees.describe()


@pytest.mark.parametrize("n", [3, 4, 5, 8, 11])
def test_various_system_sizes_at_max_faults(n):
    result = run_auth(n=n, attack="eager", seed=n)
    assert result.completed_round >= ROUNDS
    assert result.guarantees_hold, result.guarantees.describe()


def test_liveness_every_round_accepted_by_everyone():
    result = run_auth(attack="two_faced")
    assert metrics.liveness(result.trace, ROUNDS)
    for ptrace in result.trace.honest():
        assert ptrace.rounds_accepted()[: ROUNDS] == list(range(1, ROUNDS + 1))


def test_acceptance_spread_bounded_by_one_delay():
    result = run_auth(attack="eager")
    assert result.acceptance_spread <= result.params.tdel + 1e-9


def test_resync_intervals_within_beta_bounds():
    result = run_auth(attack="skew_max")
    stats = result.period_stats
    assert stats.minimum >= beta_min(result.params, AUTH) - 1e-9
    assert stats.maximum <= beta_max(result.params, AUTH) + 1e-9


def test_skew_does_not_grow_over_time():
    """Precision in the second half of the run is no worse than the bound --
    i.e. the algorithm holds the system together indefinitely."""
    result = run_auth(attack="skew_max", rounds=12)
    half = result.trace.end_time / 2
    late_skew = metrics.max_skew(result.trace, t_start=half)
    assert late_skew <= precision_bound(result.params, AUTH)


def test_logical_clocks_stay_close_to_real_time():
    result = run_auth(attack="silent", delay_mode="uniform", clock_mode="random")
    assert result.accuracy is not None
    # Over ~8 periods the worst offset stays well below one period.
    assert result.accuracy.worst_offset_from_real_time < result.params.period / 2


def test_min_delay_adversary_is_also_tolerated():
    result = run_auth(attack="eager", delay_mode="min")
    assert result.guarantees_hold, result.guarantees.describe()


def test_max_delay_adversary_is_also_tolerated():
    result = run_auth(attack="eager", delay_mode="max")
    assert result.guarantees_hold, result.guarantees.describe()


def test_larger_drift_still_within_its_bound():
    params = params_for(7, authenticated=True, rho=2e-3, tdel=0.01, period=1.0, initial_offset_spread=0.005)
    result = run_auth(params=params, attack="skew_max")
    assert result.guarantees_hold, result.guarantees.describe()


def test_longer_period_still_within_its_bound():
    params = params_for(5, authenticated=True, rho=1e-3, tdel=0.02, period=5.0, initial_offset_spread=0.01)
    result = run_auth(params=params, attack="eager", rounds=4)
    assert result.guarantees_hold, result.guarantees.describe()


def test_crash_faults_do_not_affect_survivors():
    result = run_auth(attack="crash")
    assert result.guarantees_hold, result.guarantees.describe()


def test_monotonic_variant_keeps_clocks_monotone_and_synchronized():
    result = run_scenario(
        Scenario(
            params=params_for(7, authenticated=True, initial_offset_spread=0.005),
            algorithm="auth",
            attack="skew_max",
            rounds=ROUNDS,
            clock_mode="extreme",
            delay_mode="targeted",
            monotonic=True,
            seed=5,
        ),
        check_guarantees=False,
    )
    assert metrics.max_backward_adjustment(result.trace, skip_first=0) == 0.0
    assert result.precision <= precision_bound(result.params, AUTH)


def test_guarantee_report_lists_expected_checks():
    result = run_auth(attack="eager")
    names = {check.name for check in result.guarantees.checks}
    assert {"precision", "acceptance_spread", "period_min", "period_max", "liveness"} <= names
