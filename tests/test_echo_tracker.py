"""Unit and property tests for the non-authenticated (echo) broadcast primitive."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.broadcast.echo import EchoTracker
from repro.broadcast.primitive import PrimitiveActions


def test_requires_n_greater_than_3f():
    with pytest.raises(ValueError):
        EchoTracker(n=6, f=2)
    with pytest.raises(ValueError):
        EchoTracker(n=0, f=0)
    with pytest.raises(ValueError):
        EchoTracker(n=4, f=-1)
    EchoTracker(n=7, f=2)  # fine


def test_thresholds_derived_from_f():
    tracker = EchoTracker(n=7, f=2)
    assert tracker.echo_threshold == 3
    assert tracker.accept_threshold == 5


def test_echo_triggered_by_f_plus_1_inits():
    tracker = EchoTracker(n=4, f=1)
    assert tracker.record_init(1, 0) == PrimitiveActions()
    actions = tracker.record_init(1, 1)
    assert actions.send_echo and not actions.accept


def test_echo_triggered_by_f_plus_1_echoes():
    tracker = EchoTracker(n=4, f=1)
    tracker.record_echo(1, 0)
    actions = tracker.record_echo(1, 1)
    assert actions.send_echo


def test_echo_requested_only_until_marked():
    tracker = EchoTracker(n=4, f=1)
    tracker.record_init(1, 0)
    actions = tracker.record_init(1, 1)
    assert actions.send_echo
    tracker.mark_echoed(1)
    actions = tracker.record_init(1, 2)
    assert not actions.send_echo
    assert tracker.has_echoed(1)


def test_accept_on_2f_plus_1_echoes():
    tracker = EchoTracker(n=4, f=1)
    tracker.record_echo(1, 0)
    tracker.record_echo(1, 1)
    actions = tracker.record_echo(1, 2)
    assert actions.accept
    assert tracker.reached(1)


def test_accept_reported_only_once():
    tracker = EchoTracker(n=4, f=1)
    for sender in range(3):
        tracker.record_echo(1, sender)
    actions = tracker.record_echo(1, 3)
    assert not actions.accept
    assert tracker.reached(1)


def test_duplicate_senders_not_double_counted():
    tracker = EchoTracker(n=4, f=1)
    for _ in range(5):
        tracker.record_echo(1, 0)
    assert tracker.support(1) == 1
    assert not tracker.reached(1)


def test_own_init_and_echo_count():
    tracker = EchoTracker(n=4, f=1)
    actions = tracker.note_own_init(1, own_pid=0)
    assert not actions.send_echo
    tracker.record_init(1, 1)
    assert tracker.init_support(1) == 2
    actions = tracker.note_own_echo(1, own_pid=0)
    assert tracker.has_echoed(1)
    assert tracker.support(1) == 1
    assert isinstance(actions, PrimitiveActions)


def test_unforgeability_f_echoes_alone_do_not_accept():
    """f faulty echoes alone can neither trigger honest echoes nor acceptance."""
    tracker = EchoTracker(n=7, f=2)
    actions = PrimitiveActions()
    for faulty in range(2):
        actions = actions | tracker.record_echo(1, faulty)
    assert not actions.send_echo
    assert not actions.accept
    assert not tracker.reached(1)


def test_floor_ignores_stale_rounds():
    tracker = EchoTracker(n=4, f=1)
    tracker.record_init(1, 0)
    tracker.set_floor(2)
    assert tracker.init_support(1) == 0
    assert tracker.record_init(1, 1) == PrimitiveActions()
    assert tracker.rounds_with_support() == []


def test_lookahead_cap():
    tracker = EchoTracker(n=4, f=1, max_round_lookahead=5)
    assert tracker.record_init(100, 0) == PrimitiveActions()
    assert tracker.init_support(100) == 0


def test_reached_rounds_minimum_filter():
    tracker = EchoTracker(n=4, f=1)
    for r in (1, 3):
        for sender in range(3):
            tracker.record_echo(r, sender)
    assert tracker.reached_rounds() == [1, 3]
    assert tracker.reached_rounds(minimum_round=2) == [3]


def test_primitive_actions_or_combines():
    a = PrimitiveActions(send_echo=True, accept=False)
    b = PrimitiveActions(send_echo=False, accept=True)
    combined = a | b
    assert combined.send_echo and combined.accept


@given(
    events=st.lists(
        st.tuples(st.sampled_from(["init", "echo"]), st.integers(min_value=0, max_value=6)),
        min_size=0,
        max_size=60,
    ),
    f=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=80)
def test_property_accept_iff_2f_plus_1_distinct_echoers(events, f):
    """Acceptance is equivalent to having received echoes from 2f+1 distinct senders,
    regardless of the interleaving of inits and echoes and of duplicates."""
    tracker = EchoTracker(n=7, f=f)
    accepted_via_action = False
    for kind, sender in events:
        if kind == "init":
            actions = tracker.record_init(1, sender)
        else:
            actions = tracker.record_echo(1, sender)
        accepted_via_action = accepted_via_action or actions.accept
    echoers = {s for kind, s in events if kind == "echo"}
    assert tracker.reached(1) == (len(echoers) >= 2 * f + 1)
    assert accepted_via_action == tracker.reached(1)


@given(
    inits=st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=30),
    f=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=80)
def test_property_echo_request_iff_f_plus_1_distinct_inits(inits, f):
    tracker = EchoTracker(n=7, f=f)
    requested = False
    for sender in inits:
        requested = requested or tracker.record_init(1, sender).send_echo
    assert requested == (len(set(inits)) >= f + 1)
