"""Executor backends: protocol framing, fault-tolerant scheduling, lifecycle.

The fault-injection suite for :mod:`repro.runner.exec`: worker crashes
mid-chunk, wedged workers, exhausted retry budgets, work stealing, and -- the
acceptance contract -- float-for-float result parity between the subprocess
wire backend and the serial path, including across an injected worker kill.
"""

from __future__ import annotations

import dataclasses
import io
import os
import signal
import time

import pytest

from repro.analysis.serialize import result_to_json
from repro.experiments.common import default_params, stable_seed
from repro.runner import (
    ExecutorFailure,
    LocalPoolExecutor,
    SSHExecutor,
    SubprocessWorkerExecutor,
    SweepRunner,
    configure,
    get_runner,
    make_executor,
    reset_runner,
)
from repro.runner.exec import faultinject
from repro.runner.exec.protocol import ProtocolError, read_frame, write_frame
from repro.runner.exec.remote import SSHConfigError
from repro.workloads.scenarios import Scenario

from test_shard_merge import _parity_grid

#: A short, capped worker heartbeat so the suite's failure detection is fast.
FAST = dict(heartbeat_interval=0.1, heartbeat_timeout=2.0)


@pytest.fixture(autouse=True)
def _isolated_default_runner():
    reset_runner()
    yield
    reset_runner()


def small_grid(count: int = 4, rounds: int = 4) -> list[Scenario]:
    scenarios = []
    for seed in range(count):
        params = default_params(4 + seed % 2, authenticated=True)
        scenarios.append(
            Scenario(
                params=params,
                algorithm="auth",
                attack="eager" if seed % 2 else "silent",
                rounds=rounds,
                seed=stable_seed("exec", seed),
            )
        )
    return scenarios


def fingerprint(results) -> list[str]:
    return [result_to_json(result, include_trace=True) for result in results]


def wait_for(predicate, timeout: float = 30.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("timed out waiting for condition")


# -- wire protocol ---------------------------------------------------------------------


def test_frame_roundtrip():
    buffer = io.BytesIO()
    frames = [("hello", 123), ("task", 0, faultinject.echo_task, [1, 2]), ("heartbeat",)]
    for frame in frames:
        write_frame(buffer, frame)
    buffer.seek(0)
    assert read_frame(buffer) == ("hello", 123)
    tag, task_id, fn, payload = read_frame(buffer)
    assert (tag, task_id, payload) == ("task", 0, [1, 2])
    assert fn is faultinject.echo_task  # functions travel by qualified name
    assert read_frame(buffer) == ("heartbeat",)
    assert read_frame(buffer) is None  # clean EOF between frames


def test_frame_truncation_detected():
    buffer = io.BytesIO()
    write_frame(buffer, ("hello", 1))
    data = buffer.getvalue()
    # Mid-header and mid-body truncations both raise; frame-boundary EOF is None.
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(data[:2]))
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(data[:-3]))


def test_frame_oversized_header_rejected():
    stream = io.BytesIO(b"\xff\xff\xff\xff" + b"x" * 16)
    with pytest.raises(ProtocolError):
        read_frame(stream)


# -- executor construction -------------------------------------------------------------


def test_make_executor_resolution():
    pool = make_executor(None, workers=2)
    assert isinstance(pool, LocalPoolExecutor) and pool.worker_count == 2
    assert isinstance(make_executor("pool", workers=1), LocalPoolExecutor)
    sub = make_executor("subprocess", workers=3)
    assert isinstance(sub, SubprocessWorkerExecutor) and sub.worker_count == 3
    assert make_executor(pool, workers=9) is pool  # instances pass through
    with pytest.raises(ValueError):
        make_executor("carrier-pigeon", workers=1)


def test_sweep_runner_rejects_unknown_executor():
    with pytest.raises(ValueError):
        SweepRunner(jobs=2, executor="carrier-pigeon")


def test_executor_instance_capacity_drives_parallel_path():
    # An Executor instance passed with default jobs=1 must still be used:
    # the serial shortcut keys off the backend's capacity, not jobs.
    executor = LocalPoolExecutor(2)
    with SweepRunner(executor=executor) as runner:
        assert runner.worker_capacity == 2
        results = runner.run_sweep(small_grid(count=2), trace_level="metrics")
        assert executor.worker_pids(), "the supplied executor was never used"
    assert len(results) == 2
    assert executor.worker_pids() == []  # close() reached the instance too


def test_local_pool_executor_basics():
    with LocalPoolExecutor(2) as executor:
        assert executor.submit(faultinject.square_task, 6).result(timeout=60) == 36
        assert executor.worker_pids()  # live after first submit
    assert executor.worker_pids() == []


# -- subprocess backend: happy path ----------------------------------------------------


def test_subprocess_executor_runs_tasks_and_reaps():
    executor = SubprocessWorkerExecutor(2, **FAST)
    try:
        futures = [executor.submit(faultinject.square_task, n) for n in range(8)]
        assert [f.result(timeout=60) for f in futures] == [n**2 for n in range(8)]
        pids = executor.worker_pids()
        assert len(pids) == 2
        stats = executor.stats()
        assert stats["tasks"] == 8 and stats["workers_lost"] == 0
    finally:
        executor.close()
    for pid in pids:
        # close() waits each worker: fully reaped, not zombified.
        assert not os.path.exists(f"/proc/{pid}")
    # A closed executor respawns lazily on the next submit.
    try:
        assert executor.submit(faultinject.echo_task, "again").result(timeout=60) == "again"
        assert executor.worker_pids() != pids
    finally:
        executor.close()


def test_subprocess_task_errors_propagate_without_retry():
    with SubprocessWorkerExecutor(1, **FAST) as executor:
        future = executor.submit(faultinject.raise_task, "boom")
        with pytest.raises(ValueError, match="boom"):
            future.result(timeout=60)
        # The worker survived the task error and no retry was attempted.
        assert executor.submit(faultinject.echo_task, "alive").result(timeout=60) == "alive"
        stats = executor.stats()
        assert stats["retries"] == 0 and stats["workers_lost"] == 0


def test_unpicklable_payload_fails_future_without_killing_worker():
    with SubprocessWorkerExecutor(1, **FAST) as executor:
        future = executor.submit(faultinject.echo_task, lambda: None)  # closures don't pickle
        with pytest.raises(Exception) as info:
            future.result(timeout=60)
        assert "pickle" in str(info.value).lower() or "pickle" in type(info.value).__name__.lower()
        # Not misclassified as worker death: no loss, no retry, worker usable.
        assert executor.submit(faultinject.echo_task, "alive").result(timeout=60) == "alive"
        stats = executor.stats()
        assert stats["retries"] == 0 and stats["workers_lost"] == 0


def test_unpicklable_result_reported_as_task_error_not_worker_death():
    with SubprocessWorkerExecutor(1, **FAST) as executor:
        future = executor.submit(faultinject.unpicklable_result_task, 1)
        with pytest.raises(Exception) as info:
            future.result(timeout=60)
        assert "pickle" in str(info.value).lower() or "pickle" in type(info.value).__name__.lower()
        # The worker shipped an error frame and stayed alive.
        assert executor.submit(faultinject.echo_task, "alive").result(timeout=60) == "alive"
        stats = executor.stats()
        assert stats["retries"] == 0 and stats["workers_lost"] == 0


# -- fault injection -------------------------------------------------------------------


def test_killed_worker_mid_task_retries_on_survivor(tmp_path):
    latch = str(tmp_path / "latch")
    with SubprocessWorkerExecutor(2, **FAST) as executor:
        future = executor.submit(faultinject.hang_once_task, latch)
        wait_for(lambda: os.path.exists(latch))
        victim = int(open(latch).read())  # provably mid-task: it wrote the latch
        os.kill(victim, signal.SIGKILL)
        assert future.result(timeout=60) == "recovered"
        stats = executor.stats()
        assert stats["workers_lost"] == 1 and stats["retries"] == 1


def test_crash_loop_exhausts_workers_with_clear_error(tmp_path):
    # respawn=False pins the legacy shrink-only mode: with self-healing on,
    # the fleet would replace the dead workers and the task would fail on its
    # retry budget instead (covered in tests/test_fleet.py).
    with SubprocessWorkerExecutor(2, respawn=False, **FAST) as executor:
        future = executor.submit(faultinject.exit_task, 1)
        with pytest.raises(ExecutorFailure, match="no surviving worker"):
            future.result(timeout=60)
        # With every worker dead, new submissions fail fast and say why.
        with pytest.raises(ExecutorFailure, match="no live workers"):
            executor.submit(faultinject.echo_task, 1).result(timeout=60)
    # close() resets the backend: the executor is usable again.
    with SubprocessWorkerExecutor(2, respawn=False, **FAST) as executor:
        assert executor.submit(faultinject.echo_task, "fresh").result(timeout=60) == "fresh"


def test_retry_budget_bounded_even_with_surviving_workers():
    executor = SubprocessWorkerExecutor(3, max_attempts=2, **FAST)
    try:
        future = executor.submit(faultinject.exit_task, 1)
        with pytest.raises(ExecutorFailure, match="retry budget of 2"):
            future.result(timeout=60)
        stats = executor.stats()
        assert stats["workers_lost"] == 2  # one worker survives the bounded retries
        assert executor.submit(faultinject.echo_task, "ok").result(timeout=60) == "ok"
    finally:
        executor.close()


def test_heartbeat_deadline_detects_wedged_worker(tmp_path):
    latch = str(tmp_path / "latch")
    # SIGSTOP wedges the worker: pipes stay open, heartbeats stop.  Only the
    # heartbeat deadline can notice; the monitor must kill it and retry.
    with SubprocessWorkerExecutor(2, heartbeat_interval=0.1, heartbeat_timeout=1.0) as executor:
        future = executor.submit(faultinject.freeze_once_task, latch)
        assert future.result(timeout=60) == "recovered"
        assert executor.stats()["workers_lost"] == 1


def test_idle_worker_steals_backlog(tmp_path):
    gate = str(tmp_path / "gate")
    with SubprocessWorkerExecutor(2, **FAST) as executor:
        blocker = executor.submit(faultinject.hang_until_file_task, gate)
        quick = [executor.submit(faultinject.square_task, n) for n in range(6)]
        # The other worker must drain every quick task -- including the ones
        # queued behind the blocker -- while the blocker still runs.
        assert [f.result(timeout=60) for f in quick] == [n**2 for n in range(6)]
        assert not blocker.done()
        assert executor.stats()["steals"] >= 1
        open(gate, "w").close()
        assert blocker.result(timeout=60) == gate


# -- sweep integration: parity and recovery --------------------------------------------


def parity_grid_scenarios() -> list[Scenario]:
    """The acceptance grid: crash/startup/joiner/drifting/tie-heavy cases
    (shared with the shard-merge suite) plus a replicated, sharded point."""
    scenarios = _parity_grid()
    scenarios.append(dataclasses.replace(scenarios[0], replications=4, shards=2, name="rep"))
    return scenarios


def test_subprocess_sweep_identical_to_serial_and_pool_on_parity_grid():
    scenarios = parity_grid_scenarios()
    serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    with SweepRunner(jobs=2, executor="pool") as runner:
        pool = runner.run_sweep(scenarios, trace_level="metrics")
    with SweepRunner(jobs=2, executor="subprocess") as runner:
        remote = runner.run_sweep(scenarios, trace_level="metrics")
    assert fingerprint(pool) == fingerprint(serial)
    assert fingerprint(remote) == fingerprint(serial)


def test_distributed_single_scenario_routes_through_wire():
    scenario = small_grid(count=1)[0]
    with SweepRunner(jobs=1, executor="subprocess") as runner:
        result = runner.run(scenario, trace_level="metrics")
        executor = runner._executor
        assert executor.stats()["tasks"] == 1  # no serial shortcut
    serial = SweepRunner(jobs=1).run(scenario, trace_level="metrics")
    assert fingerprint([result]) == fingerprint([serial])


def test_sweep_survives_worker_kill_mid_sweep_float_identical():
    # The acceptance grid again -- the kill must not perturb even the cases
    # where merging or measurement could drift (crash ceilings, late
    # steady-state, joiners, drifting clocks, ties, sharded replications).
    scenarios = parity_grid_scenarios() + small_grid(count=3, rounds=6)
    serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    with SweepRunner(jobs=2, executor="subprocess", chunk_size=1) as runner:
        killed = []

        def on_result(index, result):
            if not killed:
                # First completion: shoot a worker (preferably one mid-chunk).
                executor = runner._executor
                pids = executor.busy_worker_pids() or executor.worker_pids()
                os.kill(pids[0], signal.SIGKILL)
                killed.append(pids[0])

        collected = {}

        def collect(index, result):
            collected[index] = result
            on_result(index, result)

        runner.stream_sweep(scenarios, collect, trace_level="metrics")
        assert killed, "the kill hook never fired"
        assert runner._executor.stats()["workers_lost"] >= 1
    results = [collected[index] for index in range(len(scenarios))]
    assert fingerprint(results) == fingerprint(serial)


def test_sweep_raises_clear_error_when_all_workers_die():
    scenarios = small_grid(count=8, rounds=6)
    # respawn=False pins the legacy shrink-only failure mode; the self-healing
    # default finishes this sweep instead (tests/test_fleet.py asserts that).
    runner = SweepRunner(
        jobs=2, executor=SubprocessWorkerExecutor(2, respawn=False, **FAST), chunk_size=1
    )
    try:
        fired = []

        def kill_everything(index, result):
            if not fired:
                fired.append(True)
                for pid in runner._executor.worker_pids():
                    os.kill(pid, signal.SIGKILL)

        with pytest.raises(ExecutorFailure):
            runner.stream_sweep(scenarios, kill_everything, trace_level="metrics")
        # The broken backend was dropped; the next sweep respawns and works.
        serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
        again = runner.run_sweep(scenarios, trace_level="metrics")
        assert fingerprint(again) == fingerprint(serial)
    finally:
        runner.close()


# -- configuration and lifecycle -------------------------------------------------------


def test_configure_reset_reaps_subprocess_workers():
    configure(jobs=2, use_cache=False, executor="subprocess")
    runner = get_runner()
    runner.run_sweep(small_grid(count=2), trace_level="metrics")
    pids = runner._executor.worker_pids()
    assert len(pids) == 2
    reset_runner()
    for pid in pids:
        # Reaped, not leaked: the /proc entry is gone (a zombie would keep it).
        assert not os.path.exists(f"/proc/{pid}"), f"worker {pid} leaked past reset_runner()"


def test_configure_close_on_reconfigure_reaps_workers():
    configure(jobs=1, use_cache=False, executor="subprocess")
    runner = get_runner()
    runner.run(small_grid(count=1)[0], trace_level="metrics")
    pids = runner._executor.worker_pids()
    configure(jobs=1, use_cache=False)  # swap back to the pool backend
    for pid in pids:
        assert not os.path.exists(f"/proc/{pid}")


def test_env_executor_selection(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "subprocess")
    monkeypatch.setenv("REPRO_JOBS", "2")
    runner = configure(use_cache=False)
    assert runner.executor_spec == "subprocess" and runner.jobs == 2
    assert runner.distributed
    reset_runner()
    monkeypatch.setenv("REPRO_EXECUTOR", "smoke-signals")
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        configure(use_cache=False)


def test_configure_workers_overrides_jobs():
    runner = configure(jobs=1, workers=3, use_cache=False, executor="pool")
    assert runner.jobs == 3
    assert not runner.distributed
    with pytest.raises(ValueError):
        configure(executor="bogus")


# -- ssh backend (configuration only; no hosts in CI) ----------------------------------


def test_ssh_executor_requires_hosts(monkeypatch):
    monkeypatch.delenv("REPRO_SSH_HOSTS", raising=False)
    with pytest.raises(SSHConfigError, match="REPRO_SSH_HOSTS"):
        SSHExecutor()


def test_ssh_executor_command_construction(monkeypatch):
    monkeypatch.delenv("REPRO_SSH_PYTHONPATH", raising=False)
    executor = SSHExecutor(hosts=["node-a", "node-b"], workers=3, python="python3.12")
    assert executor.worker_count == 3
    assert executor.hosts == ["node-a", "node-b", "node-a"]  # cycled for capacity
    trimmed = SSHExecutor(hosts=["node-a", "node-b", "node-c"], workers=2)
    assert trimmed.worker_count == 2
    assert trimmed.hosts == ["node-a", "node-b"]  # truncated to the asked-for count
    command = executor._spawn_command(1)
    assert command[0] == "ssh" and "node-b" in command
    assert "repro.worker" in command[-1] and "python3.12" in command[-1]
    monkeypatch.setenv("REPRO_SSH_PYTHONPATH", "/srv/repro/src")
    assert "PYTHONPATH=/srv/repro/src" in executor._spawn_command(0)[-1]


@pytest.mark.skipif(
    not os.environ.get("REPRO_SSH_HOSTS"),
    reason="no SSH hosts configured (set REPRO_SSH_HOSTS to run the live ssh backend test)",
)
def test_ssh_sweep_identical_to_serial_live():
    scenarios = small_grid(count=2)
    serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    with SweepRunner(jobs=1, executor="ssh") as runner:
        remote = runner.run_sweep(scenarios, trace_level="metrics")
    assert fingerprint(remote) == fingerprint(serial)
