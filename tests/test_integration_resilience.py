"""Integration tests for the resilience thresholds (tightness in both directions)."""

from __future__ import annotations

import pytest

from repro.core.bounds import AUTH, ECHO, precision_bound
from repro.core.params import params_for
from repro.workloads.scenarios import Scenario, run_scenario


def run_with_faults(algorithm, n, assumed_f, actual_faults, attack, rounds=6, seed=0):
    params = params_for(n, f=assumed_f, authenticated=(algorithm == "auth"), rho=1e-4, tdel=0.01, period=1.0)
    scenario = Scenario(
        params=params,
        algorithm=algorithm,
        attack=attack,
        actual_faults=actual_faults,
        rounds=rounds,
        clock_mode="extreme",
        delay_mode="targeted",
        seed=seed,
    )
    return run_scenario(scenario, check_guarantees=False)


# -- authenticated: n > 2f is sufficient and necessary ----------------------------------------


@pytest.mark.parametrize("n", [4, 6, 8])
def test_auth_tolerates_max_faults(n):
    f = -(-n // 2) - 1  # ceil(n/2) - 1
    result = run_with_faults("auth", n, f, f, attack="skew_max")
    assert result.precision <= precision_bound(result.params, AUTH)
    assert result.completed_round >= 6


@pytest.mark.parametrize("n", [4, 6, 8])
def test_auth_breaks_one_fault_above_threshold(n):
    f = -(-n // 2) - 1
    result = run_with_faults("auth", n, f, f + 1, attack="rushing_cabal", seed=n)
    assert result.precision > precision_bound(result.params, AUTH)


def test_auth_cabal_is_harmless_within_threshold():
    """The same cabal attack with only f members cannot forge proofs, so it is harmless."""
    result = run_with_faults("auth", 7, 3, 3, attack="rushing_cabal")
    assert result.precision <= precision_bound(result.params, AUTH)
    assert result.completed_round >= 6


# -- non-authenticated: n > 3f is sufficient and necessary --------------------------------------


@pytest.mark.parametrize("n", [4, 7, 10])
def test_echo_tolerates_max_faults(n):
    f = -(-n // 3) - 1
    result = run_with_faults("echo", n, f, f, attack="skew_max")
    assert result.precision <= precision_bound(result.params, ECHO)
    assert result.completed_round >= 6


@pytest.mark.parametrize("n", [4, 7, 10])
def test_echo_breaks_one_fault_above_threshold(n):
    f = -(-n // 3) - 1
    result = run_with_faults("echo", n, f, f + 1, attack="echo_cabal", seed=n)
    violated = result.precision > precision_bound(result.params, ECHO)
    stalled = result.completed_round < 6
    assert violated or stalled


def test_echo_cabal_is_harmless_within_threshold():
    result = run_with_faults("echo", 7, 2, 2, attack="echo_cabal")
    assert result.precision <= precision_bound(result.params, ECHO)
    assert result.completed_round >= 6


# -- signatures are what buys the extra resilience -----------------------------------------------


def test_signatures_buy_resilience_between_n_thirds_and_n_half():
    """At n=7 with 3 faults: the authenticated algorithm survives the worst
    tolerated attack while 3 faults exceed the echo algorithm's threshold."""
    auth = run_with_faults("auth", 7, 3, 3, attack="skew_max")
    assert auth.precision <= precision_bound(auth.params, AUTH)
    assert auth.completed_round >= 6

    echo_params = params_for(7, f=2, authenticated=False)
    echo = run_scenario(
        Scenario(
            params=echo_params,
            algorithm="echo",
            attack="echo_cabal",
            actual_faults=3,
            rounds=6,
            clock_mode="extreme",
            delay_mode="targeted",
            seed=3,
        ),
        check_guarantees=False,
    )
    assert echo.precision > precision_bound(echo_params, ECHO) or echo.completed_round < 6
