"""Metrics-registry merge algebra: worker snapshots fold exactly.

The telemetry registry rests on the same algebraic fact as the shard fold
(``tests/test_shard_merge.py``): :func:`repro.obs.metrics.merge_snapshots`
is associative and commutative with :func:`empty_snapshot` as the identity,
so any grouping of the same worker snapshots -- per task, per worker, or one
flat fold -- produces the same parent registry.  These tests pin the algebra
directly, the histogram bucketing, and the ``absorb_*`` bridges from the
pre-existing scattered stats (cache, fleet scheduler, kernel provenance).
"""

from __future__ import annotations

import random

from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
)
from repro.runner.cache import CacheStats
from repro.workloads.scenarios import KernelProvenance


def _random_snapshot(seed: int) -> dict:
    """A registry snapshot with random counters, gauges and histograms.

    Histogram observations are dyadic rationals (k/64) so their float sums
    are exact under any association -- the groupings below must fold
    float-for-float identical, not merely close.
    """
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for name in ("cache.hits", "fleet.tasks", "kernel.vector_lanes"):
        if rng.random() < 0.8:
            registry.inc(name, rng.randint(0, 9))
    for name in ("fleet.backlog_peak", "runner.inflight_peak"):
        if rng.random() < 0.8:
            registry.gauge_max(name, rng.randint(0, 64) / 64)
    for name in ("fleet.queue_wait_s", "fleet.probe_rtt_s"):
        for _ in range(rng.randint(0, 6)):
            registry.observe(name, rng.randint(1, 2**14) / 64)
    return registry.snapshot()


# -- algebra ---------------------------------------------------------------


def test_merge_is_associative():
    a, b, c = (_random_snapshot(seed) for seed in (1, 2, 3))
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    flat = merge_snapshots(a, b, c)
    assert left == right == flat


def test_merge_is_commutative():
    a, b, c = (_random_snapshot(seed) for seed in (4, 5, 6))
    assert merge_snapshots(a, b, c) == merge_snapshots(c, b, a) == merge_snapshots(b, a, c)


def test_empty_snapshot_is_identity():
    snapshot = _random_snapshot(7)
    assert merge_snapshots(snapshot, empty_snapshot()) == snapshot
    assert merge_snapshots(empty_snapshot(), snapshot) == snapshot
    assert merge_snapshots() == empty_snapshot()


def test_merge_random_groupings_are_identical():
    """Any partition of the same worker snapshots folds to the same registry."""
    snapshots = [_random_snapshot(seed) for seed in range(10, 15)]
    reference = merge_snapshots(*snapshots)
    rng = random.Random(7)
    for _ in range(6):
        cut_a = rng.randint(1, 4)
        cut_b = rng.randint(cut_a, 4)
        groups = [snapshots[:cut_a], snapshots[cut_a:cut_b], snapshots[cut_b:]]
        folded = merge_snapshots(*(merge_snapshots(*group) for group in groups if group))
        assert folded == reference


def test_merge_semantics_per_kind():
    a = MetricsRegistry()
    a.inc("c", 2)
    a.gauge_max("g", 3.0)
    a.observe("h", 0.001)
    b = MetricsRegistry()
    b.inc("c", 5)
    b.gauge_max("g", 1.0)
    b.observe("h", 100.0)
    merged = merge_snapshots(a.snapshot(), b.snapshot())
    assert merged["counters"]["c"] == 7  # counters add
    assert merged["gauges"]["g"] == 3.0  # gauges keep the high-water mark
    hist = merged["histograms"]["h"]
    assert hist["count"] == 2
    assert hist["sum"] == 100.001
    assert hist["min"] == 0.001 and hist["max"] == 100.0


def test_merge_does_not_mutate_inputs():
    a, b = _random_snapshot(20), _random_snapshot(21)
    a_copy = merge_snapshots(a)
    b_copy = merge_snapshots(b)
    merge_snapshots(a, b)
    assert a == a_copy and b == b_copy


# -- histogram bucketing ---------------------------------------------------


def test_histogram_buckets_are_le_bounds_with_overflow():
    registry = MetricsRegistry()
    registry.observe("h", HISTOGRAM_BOUNDS[0])  # lands in bucket 0 (le)
    registry.observe("h", HISTOGRAM_BOUNDS[0] * 1.5)  # just past bound 0
    registry.observe("h", HISTOGRAM_BOUNDS[-1] * 10)  # beyond every bound
    hist = registry.snapshot()["histograms"]["h"]
    assert len(hist["buckets"]) == len(HISTOGRAM_BOUNDS) + 1
    assert hist["buckets"][0] == 1
    assert hist["buckets"][1] == 1
    assert hist["buckets"][-1] == 1  # the +Inf overflow bucket
    assert hist["count"] == 3
    assert hist["min"] == HISTOGRAM_BOUNDS[0]
    assert hist["max"] == HISTOGRAM_BOUNDS[-1] * 10


def test_histogram_bounds_are_fixed_and_increasing():
    # Fixed shared bounds are what make bucket-wise merging exact.
    assert list(HISTOGRAM_BOUNDS) == sorted(HISTOGRAM_BOUNDS)
    assert HISTOGRAM_BOUNDS[0] == 0.0005
    assert all(b2 == b1 * 2 for b1, b2 in zip(HISTOGRAM_BOUNDS, HISTOGRAM_BOUNDS[1:]))


# -- registry behaviour ----------------------------------------------------


def test_snapshot_is_an_isolated_copy():
    registry = MetricsRegistry()
    registry.inc("c")
    registry.observe("h", 0.25)
    frozen = registry.snapshot()
    registry.inc("c", 9)
    registry.observe("h", 0.25)
    assert frozen["counters"]["c"] == 1
    assert frozen["histograms"]["h"]["count"] == 1


def test_absorb_merges_worker_snapshot():
    parent = MetricsRegistry()
    parent.inc("tasks", 1)
    parent.gauge_max("peak", 2.0)
    worker = MetricsRegistry()
    worker.inc("tasks", 3)
    worker.gauge_max("peak", 5.0)
    worker.observe("wait", 0.25)
    parent.absorb(worker.snapshot())
    snapshot = parent.snapshot()
    assert snapshot["counters"]["tasks"] == 4
    assert snapshot["gauges"]["peak"] == 5.0
    assert snapshot["histograms"]["wait"]["count"] == 1
    assert parent.counter("tasks") == 4
    assert parent.counter("never-seen") is None


def test_inc_zero_creates_the_series():
    # `repro stats` relies on this to force cache.* to exist when caching is off.
    registry = MetricsRegistry()
    registry.inc("cache.hits", 0)
    assert registry.counter("cache.hits") == 0


# -- absorption bridges ----------------------------------------------------


def test_absorb_cache_stats():
    registry = MetricsRegistry()
    registry.absorb_cache_stats(CacheStats(hits=2, misses=3, stores=1))
    snapshot = registry.snapshot()["counters"]
    assert snapshot == {"cache.hits": 2, "cache.misses": 3, "cache.stores": 1}


def test_absorb_fleet_stats():
    registry = MetricsRegistry()
    registry.absorb_fleet_stats({"tasks": 7, "retries": 1, "workers_lost": 1})
    snapshot = registry.snapshot()["counters"]
    assert snapshot["fleet.tasks"] == 7
    assert snapshot["fleet.retries"] == 1
    assert snapshot["fleet.workers_lost"] == 1


def test_absorb_kernel_provenance_namespaces():
    provenance = KernelProvenance(resolved="vector", vector_lanes=3, fallback_lanes=1, ineligible_lanes=2)
    registry = MetricsRegistry()
    registry.absorb_kernel_provenance(provenance)
    registry.absorb_kernel_provenance(provenance, prefix="provenance")
    counters = registry.snapshot()["counters"]
    # Live accounting and post-hoc CLI absorption live in separate namespaces
    # so they can never double-count each other.
    assert counters["kernel.vector_lanes"] == 3
    assert counters["kernel.fallback_lanes"] == 1
    assert counters["kernel.ineligible_lanes"] == 2
    assert counters["provenance.vector_lanes"] == 3
