"""Unit tests for the simulated signature scheme and PKI."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import RoundContent, SignedRound
from repro.crypto.signatures import (
    KeyStore,
    Signature,
    forge_attempt,
    message_digest,
    sign,
)


@pytest.fixture
def pki() -> KeyStore:
    return KeyStore.generate(4, seed=42)


def test_sign_and_verify_roundtrip(pki):
    message = RoundContent(5)
    sig = sign(pki.secret_key(1), message)
    assert pki.verify(sig, message)
    assert pki.verify(sig, message, claimed_signer=1)


def test_verify_rejects_wrong_message(pki):
    sig = sign(pki.secret_key(1), RoundContent(5))
    assert not pki.verify(sig, RoundContent(6))


def test_verify_rejects_wrong_claimed_signer(pki):
    sig = sign(pki.secret_key(1), RoundContent(5))
    assert not pki.verify(sig, RoundContent(5), claimed_signer=2)


def test_verify_rejects_unknown_signer(pki):
    rogue = KeyStore.generate(10, seed=99)
    sig = sign(rogue.secret_key(7), RoundContent(5))
    assert not pki.verify(sig, RoundContent(5))


def test_forgery_without_key_fails(pki):
    forged = forge_attempt(claimed_signer=2, message=RoundContent(3), guess=12345)
    assert not pki.verify(forged, RoundContent(3))
    assert not pki.verify(forged, RoundContent(3), claimed_signer=2)


def test_signature_from_other_keystore_instance_with_same_seed_verifies():
    a = KeyStore.generate(3, seed=7)
    b = KeyStore.generate(3, seed=7)
    sig = sign(a.secret_key(0), RoundContent(1))
    assert b.verify(sig, RoundContent(1))


def test_different_seeds_produce_incompatible_keys():
    a = KeyStore.generate(3, seed=7)
    b = KeyStore.generate(3, seed=8)
    sig = sign(a.secret_key(0), RoundContent(1))
    assert not b.verify(sig, RoundContent(1))


def test_tampered_tag_rejected(pki):
    sig = sign(pki.secret_key(0), RoundContent(2))
    tampered = Signature(signer=sig.signer, digest=sig.digest, tag=sig.tag[::-1])
    assert not pki.verify(tampered, RoundContent(2))


def test_tampered_digest_rejected(pki):
    sig = sign(pki.secret_key(0), RoundContent(2))
    tampered = Signature(signer=sig.signer, digest="0" * 64, tag=sig.tag)
    assert not pki.verify(tampered, RoundContent(2))


def test_participants_and_membership(pki):
    assert pki.participants() == [0, 1, 2, 3]
    assert pki.has_participant(2)
    assert not pki.has_participant(9)
    assert pki.public_key(3).owner == 3
    assert pki.secret_key(3).owner == 3


def test_secret_key_repr_hides_secret(pki):
    assert "hidden" in repr(pki.secret_key(0))
    assert str(pki.secret_key(0).secret) not in repr(pki.secret_key(0))


# -- message digests -----------------------------------------------------------------


def test_digest_is_deterministic():
    assert message_digest(RoundContent(7)) == message_digest(RoundContent(7))


def test_digest_distinguishes_rounds():
    assert message_digest(RoundContent(7)) != message_digest(RoundContent(8))


def test_digest_distinguishes_types_with_same_fields():
    sig = sign(KeyStore.generate(1).secret_key(0), RoundContent(1))
    assert message_digest(RoundContent(1)) != message_digest(SignedRound(round=1, signature=sig))


def test_digest_supports_tuples_and_primitives():
    assert message_digest((1, "a", 2.5, None, True)) == message_digest((1, "a", 2.5, None, True))
    assert message_digest((1, 2)) != message_digest((2, 1))


def test_digest_rejects_unsupported_types():
    with pytest.raises(TypeError):
        message_digest(object())


def test_digest_distinguishes_int_and_str():
    assert message_digest((1,)) != message_digest(("1",))


@given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
def test_property_digest_injective_on_rounds(a, b):
    if a != b:
        assert message_digest(RoundContent(a)) != message_digest(RoundContent(b))
    else:
        assert message_digest(RoundContent(a)) == message_digest(RoundContent(b))


@given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=100))
def test_property_only_owner_key_verifies(signer, claimed, round_):
    pki = KeyStore.generate(4, seed=0)
    sig = sign(pki.secret_key(signer), RoundContent(round_))
    assert pki.verify(sig, RoundContent(round_), claimed_signer=claimed) == (signer == claimed)
