"""Unit tests for the authenticated synchronizer's state machine.

These tests drive a single (or a few) AuthSyncProcess instances through a
scripted simulation with fixed delays, checking each protocol rule in
isolation; the full-system behaviour is covered by the integration tests.
"""

from __future__ import annotations

import pytest

from repro.core.auth_sync import AuthSyncProcess
from repro.core.messages import RoundContent, SignatureBundle, SignedRound
from repro.core.params import params_for
from repro.crypto.signatures import KeyStore, forge_attempt, sign
from repro.sim.clocks import FixedRateClock
from repro.sim.engine import Simulation
from repro.sim.network import FixedDelay


def make_setup(n=5, f=2, delay=0.001, period=1.0, **proc_kwargs):
    """One real AuthSyncProcess (pid 0) plus silent message sinks for the rest."""
    params = params_for(n, f=f, rho=1e-4, tdel=0.01, period=period)
    sim = Simulation(tmin=0.0, tdel=params.tdel, delay_policy=FixedDelay(delay), seed=0)
    keystore = KeyStore.generate(n, seed=0)
    proc = AuthSyncProcess(0, params, keystore, keystore.secret_key(0), **proc_kwargs)
    sim.add_process(proc, FixedRateClock(rate=1.0, offset=0.0))

    received: dict[int, list] = {pid: [] for pid in range(1, n)}
    for pid in range(1, n):
        sim.network.register(pid, lambda env, pid=pid: received[env.dest].append(env.payload))
    return sim, proc, keystore, params, received


def signed(keystore, signer, round_):
    return SignedRound(round=round_, signature=sign(keystore.secret_key(signer), RoundContent(round_)))


def test_rejects_foreign_secret_key():
    params = params_for(3, f=1)
    keystore = KeyStore.generate(3)
    with pytest.raises(ValueError):
        AuthSyncProcess(0, params, keystore, keystore.secret_key(1))


def test_broadcasts_signature_when_clock_reaches_round():
    sim, proc, keystore, params, received = make_setup()
    sim.run_until(1.05)
    for pid, msgs in received.items():
        signed_rounds = [m for m in msgs if isinstance(m, SignedRound)]
        assert len(signed_rounds) == 1
        assert signed_rounds[0].round == 1
        assert keystore.verify(signed_rounds[0].signature, RoundContent(1), claimed_signer=0)


def test_does_not_broadcast_before_round_time():
    sim, proc, keystore, params, received = make_setup()
    sim.run_until(0.9)
    assert all(len(msgs) == 0 for msgs in received.values())
    assert proc.current_round == 1


def test_accepts_on_f_plus_1_signatures_and_adjusts_clock():
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    # Deliver signatures from two other processes; plus the process's own
    # signature (sent at logical 1.0) that's 3 = f+1 supporters.
    sim.schedule_at(1.001, lambda: sim.network.send(1, 0, signed(keystore, 1, 1)))
    sim.schedule_at(1.002, lambda: sim.network.send(2, 0, signed(keystore, 2, 1)))
    sim.run_until(1.1)
    assert proc.accepted_rounds == [1]
    assert proc.current_round == 2
    # Clock was set to 1*P + alpha.
    expected = params.period + params.alpha_value
    assert proc.trace.resyncs[0].logical_after == pytest.approx(expected)


def test_does_not_accept_below_threshold():
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    sim.schedule_at(1.001, lambda: sim.network.send(1, 0, signed(keystore, 1, 1)))
    sim.run_until(1.5)
    assert proc.accepted_rounds == []


def test_duplicate_signatures_do_not_count_twice():
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    for i in range(3):
        sim.schedule_at(1.001 + i * 0.001, lambda: sim.network.send(1, 0, signed(keystore, 1, 1)))
    sim.run_until(1.5)
    assert proc.accepted_rounds == []


def test_forged_signatures_are_ignored():
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    for signer in (1, 2, 3):
        forged = SignedRound(round=1, signature=forge_attempt(signer, RoundContent(1)))
        sim.schedule_at(1.001, lambda m=forged: sim.network.send(4, 0, m))
    sim.run_until(1.5)
    assert proc.accepted_rounds == []


def test_acceptance_before_own_clock_via_bundle():
    """A bundle with f+1 valid signatures triggers acceptance even before the
    process's own clock reaches the round (it is behind and gets pulled forward)."""
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    bundle = SignatureBundle(
        round=1,
        signatures=tuple(sign(keystore.secret_key(s), RoundContent(1)) for s in (1, 2, 3)),
    )
    sim.schedule_at(0.5, lambda: sim.network.send(1, 0, bundle))
    sim.run_until(0.6)
    assert proc.accepted_rounds == [1]
    assert proc.logical_time() >= params.period


def test_relays_acceptance_bundle_to_everyone():
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    sim.schedule_at(1.001, lambda: sim.network.send(1, 0, signed(keystore, 1, 1)))
    sim.schedule_at(1.002, lambda: sim.network.send(2, 0, signed(keystore, 2, 1)))
    sim.run_until(1.2)
    for msgs in received.values():
        bundles = [m for m in msgs if isinstance(m, SignatureBundle)]
        assert len(bundles) == 1
        assert bundles[0].round == 1
        assert len(bundles[0].signatures) == params.f + 1
        assert all(keystore.verify(s, RoundContent(1)) for s in bundles[0].signatures)


def test_stale_round_signatures_ignored_after_acceptance():
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    bundle = SignatureBundle(
        round=1,
        signatures=tuple(sign(keystore.secret_key(s), RoundContent(1)) for s in (1, 2, 3)),
    )
    sim.schedule_at(0.5, lambda: sim.network.send(1, 0, bundle))
    # A replayed round-1 signature after acceptance must not produce a second resync.
    sim.schedule_at(0.8, lambda: sim.network.send(2, 0, signed(keystore, 2, 1)))
    sim.run_until(1.0)
    assert proc.accepted_rounds == [1]
    assert len(proc.trace.resyncs) == 1


def test_accepts_successive_rounds_in_order():
    sim, proc, keystore, params, received = make_setup(n=5, f=2)
    for k in (1, 2):
        bundle = SignatureBundle(
            round=k,
            signatures=tuple(sign(keystore.secret_key(s), RoundContent(k)) for s in (1, 2, 3)),
        )
        sim.schedule_at(0.4 * k, lambda b=bundle: sim.network.send(1, 0, b))
    sim.run_until(1.0)
    assert proc.accepted_rounds == [1, 2]
    assert proc.current_round == 3


def test_garbage_messages_are_ignored():
    sim, proc, keystore, params, received = make_setup()
    sim.schedule_at(0.2, lambda: sim.network.send(1, 0, "garbage"))
    sim.schedule_at(0.3, lambda: sim.network.send(1, 0, 12345))
    sim.run_until(0.5)
    assert proc.accepted_rounds == []


def test_startup_mode_broadcasts_round_zero_at_boot():
    sim, proc, keystore, params, received = make_setup(use_startup=True)
    sim.run_until(0.01)
    for msgs in received.values():
        rounds = [m.round for m in msgs if isinstance(m, SignedRound)]
        assert 0 in rounds


def test_startup_acceptance_sets_clock_to_alpha():
    sim, proc, keystore, params, received = make_setup(n=5, f=2, use_startup=True)
    sim.schedule_at(0.002, lambda: sim.network.send(1, 0, signed(keystore, 1, 0)))
    sim.schedule_at(0.003, lambda: sim.network.send(2, 0, signed(keystore, 2, 0)))
    sim.run_until(0.02)
    assert proc.accepted_rounds == [0]
    assert proc.trace.resyncs[0].logical_after == pytest.approx(params.alpha_value)
    assert proc.current_round == 1


def test_startup_retries_until_accepted():
    sim, proc, keystore, params, received = make_setup(n=5, f=2, use_startup=True)
    sim.run_until(0.2)
    # Without any peer support the process keeps re-announcing round 0.
    counts = [len([m for m in msgs if isinstance(m, SignedRound) and m.round == 0]) for msgs in received.values()]
    assert all(count >= 2 for count in counts)


def test_joiner_stays_passive_until_first_acceptance():
    sim, proc, keystore, params, received = make_setup(n=5, f=2, joiner=True)
    sim.run_until(1.5)
    assert all(len(msgs) == 0 for msgs in received.values())
    assert proc.current_round is None

    bundle = SignatureBundle(
        round=2,
        signatures=tuple(sign(keystore.secret_key(s), RoundContent(2)) for s in (1, 2, 3)),
    )
    sim.schedule_at(1.6, lambda: sim.network.send(1, 0, bundle))
    sim.run_until(1.7)
    assert proc.accepted_rounds == [2]
    assert proc.current_round == 3
    assert proc.logical_time() == pytest.approx(2 * params.period + params.alpha_value, abs=0.2)


def test_monotonic_variant_never_sets_clock_back():
    sim, proc, keystore, params, received = make_setup(n=5, f=2, monotonic=True)
    # Make the process's clock race ahead: deliver an acceptance for round 1
    # late, when its own clock is already past 1*P + alpha.
    bundle = SignatureBundle(
        round=1,
        signatures=tuple(sign(keystore.secret_key(s), RoundContent(1)) for s in (1, 2, 3)),
    )
    sim.schedule_at(1.5, lambda: sim.network.send(1, 0, bundle))
    sim.run_until(1.6)
    assert proc.accepted_rounds == [1]
    event = proc.trace.resyncs[0]
    assert event.logical_after >= event.logical_before
