"""Unit tests for the authenticated broadcast primitive (signature tracker)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.broadcast.authenticated import SignatureTracker
from repro.core.messages import RoundContent
from repro.crypto.signatures import KeyStore, forge_attempt, sign


def make_tracker(n=5, threshold=3, seed=0, **kwargs):
    pki = KeyStore.generate(n, seed=seed)
    tracker = SignatureTracker(keystore=pki, threshold=threshold, content_factory=RoundContent, **kwargs)
    return pki, tracker


def test_threshold_must_be_positive():
    pki = KeyStore.generate(3)
    with pytest.raises(ValueError):
        SignatureTracker(keystore=pki, threshold=0, content_factory=RoundContent)


def test_add_valid_signature_counts():
    pki, tracker = make_tracker()
    sig = sign(pki.secret_key(1), RoundContent(1))
    assert tracker.add(1, sig)
    assert tracker.support(1) == 1
    assert not tracker.reached(1)


def test_duplicate_signer_not_counted_twice():
    pki, tracker = make_tracker()
    sig = sign(pki.secret_key(1), RoundContent(1))
    assert tracker.add(1, sig)
    assert not tracker.add(1, sig)
    assert tracker.support(1) == 1


def test_invalid_signature_rejected():
    pki, tracker = make_tracker()
    forged = forge_attempt(2, RoundContent(1))
    assert not tracker.add(1, forged)
    assert tracker.support(1) == 0


def test_signature_for_wrong_round_rejected():
    pki, tracker = make_tracker()
    sig = sign(pki.secret_key(1), RoundContent(2))
    assert not tracker.add(1, sig)  # claimed round 1, signed round 2
    assert tracker.support(1) == 0


def test_reached_at_threshold():
    pki, tracker = make_tracker(threshold=3)
    for signer in range(3):
        tracker.add(4, sign(pki.secret_key(signer), RoundContent(4)))
    assert tracker.reached(4)
    assert tracker.reached_rounds() == [4]


def test_add_own_signs_and_counts():
    pki, tracker = make_tracker(threshold=2)
    sig = tracker.add_own(3, pki.secret_key(0))
    assert sig.signer == 0
    assert tracker.support(3) == 1
    assert tracker.has_signer(3, 0)
    assert not tracker.has_signer(3, 1)


def test_add_many_counts_only_new_valid():
    pki, tracker = make_tracker(threshold=3)
    sigs = [sign(pki.secret_key(i), RoundContent(1)) for i in range(3)]
    bad = forge_attempt(4, RoundContent(1))
    assert tracker.add_many(1, sigs + [bad] + sigs) == 3
    assert tracker.reached(1)


def test_acceptance_proof_has_exactly_threshold_signatures():
    pki, tracker = make_tracker(threshold=3)
    for signer in range(5):
        tracker.add(1, sign(pki.secret_key(signer), RoundContent(1)))
    proof = tracker.acceptance_proof(1)
    assert len(proof) == 3
    assert all(pki.verify(s, RoundContent(1)) for s in proof)


def test_acceptance_proof_requires_threshold():
    pki, tracker = make_tracker(threshold=3)
    tracker.add(1, sign(pki.secret_key(0), RoundContent(1)))
    with pytest.raises(ValueError):
        tracker.acceptance_proof(1)


def test_signatures_sorted_by_signer():
    pki, tracker = make_tracker(threshold=2)
    tracker.add(1, sign(pki.secret_key(3), RoundContent(1)))
    tracker.add(1, sign(pki.secret_key(1), RoundContent(1)))
    assert [s.signer for s in tracker.signatures(1)] == [1, 3]


def test_floor_ignores_and_forgets_stale_rounds():
    pki, tracker = make_tracker(threshold=2)
    tracker.add(1, sign(pki.secret_key(0), RoundContent(1)))
    tracker.set_floor(2)
    assert tracker.support(1) == 0
    assert not tracker.add(1, sign(pki.secret_key(1), RoundContent(1)))
    assert tracker.rounds_with_support() == []


def test_floor_never_decreases():
    pki, tracker = make_tracker()
    tracker.set_floor(5)
    tracker.set_floor(2)
    assert not tracker.add(3, sign(pki.secret_key(0), RoundContent(3)))


def test_lookahead_cap_bounds_memory():
    pki, tracker = make_tracker(max_round_lookahead=10)
    assert not tracker.add(100, sign(pki.secret_key(0), RoundContent(100)))
    assert tracker.add(5, sign(pki.secret_key(0), RoundContent(5)))


def test_lookahead_none_disables_cap():
    pki, tracker = make_tracker(max_round_lookahead=None)
    assert tracker.add(10**6, sign(pki.secret_key(0), RoundContent(10**6)))


def test_reached_rounds_respects_minimum():
    pki, tracker = make_tracker(threshold=1)
    tracker.add(1, sign(pki.secret_key(0), RoundContent(1)))
    tracker.add(5, sign(pki.secret_key(0), RoundContent(5)))
    assert tracker.reached_rounds() == [1, 5]
    assert tracker.reached_rounds(minimum_round=2) == [5]


@given(
    signers=st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=30),
    threshold=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60)
def test_property_acceptance_iff_enough_distinct_signers(signers, threshold):
    """Acceptance happens exactly when `threshold` distinct valid signers contributed,
    independent of arrival order and duplicates."""
    pki = KeyStore.generate(7, seed=1)
    tracker = SignatureTracker(keystore=pki, threshold=threshold, content_factory=RoundContent)
    for signer in signers:
        tracker.add(1, sign(pki.secret_key(signer), RoundContent(1)))
    assert tracker.reached(1) == (len(set(signers)) >= threshold)
    assert tracker.support(1) == len(set(signers))


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=20))
@settings(max_examples=60)
def test_property_forged_signatures_never_contribute(claimed_signers):
    pki = KeyStore.generate(7, seed=2)
    tracker = SignatureTracker(keystore=pki, threshold=1, content_factory=RoundContent)
    for claimed in claimed_signers:
        tracker.add(1, forge_attempt(claimed, RoundContent(1), guess=claimed))
    assert tracker.support(1) == 0
    assert not tracker.reached(1)
