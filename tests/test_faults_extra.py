"""Tests for the laggard and alternating-two-faced Byzantine behaviours."""

from __future__ import annotations

import pytest

from repro.core.bounds import AUTH, ECHO, precision_bound
from repro.core.messages import SignedRound
from repro.core.params import params_for
from repro.crypto.signatures import KeyStore
from repro.faults.behaviors import AdversaryContext, AlternatingTwoFacedAuth, LaggardAuth
from repro.faults.strategies import TOLERATED_ATTACKS, make_faulty_processes
from repro.sim.clocks import FixedRateClock
from repro.sim.engine import Simulation
from repro.sim.network import FixedDelay
from repro.workloads.scenarios import Scenario, run_scenario


def test_new_attacks_are_registered_as_tolerated():
    assert "laggard" in TOLERATED_ATTACKS
    assert "alternating" in TOLERATED_ATTACKS


def test_laggard_messages_take_the_maximum_delay():
    params = params_for(4, f=1, rho=1e-4, tdel=0.01, period=1.0)
    keystore = KeyStore.generate(4, seed=0)
    sim = Simulation(tmin=0.0, tdel=params.tdel, delay_policy=FixedDelay(0.001), seed=0)
    laggard = LaggardAuth(3, params, keystore, keystore.secret_key(3))
    sim.add_process(laggard, FixedRateClock(), faulty=True)
    arrivals = []
    sim.network.register(0, lambda env: arrivals.append((sim.now, env.send_time)))
    sim.network.register(1, lambda env: None)
    sim.network.register(2, lambda env: None)
    sim.run_until(1.2)
    assert arrivals, "the laggard still participates"
    for receive_time, send_time in arrivals:
        assert receive_time - send_time == pytest.approx(params.tdel)


def test_alternating_two_faced_switches_destination_group():
    params = params_for(5, f=1, rho=1e-4, tdel=0.01, period=1.0)
    keystore = KeyStore.generate(5, seed=0)
    context = AdversaryContext.build(params, faulty_pids=[4], honest_pids=[0, 1, 2, 3], keystore=keystore)
    sim = Simulation(tmin=0.0, tdel=params.tdel, delay_policy=FixedDelay(0.001), seed=0)
    attacker = AlternatingTwoFacedAuth(4, params, keystore, keystore.secret_key(4), context=context)
    sim.add_process(attacker, FixedRateClock(), faulty=True)
    received: dict[int, list] = {pid: [] for pid in range(4)}
    for pid in range(4):
        sim.network.register(pid, lambda env, pid=pid: received[env.dest].append(env.payload))
    sim.run_until(1.1)  # round 1 (odd) goes to the slow group only
    fast_has_round1 = any(
        isinstance(m, SignedRound) and m.round == 1 for pid in context.fast_group for m in received[pid]
    )
    slow_has_round1 = any(
        isinstance(m, SignedRound) and m.round == 1 for pid in context.slow_group for m in received[pid]
    )
    assert slow_has_round1 and not fast_has_round1


@pytest.mark.parametrize("algorithm", [AUTH, ECHO])
@pytest.mark.parametrize("attack", ["laggard", "alternating"])
def test_new_attack_factories_build_for_both_algorithms(algorithm, attack):
    params = params_for(7, f=2, authenticated=(algorithm == AUTH), rho=1e-4, tdel=0.01)
    keystore = KeyStore.generate(7, seed=1) if algorithm == AUTH else None
    context = AdversaryContext.build(params, faulty_pids=[5, 6], honest_pids=[0, 1, 2, 3, 4], keystore=keystore)
    processes = make_faulty_processes(attack, context, algorithm, keystore)
    assert [p.pid for p in processes] == [5, 6]
    assert all(p.faulty for p in processes)


@pytest.mark.parametrize("algorithm", ["auth", "echo"])
@pytest.mark.parametrize("attack", ["laggard", "alternating"])
def test_new_attacks_are_tolerated_end_to_end(algorithm, attack):
    params = params_for(7, authenticated=(algorithm == "auth"), rho=1e-4, tdel=0.01, period=1.0,
                        initial_offset_spread=0.005)
    scenario = Scenario(
        params=params,
        algorithm=algorithm,
        attack=attack,
        rounds=8,
        clock_mode="extreme",
        delay_mode="targeted",
        seed=17,
    )
    result = run_scenario(scenario)
    assert result.completed_round >= 8
    assert result.guarantees_hold, result.guarantees.describe()
    assert result.precision <= precision_bound(params, AUTH if algorithm == "auth" else ECHO)
