"""Span tracing and exporters: ambient nesting, rebasing, file formats.

Unit coverage for :mod:`repro.obs`: the disabled path allocates nothing and
returns the shared null span, ambient thread-local parenting, cross-process
payload ingest with clock rebasing, and the three exporters (Chrome trace,
JSONL, Prometheus text) including :func:`validate_trace_file`'s rejection of
malformed or incoherent traces.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.export import (
    render_prometheus,
    validate_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def _obs_disabled():
    obs.disable()
    yield
    obs.disable()


# -- disabled path ---------------------------------------------------------


def test_disabled_helpers_are_allocation_free_no_ops():
    assert not obs.enabled() and not obs.metrics_enabled()
    span = obs.span("anything")
    assert span is NULL_SPAN  # the one shared instance, no Span allocated
    with span as active:
        active.set("key", "value")
        active.event("point")
    assert span.span_id is None
    obs.event("nobody-listening")
    obs.inc("counter")
    obs.gauge_max("gauge", 1.0)
    obs.observe("hist", 1.0)
    assert obs.wire_context() is None  # untraced task frames stay 4-element
    assert obs.tracer() is None and obs.registry() is None


def test_enable_disable_roundtrip():
    obs.enable()
    assert obs.enabled() and obs.metrics_enabled()
    assert obs.span("x") is not NULL_SPAN
    context = obs.wire_context()
    assert context == {"trace": True, "parent": None, "metrics": True}
    obs.disable()
    assert obs.span("x") is NULL_SPAN


def test_enable_metrics_only():
    obs.enable(trace=False, metrics=True)
    assert not obs.enabled() and obs.metrics_enabled()
    assert obs.span("x") is NULL_SPAN
    obs.inc("c", 2)
    assert obs.registry().counter("c") == 2
    # A metrics-only context still rides the frame so workers collect counters.
    assert obs.wire_context() == {"trace": False, "parent": None, "metrics": True}


def test_install_swaps_and_restores():
    obs.enable()
    original = (obs.tracer(), obs.registry())
    replacement = (Tracer(), MetricsRegistry())
    previous = obs.install(*replacement)
    assert previous == original
    assert (obs.tracer(), obs.registry()) == replacement
    obs.install(*previous)
    assert (obs.tracer(), obs.registry()) == original


# -- ambient nesting -------------------------------------------------------


def test_nested_spans_parent_ambiently():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        assert tracer.current_id() == outer.span_id
        with tracer.span("inner") as inner:
            assert inner.parent_id == outer.span_id
    assert tracer.current_id() is None
    assert outer.status == "ok" and inner.status == "ok"
    assert inner.start >= outer.start and inner.end <= outer.end


def test_span_records_error_status_on_raise():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    (span,) = tracer.all_spans()
    assert span.status == "error" and span.end is not None


def test_begin_does_not_touch_ambient_stack():
    tracer = Tracer()
    detached = tracer.begin("async-task")
    assert tracer.current_id() is None  # begin() is for submit/complete pairs
    with tracer.span("child", parent=detached.span_id) as child:
        assert child.parent_id == detached.span_id
    detached.finish()
    assert detached.status == "ok"
    detached.finish("error")  # idempotent: the first finish wins
    assert detached.status == "ok"


def test_activation_parents_without_finishing():
    tracer = Tracer()
    root = tracer.begin("root")
    with tracer.activate(root):
        with tracer.span("child") as child:
            assert child.parent_id == root.span_id
    assert root.end is None  # leaving the activation never closes the span
    root.finish()


def test_span_ids_are_origin_prefixed_and_unique():
    tracer = Tracer()
    ids = [tracer.begin(f"s{i}").span_id for i in range(5)]
    assert len(set(ids)) == 5
    assert all(span_id.split(":", 1)[0] == tracer.origin for span_id in ids)


# -- cross-process ingest --------------------------------------------------


def test_ingest_rebases_foreign_clock():
    parent = Tracer()
    worker = Tracer()
    with worker.span("worker.task") as span:
        span.event("mark", {"k": 1})
    payload = worker.export_payload()
    # Simulate a worker whose monotonic clock started 5 s "later" relative to
    # wall time: ingest must shift every timestamp by the anchor difference.
    payload["clock_offset"] = parent.clock_offset + 5.0
    assert parent.ingest(payload) == 1
    (ingested,) = parent.all_spans()
    assert ingested.span_id == span.span_id  # origin-prefixed ids survive
    assert ingested.start == pytest.approx(span.start + 5.0)
    assert ingested.end == pytest.approx(span.end + 5.0)
    event_time, event_name, detail = ingested.events[0]
    assert event_name == "mark" and detail == {"k": 1}
    assert event_time == pytest.approx(span.events[0][0] + 5.0)


def test_export_payload_closes_open_spans_as_open():
    tracer = Tracer()
    tracer.begin("leaked")
    payload = tracer.export_payload()
    (entry,) = payload["spans"]
    assert entry["status"] == "open" and entry["end"] is not None


def test_close_open_with_status():
    tracer = Tracer()
    tracer.begin("in-flight")
    done = tracer.begin("done")
    done.finish()
    assert tracer.close_open("lost") == 1
    statuses = sorted(span.status for span in tracer.all_spans())
    assert statuses == ["lost", "ok"]


# -- exporters -------------------------------------------------------------


def _two_origin_spans() -> list:
    """A parent span plus an ingested worker child, as export-ready dicts."""
    parent = Tracer()
    worker = Tracer()
    with parent.span("runner.sweep") as sweep:
        child = worker.begin("worker.task", parent=sweep.span_id)
        child.set("task", 0)
        child.finish()
        parent.ingest(worker.export_payload())
    return parent.export_payload()["spans"]


def test_chrome_trace_roundtrip_and_validation(tmp_path):
    path = tmp_path / "trace.json"
    spans = _two_origin_spans()
    assert write_chrome_trace(path, spans) == 2
    info = validate_trace_file(path)
    assert info == {"spans": 2, "origins": 2, "linked": 1}
    payload = json.loads(path.read_text())
    assert payload["displayTimeUnit"] == "ms"
    events = payload["traceEvents"]
    assert {event["ph"] for event in events} == {"X"}
    pids = {event["args"]["id"].split(":")[0]: event["pid"] for event in events}
    assert len(set(pids.values())) == 2  # one viewer lane per origin


def test_jsonl_roundtrip(tmp_path):
    path = tmp_path / "spans.jsonl"
    spans = _two_origin_spans()
    assert write_jsonl(path, spans) == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 2
    for entry in lines:
        assert set(entry) == {"id", "parent", "name", "start", "end", "status", "attrs", "events"}
    assert lines == sorted(lines, key=lambda entry: (entry["start"], entry["id"]))


def test_validate_rejects_malformed_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        validate_trace_file(path)
    path.write_text('{"no": "traceEvents"}')
    with pytest.raises(ValueError, match="traceEvents"):
        validate_trace_file(path)


def test_validate_rejects_duplicate_ids(tmp_path):
    spans = _two_origin_spans()
    spans.append(dict(spans[0]))
    path = tmp_path / "dup.json"
    write_chrome_trace(path, spans)
    with pytest.raises(ValueError, match="duplicate span id"):
        validate_trace_file(path)


def test_validate_rejects_unknown_parent(tmp_path):
    spans = _two_origin_spans()
    spans[1]["parent"] = "ffffffff:999"
    path = tmp_path / "orphan.json"
    write_chrome_trace(path, spans)
    with pytest.raises(ValueError, match="unknown parent"):
        validate_trace_file(path)


def test_validate_rejects_child_escaping_parent(tmp_path):
    tracer = Tracer()
    with tracer.span("parent"):
        pass
    runaway = tracer.begin("runaway")
    runaway.parent_id = tracer.all_spans()[0].span_id
    runaway.start = tracer.all_spans()[0].start
    runaway.end = runaway.start + 10.0  # far past the parent's end
    runaway.status = "ok"
    path = tmp_path / "escape.json"
    write_chrome_trace(path, tracer.export_payload()["spans"])
    with pytest.raises(ValueError, match="escapes parent"):
        validate_trace_file(path)


def test_render_prometheus():
    registry = MetricsRegistry()
    registry.inc("cache.hits", 3)
    registry.gauge_max("fleet.backlog-peak", 2.5)
    registry.observe("fleet.queue_wait_s", 0.0004)  # below the first bound
    registry.observe("fleet.queue_wait_s", 1e9)  # beyond the last bound
    text = render_prometheus(registry.snapshot())
    assert "# TYPE repro_cache_hits counter\nrepro_cache_hits 3\n" in text
    assert "# TYPE repro_fleet_backlog_peak gauge" in text  # dots and dashes mangled
    assert 'repro_fleet_queue_wait_s_bucket{le="0.0005"} 1' in text
    assert 'repro_fleet_queue_wait_s_bucket{le="+Inf"} 2' in text
    assert "repro_fleet_queue_wait_s_count 2" in text
    assert render_prometheus({}) == ""
