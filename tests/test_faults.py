"""Unit tests for the Byzantine behaviours and strategy registry."""

from __future__ import annotations

import pytest

from repro.core.bounds import AUTH, ECHO
from repro.core.messages import EchoMessage, InitMessage, SignatureBundle, SignedRound
from repro.core.params import params_for
from repro.crypto.signatures import KeyStore
from repro.faults.behaviors import (
    AdversaryContext,
    EagerEchoer,
    EagerSigner,
    EchoCabalMember,
    ForgeAndFlood,
    ReplayAttacker,
    RushingCabalLeader,
    SilentFaulty,
    TwoFacedAuth,
)
from repro.faults.strategies import (
    ALL_ATTACKS,
    available_attacks,
    breaking_attack_for,
    make_faulty_processes,
    register_attack,
)
from repro.sim.clocks import FixedRateClock
from repro.sim.engine import Simulation
from repro.sim.network import FixedDelay


def make_context(n=5, f=2, with_keys=True, seed=0):
    params = params_for(n, f=f, rho=1e-4, tdel=0.01, period=1.0)
    keystore = KeyStore.generate(n, seed=seed) if with_keys else None
    faulty = list(range(n - f, n))
    honest = list(range(n - f))
    context = AdversaryContext.build(params, faulty_pids=faulty, honest_pids=honest, keystore=keystore, seed=seed)
    return params, keystore, context


def make_sim_with_sinks(n=5, tdel=0.01):
    sim = Simulation(tmin=0.0, tdel=tdel, delay_policy=FixedDelay(0.001), seed=0)
    received = {pid: [] for pid in range(n)}
    return sim, received


def attach_sinks(sim, received, pids):
    for pid in pids:
        sim.network.register(pid, lambda env, pid=pid: received[env.dest].append(env.payload))


def test_context_build_splits_fast_and_slow_groups():
    _, _, context = make_context(n=7, f=3)
    assert set(context.fast_group) | set(context.slow_group) == set(context.honest_pids)
    assert set(context.fast_group).isdisjoint(context.slow_group)
    assert len(context.fast_group) >= 1


def test_context_collects_only_faulty_secret_keys():
    params, keystore, context = make_context(n=5, f=2)
    assert set(context.secret_keys) == {3, 4}


def test_silent_faulty_sends_nothing():
    params, keystore, context = make_context()
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(3))
    sim.add_process(SilentFaulty(4, context), FixedRateClock(), faulty=True)
    sim.run_until(2.0)
    assert all(len(v) == 0 for v in received.values())
    assert sim.network.stats.total_messages == 0


def test_eager_signer_broadcasts_valid_early_signatures():
    params, keystore, context = make_context()
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(3))
    sim.add_process(EagerSigner(4, context, rounds=3), FixedRateClock(), faulty=True)
    sim.run_until(1.0)
    msgs = [m for m in received[0] if isinstance(m, SignedRound)]
    assert {m.round for m in msgs} == {1}
    from repro.core.messages import RoundContent

    assert all(keystore.verify(m.signature, RoundContent(m.round), claimed_signer=4) for m in msgs)
    # Round-1 signatures arrive before real time 1.0 * 0.9: they are "early".
    assert sim.now <= 1.0


def test_eager_signer_without_key_stays_silent():
    params, _, context = make_context(with_keys=False)
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(3))
    sim.add_process(EagerSigner(4, context, rounds=3), FixedRateClock(), faulty=True)
    sim.run_until(1.0)
    assert all(len(v) == 0 for v in received.values())


def test_eager_echoer_sends_inits_and_echoes():
    params, _, context = make_context(with_keys=False)
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(3))
    sim.add_process(EagerEchoer(4, context, rounds=2), FixedRateClock(), faulty=True)
    sim.run_until(2.0)
    kinds = {type(m) for m in received[1]}
    assert InitMessage in kinds and EchoMessage in kinds


def test_two_faced_auth_only_talks_to_fast_group():
    params, keystore, context = make_context(n=5, f=1)
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(4))
    proc = TwoFacedAuth(4, params, keystore, keystore.secret_key(4), context=context)
    sim.add_process(proc, FixedRateClock(), faulty=True)
    sim.run_until(1.2)
    for pid in context.fast_group:
        assert any(isinstance(m, SignedRound) for m in received[pid])
    for pid in context.slow_group:
        assert not any(isinstance(m, SignedRound) for m in received[pid])


def test_forge_and_flood_produces_traffic_that_never_verifies():
    params, keystore, context = make_context()
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(3))
    sim.add_process(ForgeAndFlood(4, context, interval=0.05), FixedRateClock(), faulty=True)
    sim.run_until(0.5)
    signed = [m for m in received[0] if isinstance(m, SignedRound)]
    assert signed  # it does flood
    from repro.core.messages import RoundContent

    assert all(not keystore.verify(m.signature, RoundContent(m.round)) for m in signed)


def test_replay_attacker_rebroadcasts_observed_messages():
    params, keystore, context = make_context()
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(3))
    replayer = ReplayAttacker(4, context, replay_delay=0.1)
    sim.add_process(replayer, FixedRateClock(), faulty=True)
    original = InitMessage(round=7)
    sim.schedule_at(0.05, lambda: sim.network.send(0, 4, original))
    sim.run_until(0.5)
    assert any(m == original for m in received[1])


def test_rushing_cabal_fabricates_valid_proofs_with_enough_keys():
    # The cabal only works above the resilience threshold: the algorithm assumes
    # f = 2 but f + 1 = 3 processes actually collude.
    params = params_for(6, f=2, rho=1e-4, tdel=0.01, period=1.0)
    keystore = KeyStore.generate(6, seed=0)
    context = AdversaryContext.build(params, faulty_pids=[3, 4, 5], honest_pids=[0, 1, 2], keystore=keystore)
    sim, received = make_sim_with_sinks(n=6)
    attach_sinks(sim, received, range(3))
    leader = RushingCabalLeader(4, context, attack_time=0.1, pump_rounds=3)
    sim.add_process(leader, FixedRateClock(), faulty=True)
    sim.run_until(0.5)
    from repro.core.messages import RoundContent

    bundles = [m for m in received[context.fast_group[0]] if isinstance(m, SignatureBundle)]
    assert {b.round for b in bundles} == {1, 2, 3}
    for bundle in bundles:
        assert len(bundle.signatures) == params.f + 1
        assert all(keystore.verify(s, RoundContent(bundle.round)) for s in bundle.signatures)
    # The slow group receives nothing from the cabal directly.
    for pid in context.slow_group:
        assert not any(isinstance(m, SignatureBundle) for m in received[pid])


def test_rushing_cabal_without_enough_keys_does_nothing():
    params, keystore, context = make_context(n=5, f=2)
    context.secret_keys.pop(max(context.secret_keys))  # only one key left < f+1
    sim, received = make_sim_with_sinks()
    attach_sinks(sim, received, range(3))
    sim.add_process(RushingCabalLeader(4, context, attack_time=0.1), FixedRateClock(), faulty=True)
    sim.run_until(0.5)
    assert all(len(v) == 0 for v in received.values())


def test_echo_cabal_pumps_inits_and_echoes_to_fast_group():
    params, _, context = make_context(n=7, f=2, with_keys=False)
    sim, received = make_sim_with_sinks(n=7)
    attach_sinks(sim, received, range(5))
    member = EchoCabalMember(6, context, attack_time=0.1, pump_rounds=2)
    sim.add_process(member, FixedRateClock(), faulty=True)
    sim.run_until(0.5)
    fast = context.fast_group[0]
    assert any(isinstance(m, EchoMessage) and m.round == 2 for m in received[fast])
    for pid in context.slow_group:
        assert len(received[pid]) == 0


# -- strategy registry --------------------------------------------------------------------


def test_available_attacks_contains_all_registered():
    names = available_attacks()
    for attack in ALL_ATTACKS:
        assert attack in names


def test_make_faulty_processes_unknown_attack_rejected():
    params, keystore, context = make_context()
    with pytest.raises(ValueError):
        make_faulty_processes("not-an-attack", context, AUTH, keystore)


def test_make_faulty_processes_unknown_algorithm_rejected():
    params, keystore, context = make_context()
    with pytest.raises(ValueError):
        make_faulty_processes("eager", context, "bogus", keystore)


@pytest.mark.parametrize("attack", list(ALL_ATTACKS))
@pytest.mark.parametrize("algorithm", [AUTH, ECHO])
def test_every_attack_instantiates_one_process_per_faulty_pid(attack, algorithm):
    params, keystore, context = make_context(n=7, f=2)
    processes = make_faulty_processes(attack, context, algorithm, keystore)
    assert [p.pid for p in processes] == context.faulty_pids
    assert all(p.faulty for p in processes)


def test_breaking_attack_for_each_algorithm():
    assert breaking_attack_for(AUTH) == "rushing_cabal"
    assert breaking_attack_for(ECHO) == "echo_cabal"


def test_register_custom_attack():
    params, keystore, context = make_context()

    def factory(pid, ctx, algorithm, ks):
        return SilentFaulty(pid, ctx)

    register_attack("custom_silent", factory)
    procs = make_faulty_processes("custom_silent", context, AUTH, keystore)
    assert all(isinstance(p, SilentFaulty) for p in procs)
