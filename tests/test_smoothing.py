"""Tests for the amortized (continuous, rate-bounded) output clocks."""

from __future__ import annotations

import pytest

from repro.core.params import params_for
from repro.core.smoothing import (
    default_catch_up_rate,
    max_lag,
    smooth_all,
    smooth_clock,
    smoothed_skew,
)
from repro.sim.clocks import FixedRateClock
from repro.sim.trace import ProcessTrace
from repro.workloads.scenarios import Scenario, run_scenario


def make_ptrace(rate=1.0, adjustments=()):
    ptrace = ProcessTrace(pid=0, clock=FixedRateClock(rate=rate))
    for t, adj in adjustments:
        ptrace.record_adjustment(t, adj)
    return ptrace


def test_requires_catch_up_rate_above_hardware_rate():
    ptrace = make_ptrace(rate=1.0)
    with pytest.raises(ValueError):
        smooth_clock(ptrace, t_end=10.0, catch_up_rate=1.0)


def test_default_catch_up_rate():
    assert default_catch_up_rate(1.01, 0.1) == pytest.approx(1.111)
    with pytest.raises(ValueError):
        default_catch_up_rate(1.0, 0.0)


def test_smoothed_clock_without_jumps_equals_logical():
    ptrace = make_ptrace(rate=1.0)
    smoothed = smooth_clock(ptrace, t_end=10.0, catch_up_rate=1.1)
    for t in (0.0, 2.5, 7.0, 10.0):
        assert smoothed.value(t) == pytest.approx(t)
    assert smoothed.max_jump() == pytest.approx(0.0)


def test_forward_jump_is_amortized_not_jumped():
    # Logical clock jumps by +1 at t=5; the output clock must absorb it at the
    # extra-rate budget (0.1) over the next ~10 time units.
    ptrace = make_ptrace(rate=1.0, adjustments=[(5.0, 1.0)])
    smoothed = smooth_clock(ptrace, t_end=30.0, catch_up_rate=1.1)
    assert smoothed.max_jump() == pytest.approx(0.0, abs=1e-12)
    assert smoothed.max_rate() <= 1.1 + 1e-9
    # Just after the jump the output clock lags by ~1 ...
    assert ptrace.logical_at(5.0) - smoothed.value(5.0) == pytest.approx(1.0)
    # ... and has fully caught up by t = 5 + 1/0.1 = 15.
    assert ptrace.logical_at(20.0) - smoothed.value(20.0) == pytest.approx(0.0, abs=1e-9)
    assert max_lag(ptrace, smoothed, 30.0) <= 1.0 + 1e-9


def test_backward_jump_never_moves_output_clock_back():
    ptrace = make_ptrace(rate=1.0, adjustments=[(5.0, -0.5)])
    smoothed = smooth_clock(ptrace, t_end=20.0, catch_up_rate=1.1)
    values = [smoothed.value(t) for t in [0.0, 4.9, 5.0, 5.1, 10.0, 20.0]]
    assert values == sorted(values)
    assert smoothed.max_jump() == pytest.approx(0.0, abs=1e-12)
    # The output clock never exceeds the running maximum of the logical clock.
    assert smoothed.value(20.0) <= max(ptrace.logical_at(t) for t in [0.0, 5.0, 20.0]) + 1e-9


def test_rate_bounds_hold_with_drifting_hardware():
    ptrace = ProcessTrace(pid=0, clock=FixedRateClock(rate=1.001))
    ptrace.record_adjustment(2.0, 0.05)
    ptrace.record_adjustment(4.0, 0.1)
    rate = default_catch_up_rate(1.001, 0.05)
    smoothed = smooth_clock(ptrace, t_end=10.0, catch_up_rate=rate)
    assert smoothed.max_rate() <= rate + 1e-9
    assert smoothed.min_rate() >= 0.0


def test_smooth_all_on_a_real_scenario_keeps_clocks_close():
    params = params_for(7, authenticated=True, rho=1e-4, tdel=0.01, period=1.0, initial_offset_spread=0.005)
    result = run_scenario(
        Scenario(params=params, algorithm="auth", attack="eager", rounds=8,
                 clock_mode="extreme", delay_mode="targeted", seed=6)
    )
    smoothed = smooth_all(result.trace, amortization=0.1)
    assert set(smoothed) == set(result.trace.honest_pids())
    # Continuity and rate bounds for every output clock.
    for pid, clock in smoothed.items():
        hw_max = result.trace.processes[pid].clock.max_rate
        assert clock.max_jump() == pytest.approx(0.0, abs=1e-9)
        assert clock.max_rate() <= hw_max * 1.1 + 1e-9
    # The output clocks lag the logical clocks by at most the largest correction,
    # so their mutual skew stays within the original precision plus that lag.
    sample_times = [0.5 * i for i in range(1, int(result.trace.end_time * 2))]
    skew = smoothed_skew(smoothed, sample_times)
    worst_lag = max(
        max_lag(result.trace.processes[pid], clock, result.trace.end_time)
        for pid, clock in smoothed.items()
    )
    assert skew <= result.precision_overall + worst_lag + 1e-9
    assert worst_lag <= 0.1  # corrections are tiny compared to the period
