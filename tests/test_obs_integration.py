"""End-to-end telemetry: cross-process span trees, loss, parity, CLI.

The acceptance contract for the observability layer: a subprocess sweep
reconstructs one coherent span tree spanning parent and worker processes;
a worker killed mid-chunk leaves its orphaned spans closed with status
``lost`` (and the timeline still validates); and -- the hard constraint --
a traced run is float-for-float identical to an untraced run, across the
executor seam and across both simulation kernels.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal

import pytest

from repro import obs
from repro.analysis.serialize import result_to_json
from repro.cli import main as cli_main
from repro.experiments.common import adversarial_scenario, default_params
from repro.obs.export import validate_trace_file
from repro.runner import SubprocessWorkerExecutor, SweepRunner, reset_runner
from repro.runner.exec import faultinject
from repro.workloads.scenarios import run_scenario

from test_executors import FAST, fingerprint, wait_for
from test_shard_merge import _parity_grid


@pytest.fixture(autouse=True)
def _clean_obs_and_runner():
    reset_runner()
    obs.disable()
    yield
    obs.disable()
    reset_runner()


def _origin(span) -> str:
    return span.span_id.split(":", 1)[0]


# -- cross-process span-tree reconstruction --------------------------------


def test_subprocess_sweep_reconstructs_cross_process_span_tree(tmp_path):
    obs.enable()
    scenario = dataclasses.replace(_parity_grid()[0], replications=4, shards=4, name="")
    with SweepRunner(jobs=2, executor=SubprocessWorkerExecutor(2, **FAST)) as runner:
        runner.run(scenario, trace_level="metrics")
    spans = obs.tracer().all_spans()
    by_id = {span.span_id: span for span in spans}
    names = {span.name for span in spans}
    assert {"runner.sweep", "exec.task", "exec.attempt", "worker.task", "scenario.shard", "fleet.worker"} <= names
    assert len({_origin(span) for span in spans}) >= 2  # parent + worker processes

    (sweep,) = [span for span in spans if span.name == "runner.sweep"]
    tasks = [span for span in spans if span.name == "exec.task"]
    assert len(tasks) == 4 and all(span.parent_id == sweep.span_id for span in tasks)
    worker_tasks = [span for span in spans if span.name == "worker.task"]
    assert len(worker_tasks) == 4
    for span in worker_tasks:
        # Each worker-side root links across the process boundary to the
        # parent-side exec.task span that shipped it the context.
        parent = by_id[span.parent_id]
        assert parent.name == "exec.task"
        assert _origin(parent) != _origin(span)
    for span in spans:
        if span.name == "scenario.shard":
            assert by_id[span.parent_id].name == "worker.task"
    assert all(span.status == "ok" for span in spans)

    # Worker-side metrics merged home: four lanes accounted, queue waits seen.
    registry = obs.registry()
    lanes = sum(
        registry.counter(f"kernel.{bucket}") or 0
        for bucket in ("vector_lanes", "fallback_lanes", "ineligible_lanes")
    )
    assert lanes == 4
    assert registry.snapshot()["histograms"]["fleet.queue_wait_s"]["count"] >= 1

    # The exported timeline holds together: unique ids, resolvable parents,
    # children nested inside their parents, one viewer lane per process.
    from repro.obs.export import write_chrome_trace

    path = tmp_path / "trace.json"
    write_chrome_trace(path, obs.tracer().export_payload()["spans"])
    info = validate_trace_file(path)
    assert info["spans"] == len(spans)
    assert info["origins"] >= 2
    assert info["linked"] >= len(tasks) + len(worker_tasks)


def test_worker_killed_mid_chunk_closes_orphaned_spans_lost(tmp_path):
    obs.enable()
    latch = str(tmp_path / "latch")
    with SubprocessWorkerExecutor(2, **FAST) as executor:
        future = executor.submit(faultinject.hang_once_task, latch)
        wait_for(lambda: os.path.exists(latch))
        os.kill(int(open(latch).read()), signal.SIGKILL)
        assert future.result(timeout=60) == "recovered"
    spans = obs.tracer().all_spans()
    attempts = [span for span in spans if span.name == "exec.attempt"]
    assert sorted(span.status for span in attempts) == ["lost", "ok"]
    workers = [span for span in spans if span.name == "fleet.worker"]
    assert "lost" in {span.status for span in workers}
    (task,) = [span for span in spans if span.name == "exec.task"]
    assert task.status == "ok"  # the retry recovered the task itself
    # Loss does not corrupt the timeline: the export still validates.
    from repro.obs.export import write_chrome_trace

    path = tmp_path / "trace.json"
    write_chrome_trace(path, obs.tracer().export_payload()["spans"])
    validate_trace_file(path)


# -- the hard constraint: tracing never changes a measured value -----------


def test_traced_subprocess_sweep_float_identical_to_untraced():
    scenarios = _parity_grid()
    untraced = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    obs.enable()
    with SweepRunner(jobs=2, executor=SubprocessWorkerExecutor(2, **FAST)) as runner:
        traced = runner.run_sweep(scenarios, trace_level="metrics")
    assert obs.tracer().all_spans(), "tracing was on but recorded nothing"
    assert fingerprint(traced) == fingerprint(untraced)


@pytest.mark.parametrize("kernel", ["event", "vector"])
def test_traced_run_float_identical_to_untraced_per_kernel(kernel):
    scenario = dataclasses.replace(
        adversarial_scenario(default_params(7, authenticated=True), "auth", attack="skew_max", rounds=5, seed=11),
        replications=3,
        shards=2,
        kernel=kernel,
        name="",
    )
    untraced = run_scenario(scenario, trace_level="metrics")
    obs.enable()
    traced = run_scenario(scenario, trace_level="metrics")
    assert result_to_json(traced) == result_to_json(untraced)
    names = {span.name for span in obs.tracer().all_spans()}
    assert "scenario.shard" in names
    if kernel == "vector":
        assert {"kernel.phase1", "kernel.phase2"} <= names


# -- remote failures are debuggable ----------------------------------------


def test_remote_error_carries_worker_traceback():
    # Works untraced: a remote failure must be debuggable without telemetry.
    with SubprocessWorkerExecutor(1, **FAST) as executor:
        with pytest.raises(ValueError, match="boom") as info:
            executor.submit(faultinject.raise_task, "boom").result(timeout=60)
    exc = info.value
    notes = getattr(exc, "__notes__", None)
    if notes is not None:  # 3.11+: surfaced by the interpreter's own traceback
        assert any("remote worker traceback" in note for note in notes)
        trace_text = "\n".join(notes)
    else:  # 3.10: stashed on the exception instead
        trace_text = exc.remote_traceback
    assert "raise_task" in trace_text


# -- CLI surface -----------------------------------------------------------


def test_cli_run_exports_single_cross_process_timeline(tmp_path):
    trace_path = tmp_path / "trace.json"
    events_path = tmp_path / "spans.jsonl"
    rc = cli_main(
        [
            "run",
            "--executor", "subprocess",
            "--workers", "2",
            "--replications", "4",
            "--shards", "4",
            "--rounds", "3",
            "--no-cache",
            "--trace-out", str(trace_path),
            "--events-out", str(events_path),
        ]
    )
    assert rc == 0
    info = validate_trace_file(trace_path)
    assert info["origins"] >= 2  # parent and worker spans in one timeline
    assert info["linked"] >= 1
    entries = [json.loads(line) for line in events_path.read_text().splitlines()]
    assert len(entries) == info["spans"]
    assert {"runner.sweep", "worker.task"} <= {entry["name"] for entry in entries}
    assert not obs.enabled()  # command-scoped: nothing leaks past main()


def test_cli_stats_reports_cache_fleet_and_provenance(capsys):
    rc = cli_main(
        [
            "stats",
            "--executor", "subprocess",
            "--workers", "2",
            "--replications", "4",
            "--shards", "4",
            "--rounds", "3",
            "--kernel", "vector",
            "--no-cache",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_fleet_tasks counter\nrepro_fleet_tasks 4" in out
    # Live worker-side lane counters and the CLI-edge provenance absorption
    # agree (separate namespaces, same truth).
    assert "repro_kernel_vector_lanes 4" in out
    assert "repro_provenance_vector_lanes 4" in out
    # Cache counters are always present, zero when caching is off.
    assert "repro_cache_hits 0" in out
    assert "repro_cache_misses 0" in out
    assert "repro_fleet_queue_wait_s_bucket" in out
    assert not obs.metrics_enabled()
