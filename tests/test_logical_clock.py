"""Unit tests for the logical clock abstraction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.clock import LogicalClock


def test_initial_value_equals_hardware():
    clock = LogicalClock()
    assert clock.value(3.5) == 3.5
    assert clock.adjustment == 0.0


def test_initial_adjustment_applied():
    clock = LogicalClock(initial_adjustment=0.25)
    assert clock.value(1.0) == pytest.approx(1.25)


def test_set_to_moves_clock_to_target():
    clock = LogicalClock()
    result = clock.set_to(5.0, hardware_reading=4.9)
    assert result.before == pytest.approx(4.9)
    assert result.after == pytest.approx(5.0)
    assert result.delta == pytest.approx(0.1)
    assert not result.suppressed
    assert clock.value(4.9) == pytest.approx(5.0)
    assert clock.value(5.9) == pytest.approx(6.0)


def test_set_to_backwards_allowed_by_default():
    clock = LogicalClock()
    result = clock.set_to(1.0, hardware_reading=2.0)
    assert result.delta == pytest.approx(-1.0)
    assert clock.value(2.0) == pytest.approx(1.0)


def test_monotonic_suppresses_backward_adjustment():
    clock = LogicalClock()
    result = clock.set_to(1.0, hardware_reading=2.0, monotonic=True)
    assert result.suppressed
    assert result.delta == 0.0
    assert clock.value(2.0) == pytest.approx(2.0)


def test_monotonic_allows_forward_adjustment():
    clock = LogicalClock()
    result = clock.set_to(3.0, hardware_reading=2.0, monotonic=True)
    assert not result.suppressed
    assert clock.value(2.0) == pytest.approx(3.0)


def test_hardware_target_for_inverts_value():
    clock = LogicalClock()
    clock.set_to(10.0, hardware_reading=9.0)
    target = clock.hardware_target_for(12.0)
    assert clock.value(target) == pytest.approx(12.0)


def test_shift_by_accumulates():
    clock = LogicalClock()
    clock.shift_by(0.5)
    clock.shift_by(-0.2)
    assert clock.adjustment == pytest.approx(0.3)
    assert clock.value(1.0) == pytest.approx(1.3)


@given(
    target=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    reading=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_property_set_to_reaches_target_exactly(target, reading):
    clock = LogicalClock()
    clock.set_to(target, hardware_reading=reading)
    # ``reading + (target - reading)`` cancels catastrophically when target is
    # tiny and reading is large, so allow the absolute error of that float op.
    assert clock.value(reading) == pytest.approx(target, abs=1e-9 * max(1.0, reading * 1e-3))


@given(
    target=st.floats(min_value=0.0, max_value=1e3),
    reading=st.floats(min_value=0.0, max_value=1e3),
)
def test_property_monotonic_never_decreases(target, reading):
    clock = LogicalClock()
    before = clock.value(reading)
    clock.set_to(target, hardware_reading=reading, monotonic=True)
    assert clock.value(reading) >= before - 1e-12
