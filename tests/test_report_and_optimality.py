"""Unit tests for the table formatter and the guarantee checker."""

from __future__ import annotations

import pytest

from repro.analysis.optimality import GuaranteeCheck, verify_guarantees
from repro.analysis.report import Table, render_tables
from repro.core.params import params_for
from repro.sim.clocks import FixedRateClock
from repro.sim.trace import ResyncEvent, Trace


# -- Table --------------------------------------------------------------------------


def test_table_render_contains_title_headers_and_rows():
    table = Table(title="Demo", headers=["a", "b"])
    table.add_row(1, 2.34567)
    table.add_row("x", True)
    text = table.render()
    assert "Demo" in text
    assert "a" in text and "b" in text
    assert "2.3457" in text
    assert "yes" in text


def test_table_rejects_wrong_row_length():
    table = Table(title="t", headers=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_table_column_access():
    table = Table(title="t", headers=["a", "b"])
    table.add_row(1, 2)
    table.add_row(3, 4)
    assert table.column("b") == [2, 4]
    with pytest.raises(ValueError):
        table.column("missing")


def test_table_notes_rendered():
    table = Table(title="t", headers=["a"])
    table.add_row(1)
    table.add_note("hello note")
    assert "hello note" in table.render()


def test_table_markdown_format():
    table = Table(title="md", headers=["col1", "col2"])
    table.add_row(1, False)
    md = table.to_markdown()
    assert "| col1 | col2 |" in md
    assert "| 1 | no |" in md
    assert md.startswith("### md")


def test_render_tables_joins_multiple():
    t1 = Table(title="one", headers=["a"])
    t1.add_row(1)
    t2 = Table(title="two", headers=["a"])
    t2.add_row(2)
    combined = render_tables([t1, t2])
    assert "one" in combined and "two" in combined


def test_str_is_render():
    table = Table(title="t", headers=["a"])
    table.add_row(5)
    assert str(table) == table.render()


# -- GuaranteeCheck / verify_guarantees ---------------------------------------------------


def test_guarantee_check_describe():
    check = GuaranteeCheck(name="precision", measured=0.1, bound=0.2, holds=True)
    assert "precision" in check.describe()
    assert "OK" in check.describe()
    bad = GuaranteeCheck(name="precision", measured=0.3, bound=0.2, holds=False)
    assert "VIOLATED" in bad.describe()


def synthetic_good_trace(params, rounds=5):
    """A hand-built trace that perfectly satisfies all guarantees."""
    trace = Trace()
    alpha = params.alpha_value
    for pid in range(params.n - params.f):
        trace.add_process(pid, FixedRateClock(rate=1.0, offset=0.0))
    for pid in range(params.n - params.f, params.n):
        trace.add_process(pid, FixedRateClock(), faulty=True)
    for k in range(1, rounds + 1):
        for pid in range(params.n - params.f):
            t = k * params.period + 0.002 + 0.0005 * pid
            before = trace.processes[pid].logical_at(t)
            after = k * params.period + alpha
            trace.record_adjustment(pid, t, after - t)
            trace.record_resync(ResyncEvent(pid=pid, round=k, time=t, logical_before=before, logical_after=after))
    trace.end_time = (rounds + 0.5) * params.period
    return trace


def test_verify_guarantees_all_hold_on_good_trace():
    params = params_for(5, authenticated=True)
    trace = synthetic_good_trace(params)
    report = verify_guarantees(trace, params, "auth", expected_round=5)
    assert report.all_hold, report.describe()
    assert report.violated() == []
    assert report.by_name("precision").holds
    assert "OK" in report.describe()


def test_verify_guarantees_detects_precision_violation():
    params = params_for(5, authenticated=True)
    trace = synthetic_good_trace(params)
    # Inject a huge divergence of process 0 late in the run.
    trace.record_adjustment(0, trace.end_time - 0.1, 3.0)
    report = verify_guarantees(trace, params, "auth", expected_round=5)
    assert not report.all_hold
    assert not report.by_name("precision").holds


def test_verify_guarantees_detects_liveness_violation():
    params = params_for(5, authenticated=True)
    trace = synthetic_good_trace(params, rounds=3)
    report = verify_guarantees(trace, params, "auth", expected_round=10)
    assert not report.by_name("liveness").holds


def test_verify_guarantees_detects_period_violation():
    params = params_for(5, authenticated=True)
    trace = synthetic_good_trace(params)
    # An extra, far-too-early resync of process 0 breaks the minimum period.
    t = 5 * params.period + 0.1
    trace.record_adjustment(0, t, trace.processes[0].adjustment_at(t))
    trace.record_resync(ResyncEvent(pid=0, round=6, time=t, logical_before=0, logical_after=0))
    report = verify_guarantees(trace, params, "auth", expected_round=5)
    assert not report.by_name("period_min").holds


def test_verify_guarantees_unknown_name_raises():
    params = params_for(5, authenticated=True)
    report = verify_guarantees(synthetic_good_trace(params), params, "auth")
    with pytest.raises(KeyError):
        report.by_name("nonexistent")
