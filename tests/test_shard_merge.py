"""Shard-merge algebra: sharded execution never changes a measured value.

The sharded backend rests on one algebraic fact: folding per-replication
summaries through :func:`repro.sim.recorder.merge_summaries` is associative
and (up to the order of concatenated sequences) commutative, with every
combining operation exact -- so any shard grouping of the same replications
produces float-for-float the same summary, and the parallel backend equals
the serial fold by construction.  These tests pin that fact down directly on
the algebra, across the crash/startup/joiner/drifting/tie-heavy parity grid
end to end, and on the runner's parent-side memory behaviour (shard folding
must not accumulate results in the parent).
"""

from __future__ import annotations

import dataclasses
import gc
import weakref

import pytest

from repro.experiments.common import adversarial_scenario, benign_scenario, default_params
from repro.runner.core import SweepRunner
from repro.sim.recorder import merge_summaries
from repro.workloads.scenarios import (
    Scenario,
    build_cluster,
    plan_shards,
    replicate,
    resolve_adaptive,
    resolve_shards,
    run_scenario,
    run_shard,
)

MEASURED_FIELDS = (
    "precision",
    "precision_overall",
    "acceptance_spread",
    "completed_round",
    "total_messages",
    "messages_per_round",
    "effective_horizon",
    "stopped_early",
    "accuracy",
)


def _parity_grid() -> list[Scenario]:
    """The shard-parity grid: every case where merging could drift."""
    return [
        # Crash faults (the crash ceiling and liveness gaps must merge right).
        adversarial_scenario(default_params(7, authenticated=True), "auth", attack="crash", rounds=5, seed=3),
        # Start-up from scratch: steady-state starts late and varies per seed.
        Scenario(
            params=default_params(5, authenticated=True),
            algorithm="auth",
            attack="silent",
            rounds=5,
            use_startup=True,
            boot_spread=0.004,
            clock_mode="extreme",
            delay_mode="uniform",
            seed=8,
        ),
        # A late joiner: liveness triples include a late first round.
        Scenario(
            params=default_params(5, authenticated=True),
            algorithm="auth",
            attack="silent",
            rounds=5,
            joiner_count=1,
            join_time=2.5,
            clock_mode="extreme",
            delay_mode="uniform",
            seed=9,
        ),
        # Drifting piecewise-linear clocks: densest window-sample streams.
        benign_scenario(default_params(5, authenticated=True), "auth", rounds=5, seed=5),
        # Tie-heavy worst-case delay policies (echo variant).
        dataclasses.replace(
            adversarial_scenario(
                default_params(7, authenticated=False), "echo", attack="skew_max", rounds=5, seed=2
            ),
            delay_mode="max",
            name="",
        ),
    ]


def _rep_summaries(scenario: Scenario, count: int) -> list:
    """Individual mergeable summaries of ``count`` replications."""
    replicated = dataclasses.replace(scenario, replications=count, name="")
    return [run_shard(replicated, i, (i,)).summary for i in range(count)]


def _scalar_fields(summary) -> dict:
    skip = {"liveness_triples", "notes", "window_samples", "message_stats"}
    return {
        field.name: getattr(summary, field.name)
        for field in dataclasses.fields(summary)
        if field.name not in skip
    }


# -- algebra ---------------------------------------------------------------


def test_merge_is_associative():
    a, b, c = _rep_summaries(_parity_grid()[0], 3)
    left = merge_summaries([merge_summaries([a, b]), c])
    right = merge_summaries([a, merge_summaries([b, c])])
    flat = merge_summaries([a, b, c])
    assert left == right == flat


def test_merge_is_commutative_up_to_order():
    a, b, c = _rep_summaries(_parity_grid()[3], 3)
    forward = merge_summaries([a, b, c])
    backward = merge_summaries([c, b, a])
    assert _scalar_fields(forward) == _scalar_fields(backward)
    assert forward.message_stats == backward.message_stats
    assert sorted(map(repr, forward.liveness_triples)) == sorted(map(repr, backward.liveness_triples))
    assert sorted(forward.notes) == sorted(backward.notes)
    # The window-rate extremes are re-derived from the union of samples, so
    # they are exactly order-independent too (not just up to tolerance).
    assert forward.slowest_window_rate == backward.slowest_window_rate
    assert forward.fastest_window_rate == backward.fastest_window_rate


def test_merge_single_is_identity():
    (summary,) = _rep_summaries(_parity_grid()[0], 1)
    assert merge_summaries([summary]) is summary
    with pytest.raises(ValueError):
        merge_summaries([])


def test_mergeable_summary_equals_plain_summary():
    """mergeable=True only adds the retained samples; every metric is unchanged."""
    scenario = _parity_grid()[3]
    summaries = {}
    for mergeable in (False, True):
        handles = build_cluster(scenario, trace_level="metrics", mergeable=mergeable)
        summaries[mergeable] = handles.sim.run_until_round(
            scenario.rounds,
            t_max=scenario.horizon(),
            adaptive=resolve_adaptive(scenario, "metrics"),
        )
    assert summaries[False].window_samples is None
    assert summaries[True].window_samples is not None
    assert summaries[True].compact() == summaries[False]


def test_merge_random_groupings_are_float_identical():
    """Any partition of the replications folds to the same summary."""
    import random

    summaries = _rep_summaries(_parity_grid()[4], 5)
    reference = merge_summaries(summaries)
    rng = random.Random(7)
    for _ in range(6):
        cut_a = rng.randint(1, 4)
        cut_b = rng.randint(cut_a, 4)
        groups = [summaries[:cut_a], summaries[cut_a:cut_b], summaries[cut_b:]]
        folded = merge_summaries([merge_summaries(group) for group in groups if group])
        assert folded == reference


# -- end to end across the parity grid -------------------------------------


@pytest.mark.parametrize("scenario", _parity_grid(), ids=lambda s: s.name)
def test_sharded_equals_unsharded(scenario):
    replicated = dataclasses.replace(scenario, replications=3, shards=1, name="")
    reference = run_scenario(replicated, trace_level="metrics")
    assert reference.shard_count == 1
    assert reference.shard_horizons == (reference.effective_horizon,)
    for shards in (2, 3):
        result = run_scenario(dataclasses.replace(replicated, shards=shards, name=""), trace_level="metrics")
        assert result.shard_count == shards
        assert len(result.shard_horizons) == shards
        assert max(result.shard_horizons) == result.effective_horizon
        for field in MEASURED_FIELDS:
            assert getattr(result, field) == getattr(reference, field), field
        if reference.guarantees is None:
            assert result.guarantees is None
        else:
            assert result.guarantees.all_hold == reference.guarantees.all_hold
            assert [
                (check.name, check.measured, check.bound, check.holds)
                for check in result.guarantees.checks
            ] == [
                (check.name, check.measured, check.bound, check.holds)
                for check in reference.guarantees.checks
            ]


def test_pool_sharded_equals_serial_fold():
    scenario = dataclasses.replace(_parity_grid()[0], replications=4, shards=4, name="")
    serial = run_scenario(scenario, trace_level="metrics")
    with SweepRunner(jobs=2) as runner:
        pooled = runner.run(scenario, trace_level="metrics")
    for field in MEASURED_FIELDS:
        assert getattr(pooled, field) == getattr(serial, field), field
    assert pooled.shard_count == serial.shard_count == 4
    assert pooled.shard_horizons == serial.shard_horizons


# -- plumbing ---------------------------------------------------------------


def test_shard_plan_is_balanced_and_resolved(monkeypatch):
    scenario = dataclasses.replace(_parity_grid()[0], replications=7, shards=3, name="")
    plan = plan_shards(scenario)
    assert [len(block) for block in plan] == [3, 2, 2]
    assert [index for block in plan for index in block] == list(range(7))
    # The plan is capped by the replication count...
    capped = dataclasses.replace(scenario, shards=99, name="")
    assert resolve_shards(capped) == 7
    # ...an unreplicated scenario never shards...
    assert resolve_shards(dataclasses.replace(scenario, replications=1, shards=None, name="")) == 1
    # ...and the auto plan follows REPRO_SHARDS (else the core count).
    monkeypatch.setenv("REPRO_SHARDS", "2")
    assert resolve_shards(dataclasses.replace(scenario, shards=None, name="")) == 2


def test_replicate_preserves_configuration():
    scenario = dataclasses.replace(_parity_grid()[1], replications=3, grace=0.5, name="")
    rep = replicate(scenario, 2)
    assert rep.seed == scenario.seed + 2
    assert rep.replications == 1
    assert rep.grace == scenario.grace
    assert rep.use_startup == scenario.use_startup
    with pytest.raises(ValueError):
        replicate(scenario, 3)


def test_replications_require_metrics_level():
    scenario = dataclasses.replace(_parity_grid()[0], replications=2, name="")
    with pytest.raises(ValueError, match="metrics"):
        run_scenario(scenario, trace_level="full")
    with pytest.raises(ValueError, match="metrics"):
        SweepRunner(jobs=1).run_sweep([scenario], trace_level="full")


def test_shard_folding_keeps_parent_memory_constant():
    """The parent drops results (and shard summaries) as soon as they are emitted."""
    base = _parity_grid()[0]
    scenarios = [
        dataclasses.replace(base, replications=2, shards=2, seed=base.seed + offset, name="")
        for offset in range(4)
    ]
    alive: list[weakref.ref] = []
    high_water = 0

    def fold(index, result):
        nonlocal high_water
        alive.append(weakref.ref(result))
        del result
        gc.collect()
        high_water = max(high_water, sum(1 for ref in alive if ref() is not None))

    with SweepRunner(jobs=2) as runner:
        runner.stream_sweep(scenarios, fold, trace_level="metrics")
    gc.collect()
    assert high_water <= 2, f"parent retained {high_water} folded shard results"
    assert sum(1 for ref in alive if ref() is not None) == 0
