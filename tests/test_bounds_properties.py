"""Property-based tests of the analytic bounds (monotonicity and consistency)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.bounds import (
    AUTH,
    ECHO,
    beta_max,
    beta_min,
    long_run_rate_bounds,
    max_adjustment,
    precision_bound,
    validate,
)
from repro.core.params import params_for

valid_params = st.builds(
    params_for,
    n=st.integers(min_value=3, max_value=40),
    authenticated=st.just(True),
    rho=st.floats(min_value=1e-6, max_value=5e-3),
    tdel=st.floats(min_value=1e-3, max_value=0.05),
    period=st.floats(min_value=2.0, max_value=60.0),
)


@given(valid_params, st.sampled_from([AUTH, ECHO]))
@settings(max_examples=100)
def test_property_bound_structure_is_consistent(params, algorithm):
    if algorithm == ECHO and not params.unauthenticated_resilient():
        params = params.with_(f=params.max_faults_unauthenticated())
    assert validate(params, algorithm) == []
    assert 0 < beta_min(params, algorithm) < beta_max(params, algorithm)
    rate_min, rate_max = long_run_rate_bounds(params, algorithm)
    assert 0 < rate_min <= 1.0 <= rate_max
    assert precision_bound(params, algorithm) > 0
    assert 0 < max_adjustment(params, algorithm) < params.period


@given(valid_params, st.floats(min_value=1.1, max_value=3.0))
@settings(max_examples=60)
def test_property_precision_bound_monotone_in_tdel(params, factor):
    slower_network = params.with_(tdel=params.tdel * factor)
    assert precision_bound(slower_network, AUTH) >= precision_bound(params, AUTH)


@given(valid_params, st.floats(min_value=1.5, max_value=10.0))
@settings(max_examples=60)
def test_property_precision_bound_monotone_in_drift(params, factor):
    worse_clocks = params.with_(rho=params.rho * factor)
    assert precision_bound(worse_clocks, AUTH) >= precision_bound(params, AUTH)


@given(valid_params)
@settings(max_examples=60)
def test_property_echo_bounds_dominate_auth_bounds(params):
    params = params.with_(f=params.max_faults_unauthenticated())
    assert precision_bound(params, ECHO) >= precision_bound(params, AUTH)
    assert beta_max(params, ECHO) >= beta_max(params, AUTH)
    assert beta_min(params, ECHO) <= beta_min(params, AUTH)


@given(valid_params, st.floats(min_value=2.0, max_value=20.0))
@settings(max_examples=60)
def test_property_rate_excess_shrinks_with_longer_period(params, factor):
    longer = params.with_(period=params.period * factor)
    _, rate_max_short = long_run_rate_bounds(params, AUTH)
    _, rate_max_long = long_run_rate_bounds(longer, AUTH)
    assert rate_max_long <= rate_max_short + 1e-12
