"""Unit tests for the event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import Event, EventQueue


def test_push_and_pop_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(3.0, lambda: order.append(3))
    queue.push(1.0, lambda: order.append(1))
    queue.push(2.0, lambda: order.append(2))
    while queue:
        queue.pop().action()
    assert order == [1, 2, 3]


def test_fifo_order_for_equal_times():
    queue = EventQueue()
    order = []
    for i in range(10):
        queue.push(1.0, lambda i=i: order.append(i))
    while queue:
        queue.pop().action()
    assert order == list(range(10))


def test_len_counts_live_events():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    assert len(queue) == 5
    queue.cancel(events[2])
    assert len(queue) == 4
    queue.pop()
    assert len(queue) == 3


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    e1 = queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    queue.cancel(e1)
    while queue:
        queue.pop().action()
    assert fired == ["b"]


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0
    assert queue.pop() is None


def test_event_cancel_method_marks_cancelled():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    assert queue.pop() is None


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_clear_drops_everything():
    queue = EventQueue()
    for i in range(3):
        queue.push(float(i), lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None


def test_nan_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(float("nan"), lambda: None)


def test_bool_reflects_liveness():
    queue = EventQueue()
    assert not queue
    event = queue.push(1.0, lambda: None)
    assert queue
    queue.cancel(event)
    assert not queue


def test_event_ordering_ignores_action():
    early = Event(time=1.0, seq=0, action=lambda: None)
    late = Event(time=2.0, seq=1, action=lambda: None)
    assert early < late


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=100))
def test_pop_order_is_sorted_for_random_times(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=2, max_size=50),
    st.data(),
)
def test_cancelling_random_subset_preserves_order(times, data):
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    to_cancel = data.draw(st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times) - 1))
    for index in to_cancel:
        queue.cancel(events[index])
    expected = sorted(t for i, t in enumerate(times) if i not in to_cancel)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == expected
