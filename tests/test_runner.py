"""Tests for the parallel sweep runner and its on-disk result cache."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.serialize import result_to_json
from repro.experiments.common import default_params, stable_seed
from repro.runner import (
    ResultCache,
    SweepRunner,
    cache_key,
    configure,
    get_runner,
    reset_runner,
    resolve_check_guarantees,
)
from repro.workloads.scenarios import Scenario
from repro.workloads.sweeps import run_sweep


@pytest.fixture(autouse=True)
def _isolated_default_runner():
    """Keep the process-wide default runner out of these tests."""
    reset_runner()
    yield
    reset_runner()


def small_grid() -> list[Scenario]:
    scenarios = []
    for n in [4, 5]:
        for attack in ["eager", "silent"]:
            params = default_params(n, authenticated=True)
            scenarios.append(
                Scenario(params=params, algorithm="auth", attack=attack, rounds=4, seed=stable_seed(n, attack))
            )
    return scenarios


def results_fingerprint(results) -> list[str]:
    return [result_to_json(result, include_trace=True) for result in results]


# -- serial vs parallel ----------------------------------------------------------------


def test_parallel_results_identical_to_serial():
    scenarios = small_grid()
    serial = SweepRunner(jobs=1).run_sweep(scenarios)
    parallel = SweepRunner(jobs=2).run_sweep(scenarios)
    assert results_fingerprint(serial) == results_fingerprint(parallel)


def test_parallel_chunking_preserves_order():
    scenarios = small_grid()
    serial = SweepRunner(jobs=1).run_sweep(scenarios)
    chunked = SweepRunner(jobs=2, chunk_size=3).run_sweep(scenarios)
    assert results_fingerprint(serial) == results_fingerprint(chunked)


def test_serial_callback_order_matches_input():
    scenarios = small_grid()
    seen = []
    results = SweepRunner(jobs=1).run_sweep(scenarios, callback=seen.append)
    assert seen == results


def test_parallel_callback_fires_once_per_scenario():
    scenarios = small_grid()
    seen = []
    results = SweepRunner(jobs=2).run_sweep(scenarios, callback=seen.append)
    assert len(seen) == len(scenarios)
    assert sorted(results_fingerprint(seen)) == sorted(results_fingerprint(results))


def test_empty_sweep():
    assert SweepRunner(jobs=2).run_sweep([]) == []


def test_invalid_jobs_rejected():
    with pytest.raises(ValueError):
        SweepRunner(jobs=-1)
    with pytest.raises(ValueError):
        SweepRunner(chunk_size=0)


# -- check_guarantees handling ---------------------------------------------------------


def test_per_scenario_check_guarantees():
    params = default_params(4, authenticated=True)
    scenarios = [
        Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=1),
        Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=2),
    ]
    results = SweepRunner(jobs=1).run_sweep(scenarios, check_guarantees=[None, False])
    assert results[0].guarantees is not None
    assert results[1].guarantees is None


def test_check_guarantees_length_mismatch():
    scenarios = small_grid()
    with pytest.raises(ValueError):
        SweepRunner(jobs=1).run_sweep(scenarios, check_guarantees=[True])


def test_resolve_check_guarantees_defaults():
    params = default_params(4, authenticated=True)
    st = Scenario(params=params, algorithm="auth", rounds=4)
    over_spec = Scenario(params=params, algorithm="auth", rounds=4, actual_faults=params.f + 1)
    baseline = Scenario(params=params, algorithm="free_running", rounds=4)
    assert resolve_check_guarantees(st, None) is True
    assert resolve_check_guarantees(st, False) is False
    assert resolve_check_guarantees(over_spec, None) is False
    # Baselines never get a guarantee report, even when asked.
    assert resolve_check_guarantees(baseline, True) is False


# -- cache -----------------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    scenarios = small_grid()
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)

    cold = runner.run_sweep(scenarios)
    assert cache.stats.misses == len(scenarios)
    assert cache.stats.stores == len(scenarios)
    assert cache.stats.hits == 0

    warm = runner.run_sweep(scenarios)
    assert cache.stats.hits == len(scenarios)
    assert results_fingerprint(cold) == results_fingerprint(warm)


def test_cache_shared_between_serial_and_parallel(tmp_path):
    scenarios = small_grid()
    cold = SweepRunner(jobs=2, cache=ResultCache(tmp_path)).run_sweep(scenarios)

    cache = ResultCache(tmp_path)
    warm = SweepRunner(jobs=1, cache=cache).run_sweep(scenarios)
    assert cache.stats.hits == len(scenarios)
    assert cache.stats.misses == 0
    assert results_fingerprint(cold) == results_fingerprint(warm)


def test_cache_invalidated_by_parameter_change(tmp_path):
    params = default_params(4, authenticated=True)
    scenario = Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=3)
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run(scenario)

    changed = replace(scenario, params=params.with_(tdel=params.tdel * 2), name="")
    runner.run(changed)
    assert cache.stats.hits == 0
    assert cache.stats.misses == 2

    runner.run(changed)
    assert cache.stats.hits == 1


def test_cache_key_stability_and_sensitivity():
    params = default_params(4, authenticated=True)
    a = Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=3)
    b = Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=3)
    assert cache_key(a, True) == cache_key(b, True)
    assert cache_key(a, True) != cache_key(a, False)
    assert cache_key(a, True, salt="one") != cache_key(a, True, salt="two")
    c = replace(a, seed=4, name="")
    assert cache_key(a, True) != cache_key(c, True)


def test_cache_key_ignores_display_name(tmp_path):
    params = default_params(4, authenticated=True)
    plain = Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=8)
    labelled = replace(plain, name="my-label")
    assert cache_key(plain, True) == cache_key(labelled, True)

    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run(plain)
    result = runner.run(labelled)
    assert cache.stats.hits == 1
    # The hit hands back the scenario that was asked for, label included.
    assert result.scenario.name == "my-label"


def test_parallel_duplicates_computed_once(tmp_path):
    params = default_params(4, authenticated=True)
    scenario = Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=9)
    scenarios = [scenario, replace(scenario, name="twin"), scenario]
    cache = ResultCache(tmp_path)
    seen = []
    results = SweepRunner(jobs=2, cache=cache).run_sweep(scenarios, callback=seen.append)
    assert cache.stats.stores == 1
    assert len(seen) == len(scenarios)
    assert [r.scenario.name for r in results] == [scenario.name, "twin", scenario.name]
    fingerprints = results_fingerprint([replace(r, scenario=scenario) for r in results])
    assert len(set(fingerprints)) == 1


def test_corrupt_cache_entry_recomputed(tmp_path):
    params = default_params(4, authenticated=True)
    scenario = Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=5)
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    first = runner.run(scenario)

    (entry,) = list(tmp_path.glob("*/*.pkl"))
    entry.write_bytes(b"not a pickle")
    again = runner.run(scenario)
    assert cache.stats.misses == 2  # initial miss + corrupt entry treated as miss
    assert results_fingerprint([first]) == results_fingerprint([again])


def test_cache_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    runner.run_sweep(small_grid())
    assert len(cache) == len(small_grid())
    assert cache.clear() == len(small_grid())
    assert len(cache) == 0


# -- wiring ----------------------------------------------------------------------------


def test_run_sweep_uses_explicit_runner(tmp_path):
    scenarios = small_grid()[:2]
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    run_sweep(scenarios, runner=runner)
    assert cache.stats.stores == len(scenarios)


def test_configure_installs_default_runner(tmp_path):
    runner = configure(jobs=1, use_cache=True, cache_dir=tmp_path)
    assert get_runner() is runner
    assert runner.cache is not None and runner.cache.directory == tmp_path

    disabled = configure(jobs=2, use_cache=False)
    assert get_runner() is disabled
    assert disabled.cache is None
    assert disabled.jobs == 2


def test_explicit_cache_dir_implies_caching(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE", "0")
    runner = configure(cache_dir=tmp_path)
    assert runner.cache is not None
    assert runner.cache.directory == tmp_path


def test_env_defaults(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_JOBS", "3")
    monkeypatch.setenv("REPRO_CACHE", "0")
    reset_runner()
    runner = get_runner()
    assert runner.jobs == 3
    assert runner.cache is None

    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
    reset_runner()
    runner = get_runner()
    assert runner.cache is not None
    assert runner.cache.directory == tmp_path / "cachedir"


# -- streaming aggregation -------------------------------------------------------------


def test_stream_sweep_serial_in_input_order():
    scenarios = small_grid()
    seen: list[int] = []
    rows: list = [None] * len(scenarios)

    def fold(index, result):
        seen.append(index)
        rows[index] = (result.scenario.name, result.completed_round)

    count = SweepRunner(jobs=1).stream_sweep(scenarios, fold)
    assert count == len(scenarios)
    assert seen == list(range(len(scenarios)))
    assert all(row is not None for row in rows)


def test_stream_sweep_parallel_matches_run_sweep():
    scenarios = small_grid()
    reference = SweepRunner(jobs=1).run_sweep(scenarios)
    collected: list = [None] * len(scenarios)

    with SweepRunner(jobs=2) as runner:
        runner.stream_sweep(scenarios, lambda i, r: collected.__setitem__(i, r))
    assert results_fingerprint(collected) == results_fingerprint(reference)


def test_stream_sweep_parent_holds_o1_results():
    """The streaming path never accumulates the sweep's results in the parent.

    Weak references to every emitted result must die as the sweep progresses:
    with a serial runner and a reducer that drops results after folding, at
    most a constant number can be alive at any emission.
    """
    import gc
    import weakref

    scenarios = small_grid() + [replace(s, seed=s.seed + 1, name="") for s in small_grid()]
    alive: list[weakref.ref] = []
    high_water = 0

    def fold(index, result):
        nonlocal high_water
        alive.append(weakref.ref(result))
        del result
        gc.collect()
        high_water = max(high_water, sum(1 for ref in alive if ref() is not None))

    SweepRunner(jobs=1).stream_sweep(scenarios, fold)
    gc.collect()
    assert high_water <= 2, f"parent retained {high_water} results during a streamed sweep"
    assert sum(1 for ref in alive if ref() is not None) == 0


def test_stream_sweep_serves_cache_hits_and_duplicates(tmp_path):
    scenario = small_grid()[0]
    scenarios = [scenario, replace(scenario, name="twin"), scenario]
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=2, cache=cache)
    seen: list[int] = []
    runner.stream_sweep(scenarios, lambda i, r: seen.append(i))
    assert sorted(seen) == [0, 1, 2]
    assert cache.stats.stores == 1

    warm: list[int] = []
    SweepRunner(jobs=1, cache=cache).stream_sweep(scenarios, lambda i, r: warm.append(i))
    assert warm == [0, 1, 2]
    assert cache.stats.hits >= 3


def test_persistent_pool_reused_across_sweeps():
    runner = SweepRunner(jobs=2)
    try:
        runner.run_sweep(small_grid()[:2])
        executor = runner._executor
        assert executor is not None
        runner.run_sweep(small_grid()[2:])
        assert runner._executor is executor  # same backend, no respawn
    finally:
        runner.close()
    assert runner._executor is None


# -- cache schema v3: adaptive horizon -------------------------------------------------


def test_cache_key_resolves_adaptive_horizon_default():
    scenario = small_grid()[0]
    explicit = replace(scenario, adaptive_horizon=True)
    historical = replace(scenario, adaptive_horizon=False)
    # The None default resolves per trace level and shares the entry with
    # its explicit spelling.
    assert cache_key(scenario, True, trace_level="metrics") == cache_key(
        explicit, True, trace_level="metrics"
    )
    assert cache_key(scenario, True, trace_level="full") == cache_key(
        historical, True, trace_level="full"
    )
    assert cache_key(explicit, True, trace_level="metrics") != cache_key(
        historical, True, trace_level="metrics"
    )


def test_cache_key_ignores_grace_on_historical_runs():
    scenario = small_grid()[0]
    graced = replace(scenario, grace=2.5)
    # Historical (full-trace) runs ignore grace entirely: one entry.
    assert cache_key(scenario, True, trace_level="full") == cache_key(graced, True, trace_level="full")
    # Adaptive runs simulate through the grace window: distinct entries.
    assert cache_key(scenario, True, trace_level="metrics") != cache_key(
        graced, True, trace_level="metrics"
    )


def test_effective_horizon_round_trips_through_cache(tmp_path):
    scenario = small_grid()[0]
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    cold = runner.run(scenario, trace_level="metrics")
    warm = runner.run(scenario, trace_level="metrics")
    assert cache.stats.hits == 1
    assert cold.stopped_early
    assert cold.effective_horizon is not None
    assert warm.effective_horizon == cold.effective_horizon
    assert warm.stopped_early == cold.stopped_early


# -- schema v4: the replication/shard axis ----------------------------------------------


def test_cache_key_resolves_shard_plan(monkeypatch):
    base = replace(small_grid()[0], replications=4)
    # The None-auto default resolves (here via REPRO_SHARDS) and shares the
    # entry with its explicit spelling; different plans get their own.
    monkeypatch.setenv("REPRO_SHARDS", "2")
    auto = replace(base, shards=None)
    assert cache_key(auto, True, trace_level="metrics") == cache_key(
        replace(base, shards=2), True, trace_level="metrics"
    )
    assert cache_key(auto, True, trace_level="metrics") != cache_key(
        replace(base, shards=4), True, trace_level="metrics"
    )
    # An unreplicated scenario always resolves to one shard: shards=None and
    # any explicit count share the entry.
    single = replace(small_grid()[0], replications=1)
    assert cache_key(single, True, trace_level="metrics") == cache_key(
        replace(single, shards=3), True, trace_level="metrics"
    )


def test_cache_key_distinguishes_replications_and_abort():
    scenario = small_grid()[0]
    assert cache_key(scenario, True, trace_level="metrics") != cache_key(
        replace(scenario, replications=2, shards=1), True, trace_level="metrics"
    )
    assert cache_key(scenario, True, trace_level="metrics") != cache_key(
        replace(scenario, abort_unreachable=True), True, trace_level="metrics"
    )


def test_sharded_result_round_trips_through_cache(tmp_path):
    scenario = replace(small_grid()[0], replications=3, shards=2)
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    cold = runner.run(scenario, trace_level="metrics")
    warm = runner.run(scenario, trace_level="metrics")
    assert cache.stats.stores == 1 and cache.stats.hits == 1
    assert cold.shard_count == 2
    assert warm.shard_count == cold.shard_count
    assert warm.shard_horizons == cold.shard_horizons
    assert warm.precision == cold.precision
    # The lean contract: cached sharded results carry no merge samples.
    assert result_to_json(warm) == result_to_json(cold)


def test_sharded_sweep_parallel_identical_to_serial():
    replicated = [replace(scenario, replications=2, shards=2, name="") for scenario in small_grid()[:2]]
    scenarios = replicated + small_grid()[2:]
    serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    with SweepRunner(jobs=2) as runner:
        parallel = runner.run_sweep(scenarios, trace_level="metrics")
    assert results_fingerprint(serial) == results_fingerprint(parallel)


# -- schema v6: the simulation kernel ----------------------------------------------------


def test_cache_key_resolves_kernel(monkeypatch):
    scenario = small_grid()[0]
    # The None default resolves through REPRO_KERNEL and shares the entry
    # with its explicit spelling; the other engine gets its own entry.
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert cache_key(scenario, True, trace_level="metrics") == cache_key(
        replace(scenario, kernel="auto"), True, trace_level="metrics"
    )
    assert cache_key(scenario, True, trace_level="metrics") != cache_key(
        replace(scenario, kernel="event"), True, trace_level="metrics"
    )
    monkeypatch.setenv("REPRO_KERNEL", "event")
    assert cache_key(scenario, True, trace_level="metrics") == cache_key(
        replace(scenario, kernel="event"), True, trace_level="metrics"
    )
    assert cache_key(replace(scenario, kernel="vector"), True, trace_level="metrics") != cache_key(
        replace(scenario, kernel="event"), True, trace_level="metrics"
    )


def test_kernel_result_round_trips_through_cache(tmp_path):
    scenario = replace(small_grid()[0], kernel="vector")
    cache = ResultCache(tmp_path)
    runner = SweepRunner(jobs=1, cache=cache)
    cold = runner.run(scenario, trace_level="metrics")
    warm = runner.run(scenario, trace_level="metrics")
    assert cache.stats.stores == 1 and cache.stats.hits == 1
    assert result_to_json(warm) == result_to_json(cold)
    # Pinning the other engine is a different entry, but the same floats.
    other = runner.run(replace(scenario, kernel="event"), trace_level="metrics")
    assert cache.stats.stores == 2
    assert other.precision == cold.precision
    assert other.total_messages == cold.total_messages


def test_parallel_sweep_pins_resolved_kernel():
    # A worker with a different REPRO_KERNEL must not re-resolve the engine:
    # parallel results equal serial ones even with kernel=None defaults.
    scenarios = [replace(scenario, name="") for scenario in small_grid()]
    serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    with SweepRunner(jobs=2) as runner:
        parallel = runner.run_sweep(scenarios, trace_level="metrics")
    assert results_fingerprint(serial) == results_fingerprint(parallel)
    for result, scenario in zip(parallel, scenarios):
        assert result.scenario == scenario  # caller's (unpinned) copy handed back
