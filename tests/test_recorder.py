"""Unit tests for the pluggable instrumentation layer (sim/recorder.py)."""

from __future__ import annotations

import pytest

from repro.crypto.signatures import digest_cache_info, message_digest, sign
from repro.experiments.common import benign_scenario, default_params
from repro.sim.clocks import FixedRateClock
from repro.sim.engine import Simulation
from repro.sim.network import FixedDelay
from repro.sim.process import Process
from repro.sim.recorder import (
    FullTraceRecorder,
    MessageSample,
    OnlineMetricsRecorder,
    Recorder,
    RecorderError,
    merge_summaries,
)
from repro.sim.trace import ResyncEvent
from repro.workloads.scenarios import build_cluster


def make_sim(recorder=None, delay=0.005, tdel=0.01, seed=0):
    return Simulation(tmin=0.0, tdel=tdel, delay_policy=FixedDelay(delay), seed=seed, recorder=recorder)


class Pinger(Process):
    """Sends one broadcast at boot; counts deliveries."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_start(self):
        self.broadcast(("ping", self.pid))

    def on_message(self, sender, payload):
        self.received.append((sender, payload))


# -- engine regression ---------------------------------------------------------


def test_run_until_resets_stale_stop_flag():
    """A stop condition that fired in one run must not freeze the next run's clock.

    Regression: ``_stopped`` used to survive an early-stopped ``run_until``,
    so the following ``run_until`` skipped the advance to ``t_end``.
    """
    sim = make_sim()
    sim.add_process(Pinger(0), FixedRateClock())
    sim.stop_condition = lambda s: True  # stop on the very first event
    sim.run_until(1.0)
    assert sim.stopped_early
    assert sim.now < 1.0

    sim.stop_condition = None
    trace = sim.run_until(2.0)
    assert not sim.stopped_early
    assert sim.now == 2.0
    assert trace.end_time == 2.0


# -- recorder protocol ---------------------------------------------------------


class _SpyRecorder(FullTraceRecorder):
    def __init__(self):
        super().__init__()
        self.messages = []
        self.crashes = []

    def on_message(self, envelope):
        self.messages.append((envelope.sender, envelope.dest, envelope.payload))

    def on_crash(self, pid, time):
        self.crashes.append((pid, time))
        super().on_crash(pid, time)


def test_network_and_halt_emit_into_recorder():
    spy = _SpyRecorder()
    sim = make_sim(recorder=spy)
    a = sim.add_process(Pinger(0), FixedRateClock())
    sim.add_process(Pinger(1), FixedRateClock())
    sim.run_until(0.1)
    assert (0, 1, ("ping", 0)) in spy.messages
    assert (1, 0, ("ping", 1)) in spy.messages
    assert len(spy.messages) == sim.network.stats.total_messages

    a.halt()
    assert spy.crashes == [(0, sim.now)]
    assert a.trace.crashed_at == sim.now


def test_default_recorder_is_full_trace():
    sim = make_sim()
    assert isinstance(sim.recorder, Recorder)
    sim.add_process(Pinger(0), FixedRateClock())
    trace = sim.run_until(0.5)
    assert sim.trace is trace
    assert 0 in trace.processes


# -- online metrics recorder ----------------------------------------------------


def test_metrics_recorder_refuses_trace_access():
    recorder = OnlineMetricsRecorder()
    sim = make_sim(recorder=recorder)
    proc = sim.add_process(Pinger(0), FixedRateClock())
    with pytest.raises(RecorderError):
        _ = sim.trace
    with pytest.raises(RecorderError):
        _ = proc.trace


def test_metrics_recorder_rejects_late_registration():
    recorder = OnlineMetricsRecorder()
    clock = FixedRateClock()
    recorder.register_process(0, clock)
    recorder.on_resync(ResyncEvent(pid=0, round=1, time=1.0, logical_before=1.0, logical_after=1.0))
    with pytest.raises(RecorderError):
        recorder.register_process(1, clock)


def test_metrics_recorder_rejects_duplicate_pid():
    recorder = OnlineMetricsRecorder()
    recorder.register_process(0, FixedRateClock())
    with pytest.raises(ValueError):
        recorder.register_process(0, FixedRateClock())


def test_metrics_recorder_single_segment_contract():
    """Finalize is idempotent at one end time; resumed runs need full traces."""
    recorder = OnlineMetricsRecorder()
    sim = make_sim(recorder=recorder)
    sim.add_process(Pinger(0), FixedRateClock())
    summary = sim.run_until(1.0)
    assert sim.run_until(1.0) is summary  # same segment: cached summary
    with pytest.raises(RecorderError):
        sim.run_until(2.0)  # a longer resumed segment is not supported


def test_metrics_memory_is_independent_of_run_length():
    """The streaming recorder's state does not grow with rounds simulated."""
    footprints = {}
    for rounds in (4, 12):
        scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=rounds, seed=2)
        handles = build_cluster(scenario, trace_level="metrics")
        handles.sim.run_until_round(scenario.rounds, t_max=scenario.horizon())
        recorder = handles.sim.recorder
        assert isinstance(recorder, OnlineMetricsRecorder)
        footprints[rounds] = recorder.retained_state_size()
    assert footprints[4] == footprints[12]

    # The full trace, by contrast, grows linearly with the number of rounds.
    sizes = {}
    for rounds in (4, 12):
        scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=rounds, seed=2)
        handles = build_cluster(scenario, trace_level="full")
        trace = handles.sim.run_until_round(scenario.rounds, t_max=scenario.horizon())
        sizes[rounds] = sum(len(p.resyncs) + len(p.adjustment_times) for p in trace.processes.values())
    assert sizes[12] > 2 * sizes[4]


def test_liveness_replica_matches_semantics():
    from repro.sim.recorder import OnlineMetricsSummary

    def summary_with(triples):
        return OnlineMetricsSummary(
            end_time=1.0,
            steady_start=0.0,
            steady_skew=0.0,
            overall_skew=0.0,
            period_min=float("inf"),
            period_max=0.0,
            period_count=0,
            acceptance_spread=0.0,
            max_adjustment=None,
            max_backward_adjustment=0.0,
            completed_round=0,
            max_round=0,
            liveness_triples=triples,
            slowest_long_run_rate=None,
            fastest_long_run_rate=None,
            slowest_window_rate=None,
            fastest_window_rate=None,
            envelope_a=None,
            envelope_b=None,
            worst_offset_from_real_time=None,
            total_messages=0,
            message_stats={},
            notes=[],
        )

    assert not summary_with((None,)).liveness(1)  # never resynchronized
    assert summary_with(((1, 3, None),)).liveness(3)  # contiguous 1..3
    assert not summary_with(((1, 3, None),)).liveness(4)  # short of round 4
    assert not summary_with(((0, 3, 2),)).liveness(3)  # gap at round 2
    assert summary_with(((0, 3, None),)).liveness(3)  # round 0 counts from 1
    assert summary_with(((5, 6, None),)).liveness(3)  # late joiner: needed range empty


# -- signature digest memoization ----------------------------------------------


def test_message_digest_is_memoized_for_frozen_messages(keystore):
    from repro.core.messages import RoundContent

    message = RoundContent(round=40941)
    before = digest_cache_info()
    first = message_digest(message)
    # Sign + many verifies of the same message: every lookup after the first
    # canonicalisation is a cache hit.
    signature = sign(keystore.secret_key(0), message)
    for _ in range(5):
        assert keystore.verify(signature, message)
    assert message_digest(RoundContent(round=40941)) == first  # equality-keyed
    after = digest_cache_info()
    # One canonicalisation (the miss); sign, five verifies and the
    # equal-but-distinct lookup all hit the memo.
    assert after.misses == before.misses + 1
    assert after.hits == before.hits + 7


def test_message_digest_lists_share_tuple_cache_entries():
    # Lists and tuples have the same canonical form, so they share a digest
    # (and a memo entry).
    assert message_digest(["a", ["b", 1]]) == message_digest(("a", ("b", 1)))


def test_message_digest_rejects_unsupported_types_despite_memo():
    with pytest.raises(TypeError):
        message_digest({"a": 1})  # unsupported leaf: same error as uncached


def test_message_digest_cache_distinguishes_equal_but_distinct_values():
    """Python equality conflates 1 == 1.0 == True and 0.0 == -0.0; the memo key must not."""
    assert message_digest((1, 2)) != message_digest((1.0, 2))
    assert message_digest((1, 2)) != message_digest((True, 2))
    assert message_digest((0,)) != message_digest((False,))
    assert message_digest((0.0,)) != message_digest((-0.0,))
    # And the memoized digests still match the uncached canonical hashes.
    from repro.crypto.signatures import _compute_digest

    for message in ((1, 2), (1.0, 2), (True, 2), (0.0,), (-0.0,)):
        assert message_digest(message) == _compute_digest(message)


# -- sampling message trace (sample_messages=K) ----------------------------------------


def _metrics_summary(scenario, sample_messages=None):
    handles = build_cluster(scenario, trace_level="metrics", sample_messages=sample_messages)
    return handles.sim.run_until_round(scenario.rounds, t_max=scenario.horizon(), adaptive=True)


def test_message_sampling_retains_every_kth_envelope():
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=4)
    period = 10
    summary = _metrics_summary(scenario, sample_messages=period)
    assert summary.message_samples is not None
    # Message i is retained iff i % K == 0: exactly ceil(total / K) samples.
    expected = -(-summary.total_messages // period)
    assert len(summary.message_samples) == expected
    for sample in summary.message_samples:
        assert isinstance(sample, MessageSample)
        assert sample.deliver_time >= sample.send_time
        assert sample.kind  # the payload class name, never the payload
    ids = [sample.msg_id for sample in summary.message_samples]
    assert ids == sorted(ids)  # send order


def test_message_sampling_off_by_default_and_validated():
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=3)
    assert _metrics_summary(scenario).message_samples is None
    with pytest.raises(ValueError, match="sample_messages"):
        OnlineMetricsRecorder(sample_messages=0)
    with pytest.raises(ValueError, match="trace_level='metrics'"):
        build_cluster(scenario, trace_level="full", sample_messages=4)


def test_message_sampling_never_perturbs_metrics():
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=4)
    plain = _metrics_summary(scenario)
    sampled = _metrics_summary(scenario, sample_messages=3)
    import dataclasses

    assert dataclasses.replace(sampled, message_samples=None) == plain


def test_message_samples_concatenate_under_merge():
    base = benign_scenario(default_params(5, authenticated=True), "auth", rounds=3)
    import dataclasses as dc

    first = _metrics_summary(base, sample_messages=5)
    second = _metrics_summary(dc.replace(base, seed=7, name=""), sample_messages=5)
    merged = merge_summaries([first, second])
    assert merged.message_samples == first.message_samples + second.message_samples
    # A group without samples contributes nothing but does not erase the rest.
    third = _metrics_summary(dc.replace(base, seed=9, name=""))
    mixed = merge_summaries([first, third])
    assert mixed.message_samples == first.message_samples
    assert merge_summaries([third, _metrics_summary(dc.replace(base, seed=11, name=""))]).message_samples is None


def test_message_sampling_memory_is_bounded_by_rate():
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=4)
    handles = build_cluster(scenario, trace_level="metrics", sample_messages=1000000)
    summary = handles.sim.run_until_round(scenario.rounds, t_max=scenario.horizon(), adaptive=True)
    recorder = handles.sim.recorder
    assert recorder.retained_message_samples() == 1  # just message 0
    assert len(summary.message_samples) == 1


def test_scenario_level_message_sampling_flows_into_result():
    from repro.workloads.scenarios import run_scenario

    import dataclasses as dc

    base = benign_scenario(default_params(5, authenticated=True), "auth", rounds=3)
    plain = run_scenario(base, trace_level="metrics")
    assert plain.message_samples is None  # off by default

    sampled_scenario = dc.replace(base, sample_messages=5, name="")
    sampled = run_scenario(sampled_scenario, trace_level="metrics")
    assert sampled.message_samples is not None
    assert len(sampled.message_samples) == -(-sampled.total_messages // 5)
    # Sampling never perturbs the measured values.
    assert sampled.precision == plain.precision
    assert sampled.total_messages == plain.total_messages

    # Replicated + sharded: samples concatenate over all replications.
    replicated = dc.replace(base, sample_messages=5, replications=3, shards=2, name="")
    merged = run_scenario(replicated, trace_level="metrics")
    per_rep = [
        run_scenario(dc.replace(base, sample_messages=5, seed=base.seed + r, name=""), trace_level="metrics")
        for r in range(3)
    ]
    expected = tuple(sample for result in per_rep for sample in result.message_samples)
    assert merged.message_samples == expected

    # Full traces keep every message; sampling there is a usage error.
    with pytest.raises(ValueError, match="trace_level='metrics'"):
        run_scenario(sampled_scenario, trace_level="full")


def test_message_samples_round_trip_serialization():
    import dataclasses as dc
    import json

    from repro.analysis.serialize import result_to_json
    from repro.workloads.scenarios import run_scenario

    scenario = dc.replace(
        benign_scenario(default_params(5, authenticated=True), "auth", rounds=3), sample_messages=10, name=""
    )
    result = run_scenario(scenario, trace_level="metrics")
    data = json.loads(result_to_json(result))
    assert data["scenario"]["sample_messages"] == 10
    assert len(data["message_samples"]) == len(result.message_samples)
    assert data["message_samples"][0][1] == result.message_samples[0].sender
