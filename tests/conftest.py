"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.params import SyncParams, params_for
from repro.crypto.signatures import KeyStore
from repro.runner.config import reset_runner
from repro.sim.clocks import FixedRateClock
from repro.sim.engine import Simulation
from repro.sim.network import FixedDelay


@pytest.fixture(autouse=True)
def _hermetic_sweep_runner(monkeypatch):
    """Keep the suite independent of ambient runner configuration.

    Without this, an exported ``REPRO_JOBS=2`` would make sweep-order
    assertions nondeterministic and the suite would read/write the user's
    real ``~/.cache/repro-sweeps``.  Tests that exercise the runner pass
    their own :class:`~repro.runner.core.SweepRunner` / env explicitly.
    """
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.setenv("REPRO_CACHE", "0")
    reset_runner()
    yield
    reset_runner()


@pytest.fixture
def small_params() -> SyncParams:
    """A small, fast parameterisation used across unit tests (n=5, f=2, auth-capable)."""
    return params_for(n=5, authenticated=True, rho=1e-4, tdel=0.01, period=1.0, initial_offset_spread=0.005)


@pytest.fixture
def echo_params() -> SyncParams:
    """A small parameterisation within the echo algorithm's resilience bound (n=7, f=2)."""
    return params_for(n=7, authenticated=False, rho=1e-4, tdel=0.01, period=1.0, initial_offset_spread=0.005)


@pytest.fixture
def keystore(small_params) -> KeyStore:
    return KeyStore.generate(small_params.n, seed=1)


@pytest.fixture
def fixed_delay_sim() -> Simulation:
    """A simulation whose messages all take exactly 5 ms."""
    return Simulation(tmin=0.0, tdel=0.01, delay_policy=FixedDelay(0.005), seed=0)


def make_sim(tmin: float = 0.0, tdel: float = 0.01, delay: float = 0.005, seed: int = 0) -> Simulation:
    """Build a simulation with a fixed message delay (helper for unit tests)."""
    return Simulation(tmin=tmin, tdel=tdel, delay_policy=FixedDelay(delay), seed=seed)


def perfect_clock(offset: float = 0.0) -> FixedRateClock:
    """A drift-free hardware clock."""
    return FixedRateClock(rate=1.0, offset=offset)
