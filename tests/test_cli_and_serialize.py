"""Tests for the command-line interface and the JSON serialization helpers."""

from __future__ import annotations

import json

import pytest

from repro.analysis.serialize import (
    load_result_summary,
    params_to_dict,
    result_to_dict,
    result_to_json,
    save_result,
    trace_to_dict,
)
from repro.cli import main
from repro.core.params import params_for
from repro.runner import reset_runner
from repro.workloads.scenarios import Scenario, run_scenario


@pytest.fixture(autouse=True)
def _isolated_default_runner():
    # CLI commands install the process-wide default runner; drop it after
    # each test so a configured backend (ssh!) cannot leak into other suites.
    yield
    reset_runner()


@pytest.fixture(scope="module")
def sample_result():
    params = params_for(5, authenticated=True, rho=1e-4, tdel=0.01, period=1.0, initial_offset_spread=0.005)
    return run_scenario(Scenario(params=params, algorithm="auth", attack="eager", rounds=4, seed=3))


# -- serialization ---------------------------------------------------------------------


def test_params_to_dict_includes_resolved_alpha():
    params = params_for(5, authenticated=True)
    data = params_to_dict(params)
    assert data["n"] == 5
    assert data["alpha_value"] == pytest.approx(params.alpha_value)


def test_result_to_dict_core_fields(sample_result):
    data = result_to_dict(sample_result)
    assert data["completed_round"] >= 4
    assert data["precision"] == pytest.approx(sample_result.precision)
    assert data["guarantees"]["all_hold"] is True
    assert any(check["name"] == "precision" for check in data["guarantees"]["checks"])
    assert data["scenario"]["algorithm"] == "auth"
    assert "trace" not in data


def test_result_to_dict_with_trace(sample_result):
    data = result_to_dict(sample_result, include_trace=True)
    trace = data["trace"]
    assert trace["total_messages"] == sample_result.total_messages
    pids = [p["pid"] for p in trace["processes"]]
    assert pids == sorted(pids)
    honest = [p for p in trace["processes"] if not p["faulty"]]
    assert all(len(p["resyncs"]) >= 4 for p in honest)
    assert all(len(p["adjustments"]) == len(p["resyncs"]) for p in honest)


def test_result_to_json_is_valid_json(sample_result):
    parsed = json.loads(result_to_json(sample_result))
    assert parsed["messages_per_round"] > 0


def test_save_and_load_roundtrip(sample_result, tmp_path):
    path = save_result(sample_result, tmp_path / "result.json")
    loaded = load_result_summary(path)
    assert loaded["precision"] == pytest.approx(sample_result.precision)


def test_trace_to_dict_standalone(sample_result):
    data = trace_to_dict(sample_result.trace)
    assert data["end_time"] == pytest.approx(sample_result.trace.end_time)
    assert data["message_stats"]


# -- CLI --------------------------------------------------------------------------------


def test_cli_bounds_prints_table(capsys):
    assert main(["bounds", "--n", "7", "--rho", "1e-4"]) == 0
    out = capsys.readouterr().out
    assert "precision" in out
    assert "rate_max" in out


def test_cli_bounds_echo_variant(capsys):
    assert main(["bounds", "--n", "7", "--algorithm", "echo"]) == 0
    assert "echo" in capsys.readouterr().out


def test_cli_run_reports_guarantees(capsys):
    code = main(["run", "--n", "5", "--rounds", "4", "--attack", "eager", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "precision" in out
    assert "OK" in out


def test_cli_run_json_output(capsys):
    code = main(["run", "--n", "5", "--rounds", "3", "--json", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    parsed = json.loads(out)
    assert parsed["completed_round"] >= 3


def test_cli_run_baseline_algorithm(capsys):
    code = main([
        "run", "--n", "7", "--f", "1", "--algorithm", "lundelius_welch",
        "--attack", "silent", "--rounds", "3", "--clock-mode", "random", "--delay-mode", "uniform",
    ])
    assert code == 0
    assert "precision" in capsys.readouterr().out


def test_cli_experiment_quick(capsys):
    assert main(["experiment", "E3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "resilience" in out.lower()
    assert "rushing_cabal" in out


def test_cli_experiment_unknown_id(capsys):
    assert main(["experiment", "E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_list_attacks(capsys):
    assert main(["list-attacks"]) == 0
    out = capsys.readouterr().out
    assert "eager" in out and "rushing_cabal" in out


def test_cli_list_experiments(capsys):
    assert main(["list-experiments"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("E1", "E12"):
        assert exp_id in out


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_ssh_without_hosts_exits_2_with_one_line_error(capsys, monkeypatch):
    """A missing REPRO_SSH_HOSTS is a usage error: one clear sentence on
    stderr and exit code 2, never an SSHConfigError traceback."""
    monkeypatch.delenv("REPRO_SSH_HOSTS", raising=False)
    assert main(["run", "--executor", "ssh", "--rounds", "3"]) == 2
    captured = capsys.readouterr()
    assert "REPRO_SSH_HOSTS" in captured.err
    assert len(captured.err.strip().splitlines()) == 1
    # `repro experiment` fails the same way (before any experiment runs).
    assert main(["experiment", "E3", "--quick", "--executor", "ssh"]) == 2
    assert "REPRO_SSH_HOSTS" in capsys.readouterr().err


def test_cli_chaos_requires_protocol_backend(capsys):
    assert main(["run", "--rounds", "3", "--chaos", "kill@1"]) == 2
    assert "subprocess" in capsys.readouterr().err


def test_cli_run_chaos_kill_schedule_completes_with_fleet_provenance(capsys):
    code = main([
        "run", "--executor", "subprocess", "--workers", "2",
        "--replications", "4", "--shards", "4", "--rounds", "4",
        "--chaos", "kill@1", "--chaos-seed", "3", "--no-cache",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "fleet" in captured.out  # provenance row with the scheduler counters
    assert "chaos: kill@1" in captured.err
    assert "respawn" in captured.out or "workers lost" in captured.out


def test_cli_experiment_failure_exits_nonzero(capsys, monkeypatch):
    """Table-generation failure must propagate a nonzero exit (PR-5 review bug)."""
    import repro.cli as cli

    class BoomExperiment:
        claim = "always fails"

        def run(self, quick=False):
            raise RuntimeError("table generation exploded")

    class EmptyExperiment:
        claim = "produces nothing"

        def run(self, quick=False):
            return []

    monkeypatch.setattr(cli, "EXPERIMENTS", {"E1": BoomExperiment(), "E2": EmptyExperiment()})
    assert main(["experiment", "E1", "--quick"]) == 1
    assert "FAILED" in capsys.readouterr().err
    assert main(["experiment", "E2", "--quick"]) == 1
    # An `all` run keeps going past the failure but still exits nonzero.
    assert main(["experiment", "all", "--quick"]) == 1
    err = capsys.readouterr().err
    assert "E1" in err and "E2" in err


def test_cli_run_kernel_flag(capsys):
    code = main([
        "run", "--n", "5", "--rounds", "3", "--seed", "2",
        "--attack", "skew_max", "--kernel", "vector", "--trace-level", "metrics",
    ])
    assert code == 0
    assert "Scenario" in capsys.readouterr().out
