"""Unit tests for the network and delay policies."""

from __future__ import annotations


import pytest

from repro.sim.engine import Simulation
from repro.sim.network import (
    FixedDelay,
    FunctionDelay,
    MaxDelay,
    MinDelay,
    TargetedDelay,
    UniformDelay,
)


class Collector:
    """Minimal delivery sink recording (time, sender, payload)."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def __call__(self, envelope):
        self.received.append((self.sim.now, envelope.sender, envelope.payload))


def make_net(policy, tmin=0.0, tdel=0.01, seed=0):
    sim = Simulation(tmin=tmin, tdel=tdel, delay_policy=policy, seed=seed)
    sinks = {pid: Collector(sim) for pid in range(3)}
    for pid, sink in sinks.items():
        sim.network.register(pid, sink)
    return sim, sinks


def test_fixed_delay_delivery_time():
    sim, sinks = make_net(FixedDelay(0.004))
    sim.network.send(0, 1, "hello")
    sim.run_until(1.0)
    assert sinks[1].received == [(pytest.approx(0.004), 0, "hello")]


def test_max_delay_clamped_to_tdel():
    sim, sinks = make_net(MaxDelay(), tdel=0.02)
    sim.network.send(0, 1, "x")
    sim.run_until(1.0)
    assert sinks[1].received[0][0] == pytest.approx(0.02)


def test_min_delay_clamped_to_tmin():
    sim, sinks = make_net(MinDelay(), tmin=0.003, tdel=0.02)
    sim.network.send(0, 1, "x")
    sim.run_until(1.0)
    assert sinks[1].received[0][0] == pytest.approx(0.003)


def test_uniform_delay_within_bounds():
    sim, sinks = make_net(UniformDelay(), tmin=0.002, tdel=0.01, seed=5)
    for _ in range(50):
        sim.network.send(0, 1, "x")
    sim.run_until(1.0)
    times = [t for t, _, _ in sinks[1].received]
    assert len(times) == 50
    assert all(0.002 - 1e-12 <= t <= 0.01 + 1e-12 for t in times)
    assert len(set(times)) > 1  # actually random


def test_targeted_delay_favours_fast_group():
    sim, sinks = make_net(TargetedDelay(fast_destinations=[1]), tmin=0.001, tdel=0.01)
    sim.network.send(0, 1, "fast")
    sim.network.send(0, 2, "slow")
    sim.run_until(1.0)
    assert sinks[1].received[0][0] == pytest.approx(0.001)
    assert sinks[2].received[0][0] == pytest.approx(0.01)


def test_function_delay_policy():
    policy = FunctionDelay(lambda s, d, p, t, rng: 0.007)
    sim, sinks = make_net(policy)
    sim.network.send(0, 2, "x")
    sim.run_until(1.0)
    assert sinks[2].received[0][0] == pytest.approx(0.007)


def test_explicit_delay_is_clamped():
    sim, sinks = make_net(FixedDelay(0.005), tmin=0.002, tdel=0.01)
    sim.network.send(0, 1, "early", delay=0.0)
    sim.network.send(0, 1, "late", delay=5.0)
    sim.run_until(1.0)
    times = sorted(t for t, _, _ in sinks[1].received)
    assert times[0] == pytest.approx(0.002)
    assert times[1] == pytest.approx(0.01)


def test_broadcast_excludes_sender_by_default():
    sim, sinks = make_net(FixedDelay(0.001))
    sim.network.broadcast(0, "msg")
    sim.run_until(1.0)
    assert len(sinks[0].received) == 0
    assert len(sinks[1].received) == 1
    assert len(sinks[2].received) == 1


def test_broadcast_can_include_sender():
    sim, sinks = make_net(FixedDelay(0.001))
    sim.network.broadcast(0, "msg", include_self=True)
    sim.run_until(1.0)
    assert len(sinks[0].received) == 1


def test_multicast_targets_only_listed():
    sim, sinks = make_net(FixedDelay(0.001))
    sim.network.multicast(0, [2], "msg")
    sim.run_until(1.0)
    assert len(sinks[1].received) == 0
    assert len(sinks[2].received) == 1


def test_unregister_stops_delivery():
    sim, sinks = make_net(FixedDelay(0.001))
    sim.network.unregister(1)
    sim.network.send(0, 1, "x")
    sim.run_until(1.0)
    assert sinks[1].received == []


def test_drop_deliveries_to_models_crash():
    sim, sinks = make_net(FixedDelay(0.001))
    sim.network.drop_deliveries_to(2)
    sim.network.send(0, 2, "x")
    sim.run_until(1.0)
    assert sinks[2].received == []


def test_stats_count_messages_by_sender_and_type():
    sim, sinks = make_net(FixedDelay(0.001))
    sim.network.send(0, 1, "a")
    sim.network.send(0, 2, "b")
    sim.network.send(1, 2, 42)
    assert sim.network.stats.total_messages == 3
    assert sim.network.stats.messages_by_sender[0] == 2
    assert sim.network.stats.messages_by_sender[1] == 1
    assert sim.network.stats.messages_by_type["str"] == 2
    assert sim.network.stats.messages_by_type["int"] == 1


def test_envelope_records_send_and_deliver_times():
    sim, _ = make_net(FixedDelay(0.004))
    env = sim.network.send(0, 1, "x")
    assert env.send_time == 0.0
    assert env.deliver_time == pytest.approx(0.004)
    assert env.sender == 0 and env.dest == 1


def test_network_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Simulation(tmin=0.02, tdel=0.01)
    with pytest.raises(ValueError):
        Simulation(tmin=0.0, tdel=0.0)


def test_delay_policy_nan_rejected():
    sim, _ = make_net(FunctionDelay(lambda s, d, p, t, rng: float("nan")))
    with pytest.raises(ValueError):
        sim.network.send(0, 1, "x")


def test_uniform_delay_deterministic_per_seed():
    def delivery_times(seed):
        sim, sinks = make_net(UniformDelay(), seed=seed)
        for _ in range(10):
            sim.network.send(0, 1, "x")
        sim.run_until(1.0)
        return [t for t, _, _ in sinks[1].received]

    assert delivery_times(3) == delivery_times(3)
    assert delivery_times(3) != delivery_times(4)


def test_participants_sorted():
    sim, _ = make_net(FixedDelay(0.001))
    assert sim.network.participants() == [0, 1, 2]
