"""Float-for-float parity between the event loop and the vector kernel.

The vector kernel (``repro.sim.vectorized``) is only allowed to replace the
event loop for scenario families it matches float-for-float -- these tests
pin that contract across the eligible attacks, delay/clock modes, tie-heavy
degenerate grids and message sampling, assert the lane-batched replication
path equals the serial fold, and check that every ineligible scenario falls
back to the event loop with a recorded note instead of erroring.
"""

from __future__ import annotations

import dataclasses

import pytest

import random

from repro.experiments.common import MEASURED_RESULT_FIELDS
from repro.sim.kernel import (
    FALLBACK_NOTE_PREFIX,
    kernel_ineligibility,
    numpy_or_none,
    resolve_kernel,
)
from repro.sim.vectorized import (
    CRASH_PERIODS,
    EAGER_FACTOR,
    EAGER_MAX_ROUND,
    FLOOD_INTERVAL,
    FLOOD_MAX_ROUND,
    RANDOM_DROP_PROBABILITY,
    RANDOM_FAST_BIAS,
    TRACKER_LOOKAHEAD,
    LaneOutcome,
    _honest_drifting_clocks,
    _Layout,
    run_lanes,
)
from repro.sim.clocks import rate_bounds, spread_offsets
from repro.workloads.scenarios import (
    Scenario,
    _honest_clock,
    build_cluster,
    run_scenario,
    run_shard,
)
from repro.core.params import SyncParams

pytestmark = pytest.mark.skipif(numpy_or_none() is None, reason="numpy not installed")


def cell(
    n,
    attack="skew_max",
    clock="extreme",
    delay="targeted",
    rounds=8,
    spread=0.01,
    seed=None,
    sample=None,
    algorithm="auth",
    f=None,
    **kwargs,
):
    if f is None:
        # Each algorithm's resilience optimum: n > 2f with signatures,
        # n > 3f without.
        f = (n - 1) // 3 if algorithm == "echo" else (n - 1) // 2
    params = SyncParams(
        n=n,
        f=f,
        rho=1e-4,
        tdel=0.01,
        tmin=0.0,
        period=1.0,
        initial_offset_spread=spread,
    )
    return Scenario(
        params=params,
        algorithm=algorithm,
        rounds=rounds,
        attack=attack,
        clock_mode=clock,
        delay_mode=delay,
        seed=100 + n if seed is None else seed,
        sample_messages=sample,
        **kwargs,
    )


def echo_cell(n, **kwargs):
    """An echo-algorithm cell within the ``n > 3f`` resilience bound."""
    return cell(n, algorithm="echo", **kwargs)


def assert_results_identical(event_result, vector_result, label=""):
    for field in MEASURED_RESULT_FIELDS:
        assert getattr(event_result, field) == getattr(vector_result, field), (
            f"{label}: {field} differs"
        )
    assert event_result.accuracy == vector_result.accuracy, f"{label}: accuracy differs"
    assert event_result.guarantees == vector_result.guarantees, f"{label}: guarantees differ"
    assert event_result.message_samples == vector_result.message_samples, (
        f"{label}: message samples differ"
    )


def run_both(scenario):
    """The scenario on both kernels; asserts the vector kernel actually served."""
    event = run_scenario(
        dataclasses.replace(scenario, kernel="event"), trace_level="metrics"
    )
    vector_scenario = dataclasses.replace(scenario, kernel="vector")
    outcome = run_lanes([vector_scenario], sample_messages=scenario.sample_messages)[0]
    assert outcome.fallback is None, f"unexpected fallback: {outcome.fallback}"
    vector = run_scenario(vector_scenario, trace_level="metrics")
    return event, vector


# -- single-run parity across the eligible families -------------------------------------


@pytest.mark.parametrize("n", [5, 7, 14])
def test_parity_skew_max_targeted(n):
    event, vector = run_both(cell(n))
    assert_results_identical(event, vector, f"skew_max n={n}")


@pytest.mark.parametrize("attack", [None, "silent", "crash", "eager", "two_faced", "laggard"])
def test_parity_per_attack(attack):
    event, vector = run_both(cell(7, attack=attack))
    assert_results_identical(event, vector, f"attack={attack}")


@pytest.mark.parametrize("delay", ["max", "midpoint", "targeted"])
def test_parity_per_delay_mode(delay):
    event, vector = run_both(cell(9, attack="eager", delay=delay))
    assert_results_identical(event, vector, f"delay={delay}")


def test_parity_nominal_clocks():
    event, vector = run_both(cell(7, clock="nominal"))
    assert_results_identical(event, vector, "nominal clocks")


def test_parity_tie_heavy():
    """Zero spread + nominal clocks + uniform max delay: every instant shared.

    Every round-k timer fires at exactly ``k*P`` and every acceptance lands at
    exactly ``k*P + tdel``, so the whole run resolves through the kernel's
    exact tie-resolution walk -- the hardest ordering regime it supports.
    """
    for attack in (None, "crash", "skew_max"):
        delay = "targeted" if attack == "skew_max" else "max"
        event, vector = run_both(
            cell(7, attack=attack, clock="nominal", delay=delay, spread=0.0)
        )
        assert_results_identical(event, vector, f"tie-heavy attack={attack}")


@pytest.mark.parametrize("sample", [1, 3])
def test_parity_message_sampling(sample):
    event, vector = run_both(cell(7, sample=sample))
    assert event.message_samples is not None
    assert_results_identical(event, vector, f"sampling K={sample}")


@pytest.mark.parametrize("seed", [0, 1, 17, 202])
def test_parity_seed_sweep(seed):
    event, vector = run_both(cell(7, seed=seed, rounds=6))
    assert_results_identical(event, vector, f"seed={seed}")


# -- echo algorithm parity ---------------------------------------------------------------


@pytest.mark.parametrize("n", [4, 7, 13])
def test_parity_echo_skew_max_targeted(n):
    event, vector = run_both(echo_cell(n))
    assert_results_identical(event, vector, f"echo skew_max n={n}")


@pytest.mark.parametrize(
    "attack",
    [None, "silent", "crash", "eager", "two_faced", "laggard", "forge_flood"],
)
def test_parity_echo_per_attack(attack):
    event, vector = run_both(echo_cell(7, attack=attack))
    assert_results_identical(event, vector, f"echo attack={attack}")


@pytest.mark.parametrize("delay", ["max", "midpoint", "targeted", "uniform"])
def test_parity_echo_per_delay_mode(delay):
    event, vector = run_both(echo_cell(10, attack="eager", delay=delay))
    assert_results_identical(event, vector, f"echo delay={delay}")


def test_parity_echo_tie_heavy():
    """Zero spread + nominal clocks: echo's hardest shared-instant regime."""
    for attack in (None, "crash", "skew_max"):
        delay = "targeted" if attack == "skew_max" else "max"
        event, vector = run_both(
            echo_cell(7, attack=attack, clock="nominal", delay=delay, spread=0.0)
        )
        assert_results_identical(event, vector, f"echo tie-heavy attack={attack}")


# -- uniform delays and randomized attacks -----------------------------------------------


@pytest.mark.parametrize(
    "attack", [None, "crash", "eager", "two_faced", "laggard", "skew_max", "forge_flood"]
)
def test_parity_uniform_delay_per_attack(attack):
    event, vector = run_both(cell(7, attack=attack, delay="uniform"))
    assert_results_identical(event, vector, f"uniform attack={attack}")


@pytest.mark.parametrize("seed", [0, 3, 91, 555])
def test_parity_uniform_delay_seed_sweep(seed):
    event, vector = run_both(cell(9, delay="uniform", seed=seed, rounds=6))
    assert_results_identical(event, vector, f"uniform seed={seed}")


@pytest.mark.parametrize("algorithm", ["auth", "echo"])
def test_parity_forge_flood(algorithm):
    event, vector = run_both(cell(8, attack="forge_flood", algorithm=algorithm))
    assert_results_identical(event, vector, f"forge_flood {algorithm}")


@pytest.mark.parametrize("seed", [0, 7, 123])
def test_parity_echo_uniform_forge_flood_grid(seed):
    """The fully randomized corner: echo + uniform delays + flooding adversaries."""
    event, vector = run_both(
        echo_cell(10, attack="forge_flood", delay="uniform", seed=seed, rounds=6)
    )
    assert_results_identical(event, vector, f"echo/uniform/forge_flood seed={seed}")


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(algorithm="echo", sample=1),
        dict(algorithm="echo", delay="uniform", sample=3),
        dict(delay="uniform", attack="laggard", sample=1),
        dict(delay="uniform", attack="forge_flood", sample=2),
    ],
)
def test_parity_message_sampling_new_families(kwargs):
    """Sampled wire provenance (send/deliver instants included) stays identical.

    The laggard cell pins the no-draw rule (explicit delays bypass the
    network RNG); the forge_flood cell pins the adversary-stream interleaving.
    """
    sample = kwargs.pop("sample")
    event, vector = run_both(cell(9, sample=sample, **kwargs))
    assert event.message_samples is not None
    assert_results_identical(event, vector, f"sampling {kwargs}")


def test_new_families_resolve_to_vector_under_auto(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    for scenario in (
        echo_cell(7),
        cell(7, delay="uniform"),
        cell(7, attack="forge_flood"),
        echo_cell(7, attack="forge_flood", delay="uniform"),
        cell(7, attack="random_silence"),
        cell(7, clock="random"),
        cell(7, delay="min"),
        echo_cell(7, attack="random_laggard", clock="random", delay="min"),
    ):
        result = run_scenario(scenario, trace_level="metrics")
        assert result.kernel_provenance is not None, scenario.name
        assert result.kernel_provenance.resolved == "auto"
        assert result.kernel_provenance.vector_lanes == 1, scenario.name


# -- random_* attacks, drifting clocks and min delays ------------------------------------


@pytest.mark.parametrize(
    "attack", ["random_silence", "random_two_faced", "random_laggard"]
)
@pytest.mark.parametrize("algorithm", ["auth", "echo"])
def test_parity_random_attacks(attack, algorithm):
    event, vector = run_both(cell(9, attack=attack, algorithm=algorithm))
    assert_results_identical(event, vector, f"{algorithm} {attack}")


@pytest.mark.parametrize(
    "attack", ["random_silence", "random_two_faced", "random_laggard"]
)
@pytest.mark.parametrize("delay", ["uniform", "min"])
def test_parity_random_attacks_random_delays(attack, delay):
    """Adversary draws interleave with network draws (or zero-delay cascades)."""
    event, vector = run_both(cell(9, attack=attack, delay=delay))
    assert_results_identical(event, vector, f"{attack} delay={delay}")


@pytest.mark.parametrize("delay", ["max", "midpoint", "targeted"])
def test_parity_drifting_clocks_lockstep(delay):
    # auth + deterministic attack + deterministic delays: the lockstep array
    # path, with the segment-walk inversion replacing the closed form.
    event, vector = run_both(
        cell(9, attack="two_faced", clock="random", delay=delay)
    )
    assert_results_identical(event, vector, f"drifting lockstep delay={delay}")


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(algorithm="echo"),
        dict(delay="uniform"),
        dict(delay="min"),
        dict(attack="forge_flood"),
        dict(algorithm="echo", attack="forge_flood", delay="uniform"),
    ],
)
def test_parity_drifting_clocks_exact_replay(kwargs):
    event, vector = run_both(cell(9, clock="random", **kwargs))
    assert_results_identical(event, vector, f"drifting replay {kwargs}")


@pytest.mark.parametrize("seed", [0, 5, 42])
def test_parity_drifting_seed_sweep(seed):
    event, vector = run_both(cell(8, clock="random", seed=seed, rounds=6))
    assert_results_identical(event, vector, f"drifting seed={seed}")


@pytest.mark.parametrize("algorithm", ["auth", "echo"])
@pytest.mark.parametrize("attack", [None, "crash", "eager", "two_faced", "laggard"])
def test_parity_min_delay_zero_tmin(algorithm, attack):
    # cell() sets tmin = 0, so every policy delay collapses to 0.0 and whole
    # rounds run as zero-delay cascades resolved purely by creation-seq order.
    event, vector = run_both(cell(9, attack=attack, delay="min", algorithm=algorithm))
    assert_results_identical(event, vector, f"min {algorithm} attack={attack}")


def test_parity_min_delay_message_sampling():
    event, vector = run_both(cell(9, delay="min", attack="eager", sample=2))
    assert event.message_samples is not None
    assert_results_identical(event, vector, "min sampling")


def test_parity_randomized_cross_product_grid():
    """random_* x drifting x {uniform, min} x {auth, echo}, randomized cells."""
    picker = random.Random(2026)
    attacks = ["random_silence", "random_two_faced", "random_laggard"]
    for _ in range(6):
        kwargs = dict(
            attack=picker.choice(attacks),
            clock=picker.choice(["random", "extreme", "nominal"]),
            delay=picker.choice(["uniform", "min"]),
            algorithm=picker.choice(["auth", "echo"]),
            seed=picker.randrange(1000),
            rounds=5,
        )
        event, vector = run_both(cell(picker.choice([7, 9, 10]), **kwargs))
        assert_results_identical(event, vector, f"cross-product {kwargs}")


# -- replayed RNG streams ----------------------------------------------------------------


def test_replayed_rng_streams_pin_fault_and_network_layers():
    """The vector kernel replays these exact streams; a reseed must fail here."""
    scenario = cell(8, attack="forge_flood", delay="uniform")
    handles = build_cluster(scenario, trace_level="metrics")
    # Network RNG: one stream seeded scenario.seed + 1, consumed per send.
    assert handles.sim.network.rng.getstate() == random.Random(scenario.seed + 1).getstate()
    # Each flooding adversary replays random.Random(seed + pid).
    for proc in handles.faulty:
        assert proc._rng.getstate() == random.Random(scenario.seed + proc.pid).getstate()
    # The uniform policy draws one unit sample per message, scaled into
    # [tmin, tdel] by the network (no clamp on the scaled value).
    probe, mirror = random.Random(7), random.Random(7)
    raw = handles.sim.network.policy.delay(0, 1, None, 0.0, probe)
    assert raw == mirror.random()
    assert handles.sim.network._choose_delay(0, 1, None) == (
        scenario.params.tmin
        + random.Random(scenario.seed + 1).random()
        * (scenario.params.tdel - scenario.params.tmin)
    )


@pytest.mark.parametrize(
    "attack", ["random_silence", "random_two_faced", "random_laggard"]
)
def test_random_behavior_streams_pin_fault_layer(attack):
    """Each random_* adversary consumes random.Random(seed + pid); the vector
    kernel replays exactly that stream through its per-behaviour draw table,
    so the seeding discipline is load-bearing."""
    scenario = cell(9, attack=attack)
    handles = build_cluster(scenario, trace_level="metrics")
    assert handles.faulty
    for proc in handles.faulty:
        assert proc._rng.getstate() == random.Random(scenario.seed + proc.pid).getstate()


def test_drift_rate_trajectory_pins_clock_layer():
    """The kernel rebuilds the event loop's drifting clocks float for float."""
    scenario = cell(7, clock="random")
    layout = _Layout(scenario, numpy_or_none())
    rebuilt = _honest_drifting_clocks(layout, scenario)
    offsets = spread_offsets(
        len(scenario.honest_pids),
        scenario.params.initial_offset_spread,
        seed=scenario.seed + 13,
    )
    lo, hi = rate_bounds(scenario.params.rho)
    for index, clock in enumerate(rebuilt):
        oracle = _honest_clock(scenario, index, offsets[index])
        assert list(clock._starts) == list(oracle._starts)
        assert list(clock._rates) == list(oracle._rates)
        assert list(clock._values) == list(oracle._values)
        # ... and the trajectory is Random(seed * 1009 + index) draw for draw.
        mirror = random.Random(scenario.seed * 1009 + index)
        assert list(clock._rates) == [mirror.uniform(lo, hi) for _ in clock._rates]


# -- lane batching -----------------------------------------------------------------------


@pytest.mark.parametrize(
    "base_kwargs",
    [
        dict(),
        dict(algorithm="echo"),
        dict(delay="uniform"),
        dict(algorithm="echo", attack="forge_flood", delay="uniform"),
    ],
)
def test_lane_batched_equals_serial_replications(base_kwargs):
    base = cell(7, rounds=6, **base_kwargs)
    event = run_scenario(
        dataclasses.replace(base, kernel="event", replications=5, shards=1, name=""),
        trace_level="metrics",
    )
    vector = run_scenario(
        dataclasses.replace(base, kernel="vector", replications=5, shards=1, name=""),
        trace_level="metrics",
    )
    assert_results_identical(event, vector, f"lane batching {base_kwargs}")
    assert event.shard_horizons == vector.shard_horizons
    assert vector.kernel_provenance is not None
    assert vector.kernel_provenance.vector_lanes == 5


@pytest.mark.parametrize(
    "base_kwargs",
    [dict(), dict(algorithm="echo"), dict(delay="uniform", attack="forge_flood")],
)
def test_run_shard_lane_fold_order(base_kwargs):
    base = cell(7, rounds=6, kernel="vector", **base_kwargs)
    lane = run_shard(dataclasses.replace(base, replications=4), 0, (0, 1, 2, 3))
    serial = run_shard(
        dataclasses.replace(base, replications=4, kernel="event"), 0, (0, 1, 2, 3)
    )
    assert lane.summary == serial.summary
    assert lane.vector_lanes == 4
    assert lane.fallback_lanes == 0
    assert serial.vector_lanes == 0
    assert serial.ineligible_lanes == 4


# -- selection, fallback and eligibility -------------------------------------------------


def test_ineligible_scenario_falls_back_with_note():
    scenario = cell(7, kernel="vector", attack="replay")  # not vectorized
    reason = kernel_ineligibility(scenario, "metrics")
    assert reason is not None
    handles = build_cluster(scenario, trace_level="metrics")
    del handles
    result = run_scenario(scenario, trace_level="metrics")
    event = run_scenario(
        dataclasses.replace(scenario, kernel="event"), trace_level="metrics"
    )
    assert_results_identical(event, result, "ineligible fallback")


def test_fallback_note_recorded_in_summary():
    scenario = cell(7, kernel="vector", attack="replay", replications=2, shards=1)
    outcome = run_shard(scenario, 0, (0, 1))
    notes = [note for note in outcome.summary.notes if note.startswith(FALLBACK_NOTE_PREFIX)]
    # One deduplicated note per distinct reason, annotated with the lane count.
    assert len(notes) == 1
    assert notes[0].endswith("(2 lanes)")
    assert outcome.ineligible_lanes == 2
    assert outcome.ineligible_reason is not None


def test_dynamic_fallback_notes_deduped_and_counted():
    # Statically eligible (honest = 4 >= f+1 = 3) but the echo acceptance
    # threshold 2f+1 = 5 is out of reach, so every lane falls back
    # dynamically when its event heap drains.
    scenario = cell(
        7, algorithm="echo", attack="silent", actual_faults=3, rounds=3,
        kernel="vector", replications=2, shards=1,
    )
    assert kernel_ineligibility(scenario, "metrics") is None
    outcome = run_shard(scenario, 0, (0, 1))
    notes = [note for note in outcome.summary.notes if note.startswith(FALLBACK_NOTE_PREFIX)]
    assert len(notes) == 1
    assert notes[0].endswith("(2 lanes)")
    assert outcome.fallback_lanes == 2
    assert outcome.vector_lanes == 0
    assert len(outcome.fallback_reasons) == 1
    # And the lanes the event loop re-ran still fold float-identically.
    serial = run_shard(dataclasses.replace(scenario, kernel="event"), 0, (0, 1))
    assert outcome.summary.notes != serial.summary.notes  # provenance differs
    compact_lane = dataclasses.replace(outcome.summary.compact(), notes=())
    compact_serial = dataclasses.replace(serial.summary.compact(), notes=())
    assert compact_lane == compact_serial


def test_auto_ineligible_records_no_note():
    scenario = cell(7, kernel="auto", attack="replay", replications=2, shards=1)
    outcome = run_shard(scenario, 0, (0, 1))
    assert not any(note.startswith(FALLBACK_NOTE_PREFIX) for note in outcome.summary.notes)
    assert outcome.ineligible_lanes == 2


def test_eligibility_reasons():
    assert kernel_ineligibility(cell(7), "metrics") is None
    assert "full" in kernel_ineligibility(cell(7), "full")
    # PRs 7 and 9 widened the whitelist: echo, uniform/min delays, drifting
    # clocks, forge_flood and the random_* strategies are served now; the
    # regenerated reason strings must never claim otherwise.
    assert kernel_ineligibility(cell(7, delay="uniform"), "metrics") is None
    assert kernel_ineligibility(echo_cell(7, attack=None), "metrics") is None
    assert kernel_ineligibility(cell(7, attack="forge_flood"), "metrics") is None
    assert kernel_ineligibility(
        echo_cell(10, attack="forge_flood", delay="uniform"), "metrics"
    ) is None
    assert kernel_ineligibility(cell(7, delay="min"), "metrics") is None
    assert kernel_ineligibility(cell(7, clock="random"), "metrics") is None
    for attack in ("random_silence", "random_two_faced", "random_laggard"):
        assert kernel_ineligibility(cell(7, attack=attack), "metrics") is None
    reason = kernel_ineligibility(cell(7, attack="replay"), "metrics")
    assert "attack" in reason and "'forge_flood'" in reason
    assert "'random_silence'" in reason  # reason strings stay set-derived
    # The clock_mode reason is regenerated from ELIGIBLE_CLOCK_MODES too
    # (it used to hardcode "drifting clocks"); probe with a duck-typed
    # scenario carrying a clock mode no Scenario can hold.
    import types

    bogus_clock = types.SimpleNamespace(
        algorithm="auth", attack=None, clock_mode="quartz"
    )
    reason = kernel_ineligibility(bogus_clock, "metrics")
    assert "clock_mode" in reason and "'random'" in reason and "'extreme'" in reason
    assert "not vectorized" in kernel_ineligibility(
        cell(7, attack=None, use_startup=True), "metrics"
    )
    assert "joiner" in kernel_ineligibility(
        cell(7, joiner_count=1, join_time=2.0), "metrics"
    )
    lw = dataclasses.replace(cell(7, attack=None), algorithm="lundelius_welch", name="")
    reason = kernel_ineligibility(lw, "metrics")
    assert "algorithm" in reason and "'echo'" in reason
    # Out-of-bound echo configurations raise in the event loop's tracker;
    # the vector layer must refuse statically rather than mask the error.
    bad_echo = cell(7, algorithm="echo", f=3)
    assert "n > 3f" in kernel_ineligibility(bad_echo, "metrics")


def test_resolve_kernel_env_and_field(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert resolve_kernel(cell(5)) == "auto"
    monkeypatch.setenv("REPRO_KERNEL", "event")
    assert resolve_kernel(cell(5)) == "event"
    assert resolve_kernel(cell(5, kernel="vector")) == "vector"
    monkeypatch.setenv("REPRO_KERNEL", "bogus")
    with pytest.raises(ValueError):
        resolve_kernel(cell(5))


def test_scenario_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        cell(5, kernel="numpy")


def test_dynamic_fallback_preserves_cache_key(monkeypatch):
    """Fallback must never fork cache identity: the cache keys on the static
    resolution, so a lane that dynamically fell back has to produce the exact
    cache key a served lane would (run_shard asserts the same invariant)."""
    import repro.workloads.scenarios as scenarios_module
    from repro.runner.cache import cache_key

    scenario = cell(7, kernel="vector", replications=2, shards=1)
    key_before = cache_key(scenario, check_guarantees=True, trace_level="metrics")

    def forced_fallback(lane_scenarios, **kwargs):
        return [LaneOutcome(fallback="forced by test") for _ in lane_scenarios]

    monkeypatch.setattr(scenarios_module, "run_lanes", forced_fallback)
    outcome = run_shard(scenario, 0, (0, 1))
    assert outcome.fallback_lanes == 2
    assert outcome.vector_lanes == 0
    key_after = cache_key(scenario, check_guarantees=True, trace_level="metrics")
    assert key_before == key_after


def test_run_lanes_reports_fallback_without_recording():
    # An out-of-regime lane (the crash instant coincides with a round-1
    # timer) must refuse without touching a recorder, not guess.
    scenario = cell(7, delay="max", attack="crash", spread=0.0, clock="nominal")
    outcomes = run_lanes([scenario, dataclasses.replace(scenario, seed=9)])
    for outcome in outcomes:
        assert (outcome.summary is None) == (outcome.fallback is not None)


# -- mirrored adversary constants --------------------------------------------------------


def test_mirrored_constants_match_fault_layer():
    """The kernel mirrors the faults-layer constants; they must never drift."""
    crash = cell(6, attack="crash")
    handles = build_cluster(crash, trace_level="metrics")
    for proc in handles.faulty:
        assert proc.crash_time == CRASH_PERIODS * crash.params.period

    eager = cell(6, attack="eager")
    handles = build_cluster(eager, trace_level="metrics")
    for proc in handles.faulty:
        assert proc.rounds == EAGER_MAX_ROUND
        assert proc.early_factor == EAGER_FACTOR

    flood = cell(8, attack="forge_flood")
    handles = build_cluster(flood, trace_level="metrics")
    assert handles.faulty
    for proc in handles.faulty:
        assert proc.interval == FLOOD_INTERVAL
        assert proc.rounds == FLOOD_MAX_ROUND

    from repro.faults import behaviors

    assert behaviors.RANDOM_DROP_PROBABILITY == RANDOM_DROP_PROBABILITY
    assert behaviors.RANDOM_FAST_BIAS == RANDOM_FAST_BIAS

    from repro.broadcast.authenticated import SignatureTracker
    from repro.broadcast.echo import EchoTracker
    from repro.crypto.signatures import KeyStore

    keystore = KeyStore.generate(4, seed=0)
    sig_tracker = SignatureTracker(keystore, threshold=2, content_factory=lambda k: ("round", k))
    assert sig_tracker.max_round_lookahead == TRACKER_LOOKAHEAD
    echo_tracker = EchoTracker(n=4, f=1)
    assert echo_tracker.max_round_lookahead == TRACKER_LOOKAHEAD
