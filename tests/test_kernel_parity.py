"""Float-for-float parity between the event loop and the vector kernel.

The vector kernel (``repro.sim.vectorized``) is only allowed to replace the
event loop for scenario families it matches float-for-float -- these tests
pin that contract across the eligible attacks, delay/clock modes, tie-heavy
degenerate grids and message sampling, assert the lane-batched replication
path equals the serial fold, and check that every ineligible scenario falls
back to the event loop with a recorded note instead of erroring.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.common import MEASURED_RESULT_FIELDS
from repro.sim.kernel import (
    FALLBACK_NOTE_PREFIX,
    kernel_ineligibility,
    numpy_or_none,
    resolve_kernel,
)
from repro.sim.vectorized import (
    CRASH_PERIODS,
    EAGER_FACTOR,
    EAGER_MAX_ROUND,
    run_lanes,
)
from repro.workloads.scenarios import (
    Scenario,
    build_cluster,
    run_scenario,
    run_shard,
)
from repro.core.params import SyncParams

pytestmark = pytest.mark.skipif(numpy_or_none() is None, reason="numpy not installed")


def cell(
    n,
    attack="skew_max",
    clock="extreme",
    delay="targeted",
    rounds=8,
    spread=0.01,
    seed=None,
    sample=None,
    **kwargs,
):
    params = SyncParams(
        n=n,
        f=(n - 1) // 2,
        rho=1e-4,
        tdel=0.01,
        tmin=0.0,
        period=1.0,
        initial_offset_spread=spread,
    )
    return Scenario(
        params=params,
        algorithm="auth",
        rounds=rounds,
        attack=attack,
        clock_mode=clock,
        delay_mode=delay,
        seed=100 + n if seed is None else seed,
        sample_messages=sample,
        **kwargs,
    )


def assert_results_identical(event_result, vector_result, label=""):
    for field in MEASURED_RESULT_FIELDS:
        assert getattr(event_result, field) == getattr(vector_result, field), (
            f"{label}: {field} differs"
        )
    assert event_result.accuracy == vector_result.accuracy, f"{label}: accuracy differs"
    assert event_result.guarantees == vector_result.guarantees, f"{label}: guarantees differ"
    assert event_result.message_samples == vector_result.message_samples, (
        f"{label}: message samples differ"
    )


def run_both(scenario):
    """The scenario on both kernels; asserts the vector kernel actually served."""
    event = run_scenario(
        dataclasses.replace(scenario, kernel="event"), trace_level="metrics"
    )
    vector_scenario = dataclasses.replace(scenario, kernel="vector")
    outcome = run_lanes([vector_scenario], sample_messages=scenario.sample_messages)[0]
    assert outcome.fallback is None, f"unexpected fallback: {outcome.fallback}"
    vector = run_scenario(vector_scenario, trace_level="metrics")
    return event, vector


# -- single-run parity across the eligible families -------------------------------------


@pytest.mark.parametrize("n", [5, 7, 14])
def test_parity_skew_max_targeted(n):
    event, vector = run_both(cell(n))
    assert_results_identical(event, vector, f"skew_max n={n}")


@pytest.mark.parametrize("attack", [None, "silent", "crash", "eager", "two_faced", "laggard"])
def test_parity_per_attack(attack):
    event, vector = run_both(cell(7, attack=attack))
    assert_results_identical(event, vector, f"attack={attack}")


@pytest.mark.parametrize("delay", ["max", "midpoint", "targeted"])
def test_parity_per_delay_mode(delay):
    event, vector = run_both(cell(9, attack="eager", delay=delay))
    assert_results_identical(event, vector, f"delay={delay}")


def test_parity_nominal_clocks():
    event, vector = run_both(cell(7, clock="nominal"))
    assert_results_identical(event, vector, "nominal clocks")


def test_parity_tie_heavy():
    """Zero spread + nominal clocks + uniform max delay: every instant shared.

    Every round-k timer fires at exactly ``k*P`` and every acceptance lands at
    exactly ``k*P + tdel``, so the whole run resolves through the kernel's
    exact tie-resolution walk -- the hardest ordering regime it supports.
    """
    for attack in (None, "crash", "skew_max"):
        delay = "targeted" if attack == "skew_max" else "max"
        event, vector = run_both(
            cell(7, attack=attack, clock="nominal", delay=delay, spread=0.0)
        )
        assert_results_identical(event, vector, f"tie-heavy attack={attack}")


@pytest.mark.parametrize("sample", [1, 3])
def test_parity_message_sampling(sample):
    event, vector = run_both(cell(7, sample=sample))
    assert event.message_samples is not None
    assert_results_identical(event, vector, f"sampling K={sample}")


@pytest.mark.parametrize("seed", [0, 1, 17, 202])
def test_parity_seed_sweep(seed):
    event, vector = run_both(cell(7, seed=seed, rounds=6))
    assert_results_identical(event, vector, f"seed={seed}")


# -- lane batching -----------------------------------------------------------------------


def test_lane_batched_equals_serial_replications():
    base = cell(7, rounds=6)
    event = run_scenario(
        dataclasses.replace(base, kernel="event", replications=5, shards=1, name=""),
        trace_level="metrics",
    )
    vector = run_scenario(
        dataclasses.replace(base, kernel="vector", replications=5, shards=1, name=""),
        trace_level="metrics",
    )
    assert_results_identical(event, vector, "lane batching")
    assert event.shard_horizons == vector.shard_horizons


def test_run_shard_lane_fold_order():
    base = cell(7, rounds=6, kernel="vector")
    lane = run_shard(dataclasses.replace(base, replications=4), 0, (0, 1, 2, 3))
    serial = run_shard(
        dataclasses.replace(base, replications=4, kernel="event"), 0, (0, 1, 2, 3)
    )
    assert lane.summary == serial.summary


# -- selection, fallback and eligibility -------------------------------------------------


def test_ineligible_scenario_falls_back_with_note():
    scenario = cell(7, kernel="vector", clock="random")  # drifting clocks
    reason = kernel_ineligibility(scenario, "metrics")
    assert reason is not None
    handles = build_cluster(scenario, trace_level="metrics")
    del handles
    result = run_scenario(scenario, trace_level="metrics")
    event = run_scenario(
        dataclasses.replace(scenario, kernel="event"), trace_level="metrics"
    )
    assert_results_identical(event, result, "ineligible fallback")


def test_fallback_note_recorded_in_summary():
    scenario = cell(7, kernel="vector", clock="random", replications=2, shards=1)
    outcome = run_shard(scenario, 0, (0, 1))
    notes = [note for note in outcome.summary.notes if note.startswith(FALLBACK_NOTE_PREFIX)]
    assert len(notes) == 2  # one per replication that fell back


def test_auto_ineligible_records_no_note():
    scenario = cell(7, kernel="auto", clock="random", replications=2, shards=1)
    outcome = run_shard(scenario, 0, (0, 1))
    assert not any(note.startswith(FALLBACK_NOTE_PREFIX) for note in outcome.summary.notes)


def test_eligibility_reasons():
    assert kernel_ineligibility(cell(7), "metrics") is None
    assert "full" in kernel_ineligibility(cell(7), "full")
    assert "delay_mode" in kernel_ineligibility(cell(7, delay="uniform"), "metrics")
    assert "not vectorized" in kernel_ineligibility(
        cell(7, attack=None, use_startup=True), "metrics"
    )
    assert "joiner" in kernel_ineligibility(
        cell(7, joiner_count=1, join_time=2.0), "metrics"
    )
    echo = dataclasses.replace(cell(7, attack=None), algorithm="echo", name="")
    assert "algorithm" in kernel_ineligibility(echo, "metrics")


def test_resolve_kernel_env_and_field(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert resolve_kernel(cell(5)) == "auto"
    monkeypatch.setenv("REPRO_KERNEL", "event")
    assert resolve_kernel(cell(5)) == "event"
    assert resolve_kernel(cell(5, kernel="vector")) == "vector"
    monkeypatch.setenv("REPRO_KERNEL", "bogus")
    with pytest.raises(ValueError):
        resolve_kernel(cell(5))


def test_scenario_rejects_unknown_kernel():
    with pytest.raises(ValueError):
        cell(5, kernel="numpy")


def test_run_lanes_reports_fallback_without_recording():
    # An out-of-regime lane (drifting clocks never reach run_lanes through
    # run_scenario, but calling directly must refuse, not guess).
    scenario = cell(7, delay="max", attack="crash", spread=0.0, clock="nominal")
    outcomes = run_lanes([scenario, dataclasses.replace(scenario, seed=9)])
    for outcome in outcomes:
        assert (outcome.summary is None) == (outcome.fallback is not None)


# -- mirrored adversary constants --------------------------------------------------------


def test_mirrored_constants_match_fault_layer():
    """The kernel mirrors the faults-layer constants; they must never drift."""
    crash = cell(6, attack="crash")
    handles = build_cluster(crash, trace_level="metrics")
    for proc in handles.faulty:
        assert proc.crash_time == CRASH_PERIODS * crash.params.period

    eager = cell(6, attack="eager")
    handles = build_cluster(eager, trace_level="metrics")
    for proc in handles.faulty:
        assert proc.rounds == EAGER_MAX_ROUND
        assert proc.early_factor == EAGER_FACTOR
