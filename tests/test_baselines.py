"""Unit tests for the baseline synchronizers and their aggregation rules."""

from __future__ import annotations

import pytest

from repro.baselines.lamport_melliar_smith import LamportMelliarSmithProcess, egocentric_average
from repro.baselines.lundelius_welch import LundeliusWelchProcess, fault_tolerant_midpoint
from repro.baselines.naive import FreeRunningProcess, InflatedClockAttacker, SyncToMaxProcess
from repro.core.params import params_for
from repro.workloads.scenarios import Scenario, run_scenario


# -- aggregation rules (pure functions) ----------------------------------------------------


def test_fault_tolerant_midpoint_discards_extremes():
    values = [-100.0, 0.0, 0.1, 0.2, 100.0]
    assert fault_tolerant_midpoint(values, f=1) == pytest.approx(0.1)


def test_fault_tolerant_midpoint_bounded_by_honest_values_with_f_outliers():
    honest = [0.0, 0.05, 0.1]
    values = honest + [1000.0]
    result = fault_tolerant_midpoint(values, f=1)
    assert min(honest) <= result <= max(honest)


def test_fault_tolerant_midpoint_empty_and_small_inputs():
    assert fault_tolerant_midpoint([], f=2) == 0.0
    assert fault_tolerant_midpoint([0.4], f=2) == pytest.approx(0.4)
    assert fault_tolerant_midpoint([0.0, 1.0], f=3) == pytest.approx(0.5)


def test_fault_tolerant_midpoint_order_invariant():
    values = [0.3, -0.2, 0.7, 0.1, -0.5]
    assert fault_tolerant_midpoint(values, 1) == fault_tolerant_midpoint(sorted(values), 1)


def test_egocentric_average_clips_outliers_to_zero():
    assert egocentric_average([0.1, -0.1, 50.0], delta_max=1.0) == pytest.approx(0.0)
    assert egocentric_average([0.3, 0.3, 0.3], delta_max=1.0) == pytest.approx(0.3)
    assert egocentric_average([], delta_max=1.0) == 0.0


def test_egocentric_average_bounded_by_delta_max():
    values = [0.9, -0.9, 0.5, 100.0, -100.0]
    assert abs(egocentric_average(values, delta_max=1.0)) <= 1.0


# -- process-level behaviour ---------------------------------------------------------------


def run_baseline(algorithm, attack="silent", rounds=5, n=7, f=1, seed=3, **scenario_kwargs):
    params = params_for(n, f=f, authenticated=False, rho=1e-4, tdel=0.01, period=1.0)
    scenario = Scenario(
        params=params,
        algorithm=algorithm,
        attack=attack,
        actual_faults=f,
        rounds=rounds,
        clock_mode="random",
        delay_mode="uniform",
        seed=seed,
        **scenario_kwargs,
    )
    return run_scenario(scenario, check_guarantees=False)


def test_lundelius_welch_keeps_clocks_synchronized():
    result = run_baseline("lundelius_welch")
    assert result.completed_round >= 5
    assert result.precision < 0.05


def test_lamport_melliar_smith_keeps_clocks_synchronized():
    result = run_baseline("lamport_melliar_smith")
    assert result.completed_round >= 5
    assert result.precision < 0.05


def test_sync_to_max_works_without_faults():
    result = run_baseline("sync_to_max", attack="silent")
    assert result.completed_round >= 5
    assert result.precision < 0.05


def test_sync_to_max_is_broken_by_inflated_clock():
    result = run_baseline("sync_to_max", attack="inflated_clock")
    assert result.precision > 1.0  # dragged far away by the lying clock source


def test_averaging_baselines_tolerate_inflated_clock():
    lw = run_baseline("lundelius_welch", attack="inflated_clock")
    lms = run_baseline("lamport_melliar_smith", attack="inflated_clock")
    assert lw.precision < 0.05
    assert lms.precision < 0.05


def test_free_running_clocks_drift_apart():
    params = params_for(4, f=0, authenticated=False, rho=5e-3, tdel=0.01, period=1.0)
    scenario = Scenario(
        params=params,
        algorithm="free_running",
        rounds=8,
        clock_mode="extreme",
        delay_mode="uniform",
        seed=1,
    )
    result = run_scenario(scenario, check_guarantees=False)
    # With rho = 5e-3 and ~8 seconds, extreme clocks drift apart by ~8 * 1e-2.
    assert result.precision > 0.05
    assert result.total_messages == 0


def test_baseline_processes_record_resyncs():
    result = run_baseline("lundelius_welch")
    for pid in result.trace.honest_pids():
        assert len(result.trace.processes[pid].resyncs) >= 5


def test_baseline_constructor_delta_max_default():
    params = params_for(7, f=2, authenticated=False)
    proc = LamportMelliarSmithProcess(0, params)
    assert proc.delta_max > 0
    explicit = LamportMelliarSmithProcess(1, params, delta_max=0.5)
    assert explicit.delta_max == 0.5


def test_baseline_algorithm_names():
    params = params_for(4, f=1, authenticated=False)
    assert LundeliusWelchProcess(0, params).algorithm_name == "lundelius-welch"
    assert LamportMelliarSmithProcess(0, params).algorithm_name == "lamport-melliar-smith"
    assert SyncToMaxProcess(0, params).algorithm_name == "sync-to-max"
    assert FreeRunningProcess(0, params).algorithm_name == "free-running"
    assert InflatedClockAttacker(9, params).faulty
