"""The self-healing elastic fleet: respawn, quarantine, late join, autoscale.

Recovery-timing coverage for :mod:`repro.runner.exec.remote`'s fleet
machinery, driven by the deterministic chaos harness
(:class:`~repro.runner.exec.faultinject.ChaosController`).  The acceptance
contract lives here too: a sweep whose scripted schedule kills every initial
worker at least once completes without :class:`ExecutorFailure`, reports at
least one respawn, and is float-for-float identical to the serial run.

All waits poll with short intervals against generous deadlines; nothing
sleeps longer than the ~2s fast heartbeat deadline.
"""

from __future__ import annotations

import os
import signal
import sys
import time

import pytest

from repro.runner import SubprocessWorkerExecutor, SweepRunner, reset_runner
from repro.runner.exec import ChaosController, ChaosEvent, ChaosSchedule
from repro.runner.exec import faultinject

from test_executors import FAST, fingerprint, parity_grid_scenarios, small_grid, wait_for

#: FAST plus aggressive fleet timings: losses are detected within ~2s and
#: replacements arrive within ~0.1s, so recovery tests finish in seconds.
FLEET = dict(
    FAST,
    respawn_backoff=0.05,
    respawn_backoff_cap=0.5,
    monitor_period=0.05,
)


@pytest.fixture(autouse=True)
def _isolated_default_runner():
    reset_runner()
    yield
    reset_runner()


# -- respawn ---------------------------------------------------------------------------


def test_killed_worker_respawns_and_task_recovers(tmp_path):
    latch = str(tmp_path / "latch")
    with SubprocessWorkerExecutor(2, **FLEET) as executor:
        future = executor.submit(faultinject.hang_once_task, latch)
        wait_for(lambda: os.path.exists(latch))
        victim = int(open(latch).read())  # provably mid-task: it wrote the latch
        os.kill(victim, signal.SIGKILL)
        assert future.result(timeout=60) == "recovered"
        # The slot refills: the fleet returns to full strength by itself,
        # and the replacement completes its handshake (a counted join).
        wait_for(lambda: executor.live_worker_count() == 2)
        wait_for(lambda: executor.stats()["joins"] >= 1)
        stats = executor.stats()
        assert stats["workers_lost"] == 1
        assert stats["respawns"] >= 1
        assert victim not in executor.worker_pids()


def test_respawned_worker_takes_parked_work_after_total_fleet_loss():
    with SubprocessWorkerExecutor(2, **FLEET) as executor:
        assert executor.submit(faultinject.echo_task, "warm").result(timeout=60) == "warm"
        for pid in executor.worker_pids():
            os.kill(pid, signal.SIGKILL)
        # Every worker is dead; with self-healing on, new work parks and then
        # dispatches to the replacements instead of failing fast.
        futures = [executor.submit(faultinject.square_task, n) for n in range(8)]
        assert [f.result(timeout=60) for f in futures] == [n**2 for n in range(8)]
        stats = executor.stats()
        assert stats["workers_lost"] >= 2
        assert stats["respawns"] >= 2


def test_wedged_worker_probed_then_replaced(tmp_path):
    latch = str(tmp_path / "latch")
    with SubprocessWorkerExecutor(2, **FLEET) as executor:
        future = executor.submit(faultinject.freeze_once_task, latch)
        # SIGSTOP silences heartbeats but keeps pipes open: only the deadline
        # machinery (suspect -> probe -> kill at the full deadline) sees it.
        assert future.result(timeout=60) == "recovered"
        assert executor.stats()["workers_lost"] >= 1
        # The retry recovered on the survivor; the frozen slot's replacement
        # arrives on its own backoff schedule shortly after.
        wait_for(lambda: executor.stats()["respawns"] >= 1)


def test_partitioned_worker_recovers_via_respawn():
    with SubprocessWorkerExecutor(2, **FLEET) as executor:
        assert executor.submit(faultinject.echo_task, "warm").result(timeout=60) == "warm"
        pid = executor.worker_pids()[0]
        assert executor.partition_worker(pid)
        wait_for(lambda: executor.stats()["workers_lost"] >= 1)
        wait_for(lambda: executor.live_worker_count() == 2)
        assert executor.submit(faultinject.echo_task, "back").result(timeout=60) == "back"
        assert executor.partition_worker(-1) is False  # unknown pid: report, don't raise


# -- crash-loop quarantine and late rejoin ---------------------------------------------


class _HalfBrokenExecutor(SubprocessWorkerExecutor):
    """Slot 0 spawns a worker that dies instantly; slot 1 is healthy."""

    def _spawn_command(self, index):
        if index == 0:
            return [sys.executable, "-c", "raise SystemExit(13)"]
        return super()._spawn_command(index)


def test_crash_looping_slot_is_quarantined_not_thrashed():
    executor = _HalfBrokenExecutor(
        2,
        crash_loop_threshold=3,
        crash_loop_window=30.0,
        quarantine_backoff=60.0,  # parked far beyond the test's lifetime
        **FLEET,
    )
    try:
        futures = [executor.submit(faultinject.square_task, n) for n in range(6)]
        assert [f.result(timeout=60) for f in futures] == [n**2 for n in range(6)]
        wait_for(lambda: "quarantined" in executor.slot_states())
        stats = executor.stats()
        assert stats["quarantines"] >= 1
        # The healthy slot carried the sweep; the broken one stopped burning
        # spawns once the crash-loop threshold tripped.
        assert stats["workers_lost"] <= executor.crash_loop_threshold + 1
    finally:
        executor.close()


class _GatedHostExecutor(SubprocessWorkerExecutor):
    """Slot 0's 'host' is unreachable until the gate file appears."""

    def __init__(self, *args, gate: str, **kwargs) -> None:
        self.gate = gate
        super().__init__(*args, **kwargs)

    def _spawn_command(self, index):
        if index != 0:
            return super()._spawn_command(index)
        script = (
            "import os, runpy, sys\n"
            f"if not os.path.exists({self.gate!r}):\n"
            "    sys.exit(13)\n"
            f"sys.argv = ['repro.worker', '--heartbeat', {str(self.heartbeat_interval)!r}]\n"
            "runpy.run_module('repro.worker', run_name='__main__')\n"
        )
        return [sys.executable, "-c", script]


def test_quarantined_host_rejoins_when_probe_succeeds(tmp_path):
    gate = str(tmp_path / "host-up")
    executor = _GatedHostExecutor(
        2,
        gate=gate,
        crash_loop_threshold=2,
        crash_loop_window=30.0,
        quarantine_backoff=0.1,
        quarantine_backoff_cap=0.3,
        **FLEET,
    )
    try:
        assert executor.submit(faultinject.echo_task, "up").result(timeout=60) == "up"
        wait_for(lambda: "quarantined" in executor.slot_states())
        # The 'host' comes back: the next scheduled probe spawn completes its
        # handshake and the slot rejoins the rotation mid-life.
        open(gate, "w").close()
        wait_for(lambda: executor.live_worker_count() == 2)
        wait_for(lambda: executor.stats()["joins"] >= 1)
        assert "quarantined" not in executor.slot_states()
        futures = [executor.submit(faultinject.square_task, n) for n in range(6)]
        assert [f.result(timeout=60) for f in futures] == [n**2 for n in range(6)]
    finally:
        executor.close()


# -- late join and autoscale -----------------------------------------------------------


def test_grow_adds_worker_that_steals_backlog(tmp_path):
    gate = str(tmp_path / "gate")
    with SubprocessWorkerExecutor(1, **FLEET) as executor:
        futures = [executor.submit(faultinject.hang_until_file_task, gate) for _ in range(4)]
        wait_for(lambda: executor.busy_worker_pids())
        executor.grow(1)
        # The joiner handshakes and immediately pulls queued work: two gate
        # tasks are in flight at once even though the fleet started at one.
        wait_for(lambda: len(executor.busy_worker_pids()) == 2)
        assert executor.stats()["joins"] >= 1
        open(gate, "w").close()
        assert [f.result(timeout=60) for f in futures] == [gate] * 4
        assert executor.worker_count >= 2


def test_autoscale_grows_under_backlog_and_reaps_idle(tmp_path):
    gate = str(tmp_path / "gate")
    executor = SubprocessWorkerExecutor(
        1,
        autoscale=True,
        min_workers=1,
        max_workers=3,
        scale_backlog_factor=1.0,
        idle_grace=0.3,
        **FLEET,
    )
    try:
        assert executor.worker_count == 3  # window sizing sees the ceiling
        futures = [executor.submit(faultinject.hang_until_file_task, gate) for _ in range(9)]
        wait_for(lambda: executor.live_worker_count() == 3)
        assert executor.stats()["scale_ups"] >= 2
        open(gate, "w").close()
        assert [f.result(timeout=60) for f in futures] == [gate] * 9
        # Drained: the policy reaps idle workers back down to the floor.
        wait_for(lambda: executor.live_worker_count() == 1)
        stats = executor.stats()
        assert stats["scale_downs"] >= 2
        # Reaping is retirement, not failure: no losses, no respawns.
        assert stats["workers_lost"] == 0 and stats["respawns"] == 0
    finally:
        executor.close()


def test_autoscale_bounds_validated():
    with pytest.raises(ValueError, match="min_workers"):
        SubprocessWorkerExecutor(2, autoscale=True, min_workers=0)
    with pytest.raises(ValueError, match="max_workers"):
        SubprocessWorkerExecutor(2, autoscale=True, min_workers=4, max_workers=2)


# -- the chaos harness -----------------------------------------------------------------


def test_chaos_schedule_parse_and_validation():
    schedule = ChaosSchedule.parse("kill@1, wedge@3,partition@5", seed=7)
    assert [(e.action, e.after_results) for e in schedule.events] == [
        ("kill", 1),
        ("wedge", 3),
        ("partition", 5),
    ]
    assert schedule.seed == 7
    assert [e.after_results for e in ChaosSchedule.kill_every_worker(3).events] == [1, 2, 3]
    with pytest.raises(ValueError, match="action@count"):
        ChaosSchedule.parse("kill")
    with pytest.raises(ValueError, match="unknown chaos action"):
        ChaosSchedule.parse("nuke@1")
    with pytest.raises(ValueError, match="no events"):
        ChaosSchedule.parse(" , ")
    with pytest.raises(ValueError, match="after_results"):
        ChaosEvent(0, "kill")


def test_chaos_controller_restores_submit_on_exit():
    with SubprocessWorkerExecutor(1, **FLEET) as executor:
        original = executor.submit
        with ChaosController(executor, ChaosSchedule.parse("kill@99")) as chaos:
            assert executor.submit != original
            assert executor.submit(faultinject.echo_task, 1).result(timeout=60) == 1
        assert executor.submit == original
        assert chaos.fired == []  # event 99 never came due


def test_chaos_kill_every_worker_murders_whole_initial_fleet():
    with SubprocessWorkerExecutor(2, **FLEET) as executor:
        # Workers spawn lazily on the first submit; warm the fleet first.
        assert executor.submit(faultinject.echo_task, 0).result(timeout=60) == 0
        initial = set(executor.worker_pids())
        assert len(initial) == 2
        schedule = ChaosSchedule.kill_every_worker(2, seed=3)
        with ChaosController(executor, schedule) as chaos:
            results = []
            for n in range(10):
                results.append(executor.submit(faultinject.square_task, n).result(timeout=60))
        assert results == [n**2 for n in range(10)]
        assert len(chaos.fired) == 2
        assert len(chaos.victims & initial) >= 2  # both initial workers were hit
        assert executor.stats()["respawns"] >= 2


# -- acceptance: churn-invariant sweeps ------------------------------------------------


def test_sweep_under_continuous_worker_murder_is_float_identical():
    """The PR's acceptance criterion: a scripted schedule kills every worker
    at least once mid-sweep; the sweep still completes (no ExecutorFailure),
    matches the serial run float-for-float, and reports the respawns."""
    scenarios = parity_grid_scenarios() + small_grid(count=3, rounds=6)
    serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    executor = SubprocessWorkerExecutor(2, **FLEET)
    with SweepRunner(jobs=2, executor=executor, chunk_size=1) as runner:
        schedule = ChaosSchedule.kill_every_worker(2, stride=2, seed=11)
        with ChaosController(executor, schedule) as chaos:
            churned = runner.run_sweep(scenarios, trace_level="metrics")
        stats = runner.executor_stats()
    assert fingerprint(churned) == fingerprint(serial)
    assert len(chaos.fired) == 2
    assert all(pid is not None for _, _, pid in chaos.fired)
    assert stats["workers_lost"] >= 2
    assert stats["respawns"] >= 1


def test_sweep_survives_wedge_and_partition_schedule():
    scenarios = small_grid(count=6, rounds=6)
    serial = SweepRunner(jobs=1).run_sweep(scenarios, trace_level="metrics")
    executor = SubprocessWorkerExecutor(2, **FLEET)
    with SweepRunner(jobs=2, executor=executor, chunk_size=1) as runner:
        schedule = ChaosSchedule.parse("partition@1,wedge@2", seed=5)
        with ChaosController(executor, schedule) as chaos:
            churned = runner.run_sweep(scenarios, trace_level="metrics")
    assert fingerprint(churned) == fingerprint(serial)
    assert [action for action, _, _ in chaos.fired] == ["partition", "wedge"]


# -- cumulative provenance -------------------------------------------------------------


def test_executor_stats_cumulative_across_close_and_backend_drop():
    scenarios = small_grid(count=4, rounds=4)
    runner = SweepRunner(jobs=2, executor="subprocess", chunk_size=1)
    try:
        runner.run_sweep(scenarios, trace_level="metrics")
        first = runner.executor_stats()
        assert first["tasks"] >= len(scenarios)
        runner.close()  # drops the spec-spawned backend entirely
        after_close = runner.executor_stats()
        assert after_close["tasks"] == first["tasks"]
        runner.run_sweep(scenarios, trace_level="metrics")
        second = runner.executor_stats()
        # The respawned backend's counters stack on the banked ones.
        assert second["tasks"] >= first["tasks"] + len(scenarios)
    finally:
        runner.close()


def test_executor_stats_survive_mid_sweep_respawn_cycle():
    with SubprocessWorkerExecutor(2, **FLEET) as executor:
        assert executor.submit(faultinject.echo_task, 1).result(timeout=60) == 1
        for pid in executor.worker_pids():
            os.kill(pid, signal.SIGKILL)
        assert executor.submit(faultinject.echo_task, 2).result(timeout=60) == 2
        wait_for(lambda: executor.stats()["respawns"] >= 2)
        before = executor.stats()
        executor.close()
        assert executor.stats() == before  # close() never zeroes provenance
        # And the next incarnation keeps counting upward from there.
        assert executor.submit(faultinject.echo_task, 3).result(timeout=60) == 3
        assert executor.stats()["tasks"] == before["tasks"] + 1


def test_fleet_policy_timing_is_bounded():
    """Guard the suite's wall-clock budget: every recovery above rides on
    sub-second backoffs, so a fresh executor must spawn, respawn once and
    close within a few seconds."""
    started = time.monotonic()
    with SubprocessWorkerExecutor(1, **FLEET) as executor:
        assert executor.submit(faultinject.echo_task, "t").result(timeout=60) == "t"
        os.kill(executor.worker_pids()[0], signal.SIGKILL)
        assert executor.submit(faultinject.echo_task, "t2").result(timeout=60) == "t2"
    assert time.monotonic() - started < 30.0
