"""Tests for the experiment runners, their qualitative results, and the public API."""

from __future__ import annotations


import repro
from repro.analysis.report import Table
from repro.experiments import EXPERIMENTS


def run_tables(exp_id):
    tables = EXPERIMENTS[exp_id].run(quick=True)
    assert tables and all(isinstance(t, Table) for t in tables)
    assert all(t.rows for t in tables)
    return tables


def test_registry_covers_e1_to_e15():
    assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 16)}
    for experiment in EXPERIMENTS.values():
        assert experiment.claim


def test_e1_precision_within_bound_everywhere():
    (table,) = run_tables("E1")
    assert all(table.column("within bound"))


def test_e2_accuracy_excess_shrinks_with_period_and_max_breaks():
    rate_table, fault_table = run_tables("E2")
    excesses = rate_table.column("measured excess")
    assert excesses[0] >= excesses[-1]
    bounds = rate_table.column("analytic excess")
    assert all(m <= b + 1e-9 for m, b in zip(excesses, bounds))
    rows = {row[0]: row for row in fault_table.rows}
    assert rows["sync_to_max"][3] > 1.0  # precision destroyed by the lying clock
    assert rows["auth"][3] < 0.1
    assert rows["lundelius_welch"][3] < 0.1


def test_e3_and_e4_threshold_tightness():
    for exp_id in ("E3", "E4"):
        (table,) = run_tables(exp_id)
        for row in table.rows:
            assumed_f, actual = row[1], row[2]
            within = row[-1]
            if actual <= assumed_f:
                assert within, f"{exp_id}: in-spec row should hold: {row}"
            else:
                assert not within, f"{exp_id}: out-of-spec row should break: {row}"


def test_e5_periods_within_bounds():
    (table,) = run_tables("E5")
    assert all(table.column("within bounds"))


def test_e6_startup_in_time_and_within_bound():
    (table,) = run_tables("E6")
    assert all(table.column("in time"))
    assert all(table.column("within bound"))


def test_e7_joins_in_time():
    (table,) = run_tables("E7")
    assert all(table.column("joined"))
    assert all(table.column("in time"))


def test_e8_message_complexity_within_bound():
    (table,) = run_tables("E8")
    assert all(table.column("within bound"))
    # O(n^2): messages grow superlinearly with n for each algorithm.
    auth_rows = [row for row in table.rows if row[0] == "auth"]
    assert auth_rows[-1][3] > auth_rows[0][3] * 2


def test_e9_precision_scales_with_tdel():
    tdel_table, drift_table = run_tables("E9")
    skews = tdel_table.column("measured skew")
    tdels = tdel_table.column("tdel")
    assert skews == sorted(skews)
    # Roughly linear: skew/tdel stays within a factor of ~2 across the sweep.
    ratios = [s / t for s, t in zip(skews, tdels)]
    assert max(ratios) <= 2.5 * min(ratios)
    assert all(m <= b for m, b in zip(drift_table.column("measured skew"), drift_table.column("bound Dmax")))


def test_e10_all_guarantees_hold():
    (table,) = run_tables("E10")
    assert all(table.column("all guarantees hold"))


def test_e11_ablation_tables_have_expected_shape():
    alpha_table, monotonic_table = run_tables("E11")
    bounds = alpha_table.column("bound Dmax")
    assert bounds == sorted(bounds)  # larger alpha -> larger bound
    assert all(v == 0.0 for v in monotonic_table.column("max backward adj")[1::2])  # monotonic rows


def test_e12_baseline_comparison_shape():
    (table,) = run_tables("E12")
    rows = {row[0]: row for row in table.rows}
    assert rows["sync_to_max"][2] > 1.0
    assert rows["auth"][2] < 0.05
    assert rows["free_running"][5] == 0  # no messages


def test_run_all_quick_smoke():
    # Only check the registry machinery; individual experiments are covered above.
    from repro.experiments import run_all

    results = run_all(quick=True)
    assert set(results) == set(EXPERIMENTS)


# -- public API ----------------------------------------------------------------------------


def test_public_api_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export {name}"
    assert repro.__version__


def test_public_api_quickstart_flow():
    params = repro.params_for(n=5, authenticated=True, rho=1e-4, tdel=0.01, period=1.0)
    bounds = repro.theoretical_bounds(params, repro.AUTH)
    result = repro.run_scenario(repro.Scenario(params=params, algorithm="auth", attack="eager", rounds=4))
    assert result.precision <= bounds.precision
    assert result.guarantees_hold
