"""The hull-bounded window-rate pass is exact, online and offline.

Three layers of evidence:

* property-style: on randomized sample sets (and structured adversarial
  geometries) the hull sweep returns exactly what the quadratic pair scan
  returns -- same floats, not approximately;
* post-hoc: :func:`repro.analysis.envelope.rate_extremes` over randomized
  adjustment histories equals the pair scan over the same clock samples;
* streaming: the recorder's online window-rate extremes equal the full-trace
  pipeline's for randomized scenarios, and ``window_rates=False`` restores
  the nan-reporting constant-memory behaviour.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.envelope import (
    _clock_samples,
    _pairwise_window_extremes,
    rate_extremes,
    window_rate_extremes,
)
from repro.experiments.common import adversarial_scenario, benign_scenario, default_params
from repro.sim.clocks import FixedRateClock, drifting_clock
from repro.sim.trace import ProcessTrace
from repro.workloads.scenarios import run_scenario


def _random_samples(rng: random.Random, count: int) -> tuple[list[float], list[float]]:
    times: list[float] = []
    t = 0.0
    for _ in range(count):
        t += rng.random() * 2.0
        times.append(t)
        if rng.random() < 0.25:
            times.append(t)  # both sides of a jump share one instant
    values = [rng.uniform(-5.0, 5.0) for _ in times]
    return times, values


@pytest.mark.parametrize("seed", range(40))
def test_hull_pass_equals_pair_scan_on_random_samples(seed: int) -> None:
    rng = random.Random(seed)
    times, values = _random_samples(rng, rng.randint(2, 40))
    span = times[-1] - times[0]
    widths = sorted(set(round(b - a, 12) for a in times for b in times if b > a))
    min_windows = [span / 4.0, span / 2.0, 1e-9, span + 1.0]
    if widths:
        # Exercise the >= boundary with exact pair widths.
        min_windows.append(times[-1] - times[0])
        min_windows.append(widths[len(widths) // 2])
    for min_window in min_windows:
        expected = _pairwise_window_extremes(times, values, min_window)
        got = window_rate_extremes(times, values, min_window)
        assert got == expected, (min_window, times, values)


def test_hull_pass_on_structured_geometries() -> None:
    cases = [
        # Collinear samples (a fixed-rate clock between adjustments).
        ([0.0, 1.0, 2.0, 3.0], [0.0, 1.5, 3.0, 4.5], 1.0),
        # Sawtooth around a trend (periodic corrections).
        ([0.0, 1.0, 1.0, 2.0, 2.0, 3.0], [0.0, 1.2, 0.9, 2.1, 1.8, 3.0], 1.5),
        # The optimal left endpoint is *not* on the global lower hull (a
        # later, much lower point would pop it) -- only a per-right-endpoint
        # eligibility sweep finds this pair.
        ([0.0, 0.5, 1.5, 2.6, 3.6, 4.0], [0.0, 0.1, 1.2, -5.0, -4.9, -4.8], 1.0),
        # Duplicate instants with distinct values at the window boundary.
        ([0.0, 0.0, 2.0, 2.0], [1.0, -1.0, 0.5, 3.5], 2.0),
    ]
    for times, values, min_window in cases:
        expected = _pairwise_window_extremes(times, values, min_window)
        got = window_rate_extremes(times, values, min_window)
        assert got == expected, (times, values, min_window)


def test_no_eligible_pair_returns_none() -> None:
    assert window_rate_extremes([0.0, 1.0], [0.0, 1.0], 5.0) is None
    assert window_rate_extremes([], [], 1.0) is None
    assert window_rate_extremes([1.0], [2.0], 1e-9) is None


@pytest.mark.parametrize("seed", range(12))
def test_rate_extremes_equals_pair_scan_on_random_adjustment_histories(seed: int) -> None:
    rng = random.Random(1000 + seed)
    if seed % 2:
        clock = drifting_clock(5e-3, offset=rng.uniform(-0.1, 0.1), seed=seed, segment_length=0.7, horizon=25.0)
    else:
        clock = FixedRateClock(rate=1.0 + rng.uniform(-5e-3, 5e-3), offset=rng.uniform(-0.1, 0.1))
    ptrace = ProcessTrace(pid=0, clock=clock)
    t = 0.0
    for _ in range(rng.randint(0, 25)):
        t += rng.random()
        ptrace.record_adjustment(t, rng.uniform(-0.5, 0.5))
    t_end = t + rng.random() + 0.5
    for min_window in (t_end / 4.0, t_end / 2.0, 1e-9):
        samples = _clock_samples(ptrace, 0.0, t_end)
        expected = _pairwise_window_extremes(
            [s[0] for s in samples], [s[1] for s in samples], min_window
        )
        got = rate_extremes(ptrace, 0.0, t_end, min_window)
        if expected is None:
            # Fallback: degenerate to the long-run rate.
            assert got.slowest == got.fastest
        else:
            assert (got.slowest, got.fastest) == expected


@pytest.mark.parametrize("seed", range(6))
def test_streamed_window_rates_equal_full_pipeline_on_random_scenarios(seed: int) -> None:
    rng = random.Random(7000 + seed)
    if seed % 2:
        scenario = benign_scenario(
            default_params(rng.choice([4, 5, 7]), authenticated=True),
            "auth",
            rounds=rng.randint(4, 7),
            seed=rng.randint(0, 10_000),
        )
    else:
        scenario = adversarial_scenario(
            default_params(rng.choice([5, 7]), authenticated=True),
            "auth",
            attack=rng.choice(["eager", "skew_max", "two_faced"]),
            rounds=rng.randint(4, 7),
            seed=rng.randint(0, 10_000),
        )
    full = run_scenario(scenario, trace_level="full")
    fast = run_scenario(scenario, trace_level="metrics")
    assert (full.accuracy is None) == (fast.accuracy is None)
    if full.accuracy is not None:
        assert fast.accuracy.slowest_window_rate == full.accuracy.slowest_window_rate
        assert fast.accuracy.fastest_window_rate == full.accuracy.fastest_window_rate


def test_window_rates_opt_out_reports_nan_and_retains_nothing() -> None:
    from repro.sim.recorder import OnlineMetricsRecorder
    from repro.sim.trace import ResyncEvent

    def run(rounds: int, window_rates: bool) -> "OnlineMetricsRecorder":
        recorder = OnlineMetricsRecorder(rate_low=0.999, rate_high=1.001, window_rates=window_rates)
        for pid in range(3):
            recorder.register_process(pid, FixedRateClock(rate=1.0, offset=0.01 * pid))
        t = 0.0
        for round_ in range(1, rounds + 1):
            t += 1.0
            for pid in range(3):
                recorder.on_adjustment(pid, t, 0.001 * round_)
                recorder.on_resync(
                    ResyncEvent(pid=pid, round=round_, time=t, logical_before=t, logical_after=t + 0.001)
                )
        return recorder

    class _Stats:
        total_messages = 0
        messages_by_type: dict = {}

    lite_short = run(4, window_rates=False)
    summary_short = lite_short.finalize(5.0, _Stats())
    assert lite_short.retained_window_samples() == 0
    assert summary_short.slowest_window_rate is None
    assert summary_short.fastest_window_rate is None

    lite_long = run(16, window_rates=False)
    lite_long.finalize(17.0, _Stats())
    assert lite_long.retained_window_samples() == 0
    assert lite_long.retained_state_size() == lite_short.retained_state_size()

    tracked = run(4, window_rates=True)
    summary = tracked.finalize(5.0, _Stats())
    assert tracked.retained_window_samples() > 0
    assert summary.slowest_window_rate is not None
    assert not math.isnan(summary.slowest_window_rate)


@pytest.mark.parametrize("min_window", [0.0, -1.0])
def test_hull_pass_handles_nonpositive_min_window(min_window: float) -> None:
    # The pair scan always skipped zero-width pairs; the hull sweep must too
    # (a min_window <= 0 would otherwise admit the right endpoint itself).
    times = [0.0, 0.0, 1.0, 1.0, 2.0]
    values = [0.0, 1.0, 0.5, 2.0, 1.0]
    expected = _pairwise_window_extremes(times, values, min_window)
    assert window_rate_extremes(times, values, min_window) == expected
    rng = random.Random(99)
    rts, rvs = _random_samples(rng, 25)
    assert window_rate_extremes(rts, rvs, min_window) == _pairwise_window_extremes(rts, rvs, min_window)
