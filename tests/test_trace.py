"""Unit tests for execution traces."""

from __future__ import annotations

import pytest

from repro.sim.clocks import FixedRateClock, PiecewiseLinearClock
from repro.sim.trace import ProcessTrace, ResyncEvent, Trace


def make_ptrace(rate=1.0, offset=0.0, pid=0) -> ProcessTrace:
    return ProcessTrace(pid=pid, clock=FixedRateClock(rate=rate, offset=offset))


def test_logical_equals_hardware_before_any_adjustment():
    ptrace = make_ptrace(rate=1.5, offset=2.0)
    assert ptrace.logical_at(4.0) == pytest.approx(8.0)
    assert ptrace.adjustment_at(4.0) == 0.0


def test_adjustment_changes_logical_value():
    ptrace = make_ptrace()
    ptrace.record_adjustment(1.0, 0.5)
    assert ptrace.logical_at(0.5) == pytest.approx(0.5)
    assert ptrace.logical_at(1.0) == pytest.approx(1.5)
    assert ptrace.logical_at(2.0) == pytest.approx(2.5)


def test_adjustment_before_returns_left_limit():
    ptrace = make_ptrace()
    ptrace.record_adjustment(1.0, 0.5)
    ptrace.record_adjustment(2.0, -0.25)
    assert ptrace.adjustment_before(1.0) == 0.0
    assert ptrace.adjustment_at(1.0) == 0.5
    assert ptrace.adjustment_before(2.0) == 0.5
    assert ptrace.adjustment_at(2.0) == -0.25
    assert ptrace.logical_before(2.0) == pytest.approx(2.5)
    assert ptrace.logical_at(2.0) == pytest.approx(1.75)


def test_adjustments_must_be_in_time_order():
    ptrace = make_ptrace()
    ptrace.record_adjustment(2.0, 0.1)
    with pytest.raises(ValueError):
        ptrace.record_adjustment(1.0, 0.2)


def test_breakpoints_include_clock_and_adjustments():
    clock = PiecewiseLinearClock([(0.0, 1.0), (5.0, 1.1)])
    ptrace = ProcessTrace(pid=0, clock=clock)
    ptrace.record_adjustment(2.0, 0.3)
    assert sorted(ptrace.breakpoints()) == [2.0, 5.0]


def test_resync_event_adjustment_property():
    event = ResyncEvent(pid=0, round=3, time=1.0, logical_before=2.9, logical_after=3.01)
    assert event.adjustment == pytest.approx(0.11)


def test_rounds_accepted_and_times():
    ptrace = make_ptrace()
    ptrace.resyncs.append(ResyncEvent(pid=0, round=1, time=1.0, logical_before=1.0, logical_after=1.01))
    ptrace.resyncs.append(ResyncEvent(pid=0, round=2, time=2.0, logical_before=2.0, logical_after=2.01))
    assert ptrace.rounds_accepted() == [1, 2]
    assert ptrace.resync_times() == [1.0, 2.0]


def test_trace_add_process_rejects_duplicates():
    trace = Trace()
    trace.add_process(0, FixedRateClock())
    with pytest.raises(ValueError):
        trace.add_process(0, FixedRateClock())


def test_trace_honest_and_faulty_partition():
    trace = Trace()
    trace.add_process(0, FixedRateClock())
    trace.add_process(1, FixedRateClock(), faulty=True)
    trace.add_process(2, FixedRateClock())
    assert trace.honest_pids() == [0, 2]
    assert trace.faulty_pids() == [1]
    assert [p.pid for p in trace.honest()] == [0, 2]


def test_trace_resync_events_sorted_and_filtered():
    trace = Trace()
    trace.add_process(0, FixedRateClock())
    trace.add_process(1, FixedRateClock(), faulty=True)
    trace.record_resync(ResyncEvent(pid=0, round=2, time=2.0, logical_before=2.0, logical_after=2.0))
    trace.record_resync(ResyncEvent(pid=1, round=1, time=0.5, logical_before=1.0, logical_after=1.0))
    trace.record_resync(ResyncEvent(pid=0, round=1, time=1.0, logical_before=1.0, logical_after=1.0))
    honest_events = trace.resync_events()
    assert [(e.pid, e.round) for e in honest_events] == [(0, 1), (0, 2)]
    all_events = trace.resync_events(honest_only=False)
    assert [(e.pid, e.round) for e in all_events] == [(1, 1), (0, 1), (0, 2)]


def test_trace_round_progress_queries():
    trace = Trace()
    trace.add_process(0, FixedRateClock())
    trace.add_process(1, FixedRateClock())
    trace.record_resync(ResyncEvent(pid=0, round=1, time=1.0, logical_before=1, logical_after=1))
    trace.record_resync(ResyncEvent(pid=0, round=2, time=2.0, logical_before=2, logical_after=2))
    trace.record_resync(ResyncEvent(pid=1, round=1, time=1.1, logical_before=1, logical_after=1))
    assert trace.max_round() == 2
    assert trace.min_completed_round() == 1


def test_trace_round_progress_with_no_resyncs():
    trace = Trace()
    trace.add_process(0, FixedRateClock())
    assert trace.max_round() == 0
    assert trace.min_completed_round() == 0


def test_all_breakpoints_limited_to_end_time():
    trace = Trace()
    trace.add_process(0, PiecewiseLinearClock([(0.0, 1.0), (4.0, 1.1), (20.0, 0.9)]))
    trace.end_time = 10.0
    points = trace.all_breakpoints()
    assert 4.0 in points
    assert 20.0 not in points
    assert 0.0 in points and 10.0 in points


def test_record_crash_and_notes():
    trace = Trace()
    trace.add_process(0, FixedRateClock())
    trace.record_crash(0, 3.5)
    trace.note("something happened")
    assert trace.processes[0].crashed_at == 3.5
    assert trace.notes == ["something happened"]
