"""Recorder parity: the streaming metrics path equals the full-trace path.

For a seed x scenario grid -- covering both Srikanth-Toueg variants, the
baselines, benign and Byzantine adversaries (including crash faults),
start-up, late joiners and the monotonic ablation -- every scalar metric
reported by ``trace_level="metrics"`` must be float-for-float identical to
the value computed from the full trace via :mod:`repro.analysis.metrics` /
:mod:`repro.analysis.envelope`.  Exact equality (``==``, no tolerance) is
the contract: the online recorder evaluates the very same breakpoints the
post-hoc analysis walks, so it is not an approximation.
"""

from __future__ import annotations


import pytest

from repro.experiments.common import adversarial_scenario, benign_scenario, default_params
from repro.workloads.scenarios import Scenario, run_scenario

ACCURACY_EXACT_FIELDS = (
    "slowest_long_run_rate",
    "fastest_long_run_rate",
    "slowest_window_rate",
    "fastest_window_rate",
    "envelope_a",
    "envelope_b",
    "worst_offset_from_real_time",
)


def _grid() -> list[Scenario]:
    scenarios: list[Scenario] = []
    for seed in (0, 11):
        scenarios.append(
            adversarial_scenario(default_params(7, authenticated=True), "auth", attack="eager", rounds=6, seed=seed)
        )
        scenarios.append(
            adversarial_scenario(
                default_params(7, authenticated=False), "echo", attack="skew_max", rounds=6, seed=seed
            )
        )
    scenarios.append(
        adversarial_scenario(default_params(7, authenticated=True), "auth", attack="crash", rounds=6, seed=3)
    )
    scenarios.append(
        adversarial_scenario(default_params(7, authenticated=False), "echo", attack="crash", rounds=6, seed=4)
    )
    # Benign scenarios use "random" (drifting piecewise-linear) clocks, which
    # exercise the breakpoint walk hardest.
    scenarios.append(benign_scenario(default_params(5, authenticated=True), "auth", rounds=5, seed=5))
    scenarios.append(benign_scenario(default_params(7, authenticated=False), "echo", rounds=5, seed=6))
    # Out-of-spec fault load (no guarantee checking by default).
    scenarios.append(
        adversarial_scenario(
            default_params(5, authenticated=True, f=1), "auth", attack="eager", rounds=5, seed=7, actual_faults=2
        )
    )
    # Start-up from scratch and a late joiner.
    scenarios.append(
        Scenario(
            params=default_params(5, authenticated=True),
            algorithm="auth",
            attack="silent",
            rounds=5,
            use_startup=True,
            boot_spread=0.004,
            clock_mode="extreme",
            delay_mode="uniform",
            seed=8,
        )
    )
    scenarios.append(
        Scenario(
            params=default_params(5, authenticated=True),
            algorithm="auth",
            attack="silent",
            rounds=6,
            joiner_count=1,
            join_time=2.5,
            clock_mode="extreme",
            delay_mode="uniform",
            seed=9,
        )
    )
    # Monotonic ablation (suppressed backward corrections).
    scenarios.append(
        adversarial_scenario(
            default_params(7, authenticated=True), "auth", attack="skew_max", rounds=5, seed=10, monotonic=True
        )
    )
    # Baselines: averaging, naive follow-the-max, and free-running pulses.
    scenarios.append(benign_scenario(default_params(5, authenticated=False), "lundelius_welch", rounds=4, seed=12))
    scenarios.append(
        benign_scenario(default_params(5, authenticated=False), "lamport_melliar_smith", rounds=4, seed=13)
    )
    scenarios.append(benign_scenario(default_params(5, authenticated=False), "sync_to_max", rounds=4, seed=14))
    scenarios.append(benign_scenario(default_params(5, authenticated=False), "free_running", rounds=4, seed=15))
    return scenarios


@pytest.mark.parametrize("scenario", _grid(), ids=lambda s: f"{s.name}-seed{s.seed}")
def test_streamed_metrics_equal_full_trace(scenario: Scenario) -> None:
    full = run_scenario(scenario, trace_level="full")
    fast = run_scenario(scenario, trace_level="metrics")

    assert full.trace is not None and full.trace_level == "full"
    assert fast.trace is None and fast.trace_level == "metrics"

    # Precision (steady-state and overall worst-case skew): exact.
    assert fast.precision == full.precision
    assert fast.precision_overall == full.precision_overall

    # Resynchronization structure: exact.
    assert fast.period_stats == full.period_stats
    assert fast.acceptance_spread == full.acceptance_spread

    # Rounds and message complexity: exact.
    assert fast.completed_round == full.completed_round
    assert fast.total_messages == full.total_messages
    assert fast.messages_per_round == full.messages_per_round

    # Accuracy: same presence; exact on every quantity, including the
    # window-rate extremes (the streaming recorder runs the same hull pass
    # over the same retained breakpoint samples the post-hoc analysis walks).
    assert (fast.accuracy is None) == (full.accuracy is None)
    if full.accuracy is not None:
        for field in ACCURACY_EXACT_FIELDS:
            assert getattr(fast.accuracy, field) == getattr(full.accuracy, field), field

    # Guarantee verdicts: same checks, same measured values, same bounds.
    assert (fast.guarantees is None) == (full.guarantees is None)
    if full.guarantees is not None:
        full_checks = [(c.name, c.measured, c.bound, c.holds, c.direction) for c in full.guarantees.checks]
        fast_checks = [(c.name, c.measured, c.bound, c.holds, c.direction) for c in fast.guarantees.checks]
        assert fast_checks == full_checks
        assert fast.guarantees_hold == full.guarantees_hold
