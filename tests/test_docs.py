"""The docs tree stays true: experiments index matches the registry, docs are
linked from the README, and the public API surface carries docstrings.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

import repro
from repro.experiments import EXPERIMENTS

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


# -- docs/experiments.md is the registry, spelled out ------------------------------------


def test_docs_tree_exists():
    for name in ("architecture.md", "kernel.md", "invariance.md", "experiments.md", "observability.md"):
        assert (DOCS / name).is_file(), f"docs/{name} is missing"


def test_experiments_index_matches_registry():
    """Every registered experiment has a heading carrying its claim verbatim."""
    text = (DOCS / "experiments.md").read_text()
    for exp_id, experiment in EXPERIMENTS.items():
        heading = f"## {exp_id} — {experiment.claim}"
        assert heading in text, (
            f"docs/experiments.md lacks the heading for {exp_id} "
            f"(expected {heading!r}; the registry claim changed?)"
        )


def test_experiments_index_has_no_stale_entries():
    """No heading for an experiment the registry no longer knows."""
    text = (DOCS / "experiments.md").read_text()
    documented = set(re.findall(r"^## (E\d+) ", text, flags=re.MULTILINE))
    assert documented == set(EXPERIMENTS), (
        f"stale or missing entries: documented={sorted(documented)} "
        f"registry={sorted(EXPERIMENTS)}"
    )


def test_readme_links_every_doc():
    readme = (REPO / "README.md").read_text()
    for name in ("architecture.md", "kernel.md", "invariance.md", "experiments.md", "observability.md"):
        assert f"docs/{name}" in readme, f"README does not link docs/{name}"


# -- docstring presence on the public API ------------------------------------------------

#: Classes whose public methods form the extension surface; their methods need
#: docstrings too, not just the class itself.
_DEEP_SURFACE = [
    "Scenario",
    "ScenarioResult",
    "SweepRunner",
    "Executor",
    "OnlineMetricsSummary",
]


def _public_exports():
    for name in repro.__all__:
        if name == "__version__":
            continue
        yield name, getattr(repro, name)


def test_every_public_export_has_a_docstring():
    missing = [
        name
        for name, obj in _public_exports()
        if callable(obj) and not (inspect.getdoc(obj) or "").strip()
    ]
    assert not missing, f"public exports without docstrings: {missing}"


@pytest.mark.parametrize("name", _DEEP_SURFACE)
def test_extension_surface_methods_have_docstrings(name):
    cls = getattr(repro, name)
    undocumented = []
    for attr, member in vars(cls).items():
        if attr.startswith("_") or not callable(member):
            continue
        if not (inspect.getdoc(member) or "").strip():
            undocumented.append(f"{name}.{attr}")
    assert not undocumented, f"undocumented public methods: {undocumented}"


def test_public_modules_have_docstrings():
    import repro.sim.kernel
    import repro.sim.recorder
    import repro.sim.vectorized
    import repro.runner.core
    import repro.workloads.scenarios

    for mod in (
        repro,
        repro.sim.kernel,
        repro.sim.vectorized,
        repro.sim.recorder,
        repro.runner.core,
        repro.workloads.scenarios,
    ):
        assert (mod.__doc__ or "").strip(), f"{mod.__name__} lacks a module docstring"
