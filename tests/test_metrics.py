"""Unit tests for the exact metrics on hand-built traces."""

from __future__ import annotations

import pytest

from repro.analysis import metrics
from repro.sim.clocks import FixedRateClock
from repro.sim.trace import ResyncEvent, Trace


def build_trace(specs, end_time=10.0):
    """Build a trace from {pid: (rate, offset, [(t, adjustment)], faulty)} specs."""
    trace = Trace()
    for pid, (rate, offset, adjustments, faulty) in specs.items():
        trace.add_process(pid, FixedRateClock(rate=rate, offset=offset), faulty=faulty)
        for t, adj in adjustments:
            trace.record_adjustment(pid, t, adj)
    trace.end_time = end_time
    return trace


def test_skew_at_is_max_minus_min():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.0, 0.3, [], False), 2: (1.0, 0.1, [], False)})
    assert metrics.skew_at(trace, 5.0) == pytest.approx(0.3)


def test_skew_excludes_faulty_processes():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.0, 5.0, [], True)})
    assert metrics.skew_at(trace, 1.0) == 0.0
    assert metrics.max_skew(trace) == 0.0


def test_max_skew_of_diverging_clocks_is_at_end():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.1, 0.0, [], False)}, end_time=10.0)
    assert metrics.max_skew(trace) == pytest.approx(1.0)


def test_max_skew_catches_peak_before_adjustment():
    # Clock 1 drifts ahead then is pulled back at t=5; the pre-adjustment peak
    # at t=5 (left limit) must be caught exactly.
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.2, 0.0, [(5.0, -1.0)], False)}, end_time=6.0)
    assert metrics.max_skew(trace) == pytest.approx(1.0)
    assert metrics.max_skew(trace, t_start=5.0) == pytest.approx(0.2)


def test_max_skew_respects_window():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.1, 0.0, [], False)}, end_time=10.0)
    assert metrics.max_skew(trace, t_start=0.0, t_end=2.0) == pytest.approx(0.2)


def test_skew_timeseries_lengths_and_values():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.0, 0.5, [], False)}, end_time=10.0)
    series = metrics.skew_timeseries(trace, samples=5)
    assert len(series) == 5
    assert series[0][0] == 0.0 and series[-1][0] == 10.0
    assert all(v == pytest.approx(0.5) for _, v in series)


def test_steady_state_start_requires_all_resyncs():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.0, 0.0, [], False)})
    trace.record_resync(ResyncEvent(pid=0, round=1, time=1.0, logical_before=1, logical_after=1))
    # Process 1 never resynced: steady state never starts.
    assert metrics.steady_state_start(trace) == trace.end_time
    trace.record_resync(ResyncEvent(pid=1, round=1, time=1.4, logical_before=1, logical_after=1))
    assert metrics.steady_state_start(trace) == pytest.approx(1.4)


def test_resync_intervals_and_period_stats():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.0, 0.0, [], False)})
    for pid, times in {0: [1.0, 2.0, 3.1], 1: [1.05, 2.0, 2.9]}.items():
        for k, t in enumerate(times, start=1):
            trace.record_resync(ResyncEvent(pid=pid, round=k, time=t, logical_before=0, logical_after=0))
    assert metrics.resync_intervals(trace, 0) == pytest.approx([1.0, 1.1])
    stats = metrics.period_stats(trace, skip_first=0)
    assert stats.minimum == pytest.approx(0.9)
    assert stats.maximum == pytest.approx(1.1)
    assert stats.count == 4
    stats_skip = metrics.period_stats(trace, skip_first=1)
    assert stats_skip.count == 2


def test_period_stats_empty():
    trace = build_trace({0: (1.0, 0.0, [], False)})
    stats = metrics.period_stats(trace)
    assert stats.count == 0
    assert stats.maximum == 0.0


def test_acceptance_spread_by_round():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.0, 0.0, [], False)})
    trace.record_resync(ResyncEvent(pid=0, round=1, time=1.0, logical_before=0, logical_after=0))
    trace.record_resync(ResyncEvent(pid=1, round=1, time=1.007, logical_before=0, logical_after=0))
    trace.record_resync(ResyncEvent(pid=0, round=2, time=2.0, logical_before=0, logical_after=0))
    spreads = metrics.acceptance_spread_by_round(trace)
    assert spreads == {1: pytest.approx(0.007)}
    assert metrics.max_acceptance_spread(trace) == pytest.approx(0.007)


def test_liveness_checks_contiguous_rounds():
    trace = build_trace({0: (1.0, 0.0, [], False), 1: (1.0, 0.0, [], False)})
    for pid in (0, 1):
        for k in (1, 2, 3):
            trace.record_resync(ResyncEvent(pid=pid, round=k, time=float(k), logical_before=0, logical_after=0))
    assert metrics.liveness(trace, 3)
    assert not metrics.liveness(trace, 4)


def test_liveness_accepts_late_joiner_starting_round():
    trace = build_trace({0: (1.0, 0.0, [], False)})
    for k in (3, 4, 5):
        trace.record_resync(ResyncEvent(pid=0, round=k, time=float(k), logical_before=0, logical_after=0))
    assert metrics.liveness(trace, 5)


def test_liveness_false_without_any_resync():
    trace = build_trace({0: (1.0, 0.0, [], False)})
    assert not metrics.liveness(trace, 1)


def test_adjustment_magnitudes_and_backward():
    trace = build_trace({0: (1.0, 0.0, [], False)})
    trace.record_resync(ResyncEvent(pid=0, round=1, time=1.0, logical_before=1.0, logical_after=1.1))
    trace.record_resync(ResyncEvent(pid=0, round=2, time=2.0, logical_before=2.2, logical_after=2.1))
    trace.record_resync(ResyncEvent(pid=0, round=3, time=3.0, logical_before=3.0, logical_after=3.05))
    sizes = metrics.adjustment_magnitudes(trace, skip_first=0)
    assert sizes == pytest.approx([0.1, 0.1, 0.05])
    assert metrics.max_backward_adjustment(trace, skip_first=0) == pytest.approx(0.1)
    assert metrics.max_backward_adjustment(trace, skip_first=2) == 0.0


def test_round_completion_time_and_skew_after_round():
    trace = build_trace({0: (1.0, 0.0, [(1.0, 0.5)], False), 1: (1.0, 0.4, [(1.2, 0.1)], False)}, end_time=3.0)
    trace.record_resync(ResyncEvent(pid=0, round=1, time=1.0, logical_before=1.0, logical_after=1.5))
    trace.record_resync(ResyncEvent(pid=1, round=1, time=1.2, logical_before=1.6, logical_after=1.7))
    assert metrics.round_completion_time(trace, 1) == pytest.approx(1.2)
    assert metrics.round_completion_time(trace, 2) is None
    assert metrics.skew_after_round(trace, 2) is None
    # After t=1.2: C0(t) = t + 0.5, C1(t) = t + 0.5 -> skew 0.
    assert metrics.skew_after_round(trace, 1) == pytest.approx(0.0)


def test_message_totals_and_per_round():
    trace = build_trace({0: (1.0, 0.0, [], False)})
    trace.total_messages = 60
    trace.message_stats = {"SignedRound": 40, "SignatureBundle": 20}
    totals = metrics.message_totals(trace)
    assert totals["total"] == 60
    assert totals["SignedRound"] == 40
    # No completed rounds: falls back to the raw total.
    assert metrics.messages_per_completed_round(trace) == 60
    for k in (1, 2, 3):
        trace.record_resync(ResyncEvent(pid=0, round=k, time=float(k), logical_before=0, logical_after=0))
    assert metrics.messages_per_completed_round(trace) == pytest.approx(20.0)
