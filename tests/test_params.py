"""Unit tests for model/algorithm parameters."""

from __future__ import annotations

import pytest

from repro.core.params import SyncParams, default_alpha, params_for


def test_default_alpha_formula():
    assert default_alpha(0.01, 0.5) == pytest.approx(1.01 * 0.5)


def test_alpha_value_uses_default_when_unset(small_params):
    assert small_params.alpha is None
    assert small_params.alpha_value == pytest.approx((1 + small_params.rho) * small_params.tdel)


def test_alpha_value_uses_explicit_value():
    params = SyncParams(n=5, f=2, alpha=0.25)
    assert params.alpha_value == 0.25


def test_rate_properties():
    params = SyncParams(n=4, f=1, rho=0.01)
    assert params.max_rate == pytest.approx(1.01)
    assert params.min_rate == pytest.approx(1 / 1.01)


def test_delay_uncertainty_and_honest_count():
    params = SyncParams(n=9, f=4, tmin=0.002, tdel=0.01)
    assert params.delay_uncertainty == pytest.approx(0.008)
    assert params.honest_count == 5


@pytest.mark.parametrize(
    "n,auth_f,echo_f",
    [(3, 1, 0), (4, 1, 1), (5, 2, 1), (6, 2, 1), (7, 3, 2), (9, 4, 2), (10, 4, 3), (16, 7, 5)],
)
def test_max_fault_formulas(n, auth_f, echo_f):
    params = SyncParams(n=n, f=0)
    assert params.max_faults_authenticated() == auth_f
    assert params.max_faults_unauthenticated() == echo_f


def test_resilience_predicates():
    assert SyncParams(n=7, f=3).authenticated_resilient()
    assert not SyncParams(n=6, f=3).authenticated_resilient()
    assert SyncParams(n=7, f=2).unauthenticated_resilient()
    assert not SyncParams(n=6, f=2).unauthenticated_resilient()


def test_validation_errors():
    with pytest.raises(ValueError):
        SyncParams(n=0, f=0)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=3)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=-1)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=1, rho=-1e-3)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=1, tdel=0.0)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=1, tmin=0.02, tdel=0.01)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=1, period=0.0)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=1, alpha=-0.1)
    with pytest.raises(ValueError):
        SyncParams(n=3, f=1, initial_offset_spread=-0.1)


def test_with_creates_modified_copy(small_params):
    changed = small_params.with_(period=2.0)
    assert changed.period == 2.0
    assert small_params.period == 1.0
    assert changed.n == small_params.n


def test_round_logical_time(small_params):
    assert small_params.round_logical_time(3) == pytest.approx(3.0)


def test_describe_mentions_key_fields(small_params):
    text = small_params.describe()
    assert "n=5" in text and "f=2" in text and "P=1" in text


def test_params_for_defaults_to_max_faults():
    assert params_for(7, authenticated=True).f == 3
    assert params_for(7, authenticated=False).f == 2
    assert params_for(1, authenticated=True).f == 0


def test_params_for_explicit_f_and_fields():
    params = params_for(9, f=2, rho=1e-3, tdel=0.02, tmin=0.001, period=3.0, alpha=0.05)
    assert params.f == 2
    assert params.rho == 1e-3
    assert params.tdel == 0.02
    assert params.tmin == 0.001
    assert params.period == 3.0
    assert params.alpha_value == 0.05
