"""Unit tests for the simulation engine and the process framework."""

from __future__ import annotations

import pytest

from repro.sim.clocks import FixedRateClock
from repro.sim.engine import Simulation
from repro.sim.network import FixedDelay
from repro.sim.process import Process


class Recorder(Process):
    """Process that records everything that happens to it."""

    def __init__(self, pid):
        super().__init__(pid)
        self.events = []

    def on_start(self):
        self.events.append(("start", self.real_time, self.local_time()))

    def on_message(self, sender, payload):
        self.events.append(("msg", self.real_time, sender, payload))

    def on_timer(self, key):
        self.events.append(("timer", self.real_time, self.local_time(), key))


def make_sim(delay=0.005, tdel=0.01):
    return Simulation(tmin=0.0, tdel=tdel, delay_policy=FixedDelay(delay), seed=0)


# -- engine -----------------------------------------------------------------------


def test_schedule_at_executes_in_order():
    sim = make_sim()
    order = []
    sim.schedule_at(2.0, lambda: order.append("b"))
    sim.schedule_at(1.0, lambda: order.append("a"))
    sim.run_until(3.0)
    assert order == ["a", "b"]
    assert sim.now == 3.0


def test_schedule_after_uses_current_time():
    sim = make_sim()
    times = []
    sim.schedule_at(1.0, lambda: sim.schedule_after(0.5, lambda: times.append(sim.now)))
    sim.run_until(2.0)
    assert times == [pytest.approx(1.5)]


def test_schedule_after_rejects_negative_delay():
    sim = make_sim()
    with pytest.raises(ValueError):
        sim.schedule_after(-1.0, lambda: None)


def test_schedule_in_past_is_clamped_to_now():
    sim = make_sim()
    fired = []
    sim.schedule_at(1.0, lambda: sim.schedule_at(0.5, lambda: fired.append(sim.now)))
    sim.run_until(2.0)
    assert fired == [pytest.approx(1.0)]


def test_run_until_cannot_go_backwards():
    sim = make_sim()
    sim.run_until(1.0)
    with pytest.raises(ValueError):
        sim.run_until(0.5)


def test_cancel_scheduled_event():
    sim = make_sim()
    fired = []
    event = sim.schedule_at(1.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run_until(2.0)
    assert fired == []


def test_step_returns_false_on_empty_queue():
    sim = make_sim()
    assert sim.step() is False


def test_duplicate_process_id_rejected():
    sim = make_sim()
    sim.add_process(Recorder(0), FixedRateClock())
    with pytest.raises(ValueError):
        sim.add_process(Recorder(0), FixedRateClock())


def test_boot_time_delays_on_start():
    sim = make_sim()
    proc = Recorder(1)
    sim.add_process(proc, FixedRateClock(offset=2.0), boot_time=0.5)
    sim.run_until(1.0)
    assert proc.events[0] == ("start", pytest.approx(0.5), pytest.approx(2.5))


def test_honest_and_faulty_process_lists():
    sim = make_sim()
    honest = Recorder(0)
    faulty = Recorder(1)
    sim.add_process(honest, FixedRateClock())
    sim.add_process(faulty, FixedRateClock(), faulty=True)
    assert sim.honest_processes() == [honest]
    assert sim.faulty_processes() == [faulty]
    assert sim.trace.honest_pids() == [0]
    assert sim.trace.faulty_pids() == [1]


def test_run_until_round_stops_early():
    sim = make_sim()

    class Resyncer(Process):
        def on_start(self):
            self.set_timer_local(1.0, key="go")

        def on_timer(self, key):
            from repro.sim.trace import ResyncEvent

            # Progress must be reported through the recorder seam (as real
            # algorithms do via record_resync): the engine's round tracking
            # observes recorder emissions, not direct trace mutation.
            self.record_resync(
                ResyncEvent(pid=self.pid, round=1, time=self.sim.now, logical_before=1.0, logical_after=1.0)
            )

    sim.add_process(Resyncer(0), FixedRateClock())
    trace = sim.run_until_round(1, t_max=100.0)
    assert sim.stopped_early
    assert trace.end_time == pytest.approx(1.0)


def test_trace_records_end_time_and_messages():
    sim = make_sim()
    a, b = Recorder(0), Recorder(1)
    sim.add_process(a, FixedRateClock())
    sim.add_process(b, FixedRateClock())
    sim.schedule_at(0.1, lambda: a.send(1, "hi"))
    trace = sim.run_until(1.0)
    assert trace.end_time == 1.0
    assert trace.total_messages == 1
    assert trace.message_stats == {"str": 1}


# -- process framework ----------------------------------------------------------------


def test_local_timer_fires_at_local_target():
    sim = make_sim()
    proc = Recorder(0)
    sim.add_process(proc, FixedRateClock(rate=2.0, offset=1.0))
    sim.schedule_at(0.0, lambda: proc.set_timer_local(3.0, key="t"))
    sim.run_until(5.0)
    timer_events = [e for e in proc.events if e[0] == "timer"]
    assert len(timer_events) == 1
    # local 3.0 with H(t) = 1 + 2t is reached at t = 1.0
    assert timer_events[0][1] == pytest.approx(1.0)
    assert timer_events[0][2] == pytest.approx(3.0)
    assert timer_events[0][3] == "t"


def test_timer_in_the_past_fires_immediately():
    sim = make_sim()
    proc = Recorder(0)
    sim.add_process(proc, FixedRateClock(offset=10.0))
    sim.schedule_at(0.5, lambda: proc.set_timer_local(3.0, key="late"))
    sim.run_until(1.0)
    timer_events = [e for e in proc.events if e[0] == "timer"]
    assert timer_events[0][1] == pytest.approx(0.5)


def test_cancelled_timer_does_not_fire():
    sim = make_sim()
    proc = Recorder(0)
    sim.add_process(proc, FixedRateClock())

    def arm_and_cancel():
        timer = proc.set_timer_local(1.0, key="x")
        proc.cancel_timer(timer)

    sim.schedule_at(0.0, arm_and_cancel)
    sim.run_until(2.0)
    assert [e for e in proc.events if e[0] == "timer"] == []


def test_send_and_receive_between_processes():
    sim = make_sim(delay=0.004)
    a, b = Recorder(0), Recorder(1)
    sim.add_process(a, FixedRateClock())
    sim.add_process(b, FixedRateClock())
    sim.schedule_at(0.1, lambda: a.send(1, {"k": 1}))
    sim.run_until(1.0)
    msgs = [e for e in b.events if e[0] == "msg"]
    assert msgs == [("msg", pytest.approx(0.104), 0, {"k": 1})]


def test_broadcast_reaches_all_other_processes():
    sim = make_sim()
    procs = [Recorder(i) for i in range(4)]
    for p in procs:
        sim.add_process(p, FixedRateClock())
    sim.schedule_at(0.0, lambda: procs[0].broadcast("hello"))
    sim.run_until(1.0)
    assert [e for e in procs[0].events if e[0] == "msg"] == []
    for p in procs[1:]:
        assert len([e for e in p.events if e[0] == "msg"]) == 1


def test_halt_stops_timers_and_messages():
    sim = make_sim()
    a, b = Recorder(0), Recorder(1)
    sim.add_process(a, FixedRateClock())
    sim.add_process(b, FixedRateClock())
    sim.schedule_at(0.0, lambda: b.set_timer_local(0.5, key="x"))
    sim.schedule_at(0.1, b.halt)
    sim.schedule_at(0.2, lambda: a.send(1, "ignored"))
    sim.schedule_at(0.3, lambda: b.send(0, "not sent"))
    sim.run_until(1.0)
    assert [e for e in b.events if e[0] in ("timer", "msg")] == []
    assert [e for e in a.events if e[0] == "msg"] == []
    assert b.trace.crashed_at == pytest.approx(0.1)


def test_messages_before_start_are_dropped():
    sim = make_sim(delay=0.001)
    a = Recorder(0)
    late = Recorder(1)
    sim.add_process(a, FixedRateClock())
    sim.add_process(late, FixedRateClock(), boot_time=0.5)
    sim.schedule_at(0.0, lambda: a.send(1, "too early"))
    sim.schedule_at(0.6, lambda: a.send(1, "after boot"))
    sim.run_until(1.0)
    msgs = [e[3] for e in late.events if e[0] == "msg"]
    assert msgs == ["after boot"]


def test_peers_and_other_peers():
    sim = make_sim()
    procs = [Recorder(i) for i in range(3)]
    for p in procs:
        sim.add_process(p, FixedRateClock())
    assert procs[0].peers() == [0, 1, 2]
    assert procs[0].other_peers() == [1, 2]


def test_unbound_process_raises():
    proc = Recorder(9)
    with pytest.raises(RuntimeError):
        _ = proc.sim
    with pytest.raises(RuntimeError):
        _ = proc.clock
    with pytest.raises(RuntimeError):
        _ = proc.network
    with pytest.raises(RuntimeError):
        _ = proc.trace


# -- past-time scheduling is never silent -----------------------------------------


def test_schedule_at_past_time_is_clamped_and_noted():
    sim = make_sim()
    fired = []
    sim.schedule_at(1.0, lambda: sim.schedule_at(0.25, lambda: fired.append(sim.now)))
    sim.run_until(2.0)
    # The action still runs (clamped to the scheduling instant)...
    assert fired == [1.0]
    # ...but the clamp is on the record, not swallowed.
    assert any("schedule_at" in note and "clamped" in note for note in sim.trace.notes)


def test_schedule_at_past_time_raises_under_strict_scheduling():
    sim = Simulation(tmin=0.0, tdel=0.01, delay_policy=FixedDelay(0.005), seed=0, strict_scheduling=True)
    sim.schedule_at(1.0, lambda: sim.schedule_at(0.25, lambda: None))
    with pytest.raises(ValueError, match="in the past"):
        sim.run_until(2.0)


def test_schedule_at_present_time_is_not_noted():
    sim = make_sim()
    sim.schedule_at(1.0, lambda: sim.schedule_at(1.0, lambda: None))
    sim.run_until(2.0)
    assert sim.trace.notes == []
