"""Unit tests for the non-authenticated (echo) synchronizer's state machine."""

from __future__ import annotations

import pytest

from repro.core.messages import EchoMessage, InitMessage
from repro.core.params import params_for
from repro.core.unauth_sync import EchoSyncProcess
from repro.sim.clocks import FixedRateClock
from repro.sim.engine import Simulation
from repro.sim.network import FixedDelay


def make_setup(n=7, f=2, delay=0.001, period=1.0, **proc_kwargs):
    """One real EchoSyncProcess (pid 0) plus recording sinks for the rest."""
    params = params_for(n, f=f, authenticated=False, rho=1e-4, tdel=0.01, period=period)
    sim = Simulation(tmin=0.0, tdel=params.tdel, delay_policy=FixedDelay(delay), seed=0)
    proc = EchoSyncProcess(0, params, **proc_kwargs)
    sim.add_process(proc, FixedRateClock(rate=1.0, offset=0.0))
    received: dict[int, list] = {pid: [] for pid in range(1, n)}
    for pid in range(1, n):
        sim.network.register(pid, lambda env, pid=pid: received[env.dest].append(env.payload))
    return sim, proc, params, received


def test_sends_init_when_clock_reaches_round():
    sim, proc, params, received = make_setup()
    sim.run_until(1.05)
    for msgs in received.values():
        inits = [m for m in msgs if isinstance(m, InitMessage)]
        assert [m.round for m in inits] == [1]


def test_echoes_after_f_plus_1_inits():
    sim, proc, params, received = make_setup(n=7, f=2)
    # Own init counts as one; two foreign inits reach the echo threshold of 3.
    sim.schedule_at(1.001, lambda: sim.network.send(1, 0, InitMessage(round=1)))
    sim.schedule_at(1.002, lambda: sim.network.send(2, 0, InitMessage(round=1)))
    sim.run_until(1.1)
    for msgs in received.values():
        echoes = [m for m in msgs if isinstance(m, EchoMessage)]
        assert [m.round for m in echoes] == [1]


def test_echoes_after_f_plus_1_echoes_even_without_inits():
    sim, proc, params, received = make_setup(n=7, f=2)
    for sender in (1, 2, 3):
        sim.schedule_at(0.3, lambda s=sender: sim.network.send(s, 0, EchoMessage(round=1)))
    sim.run_until(0.5)
    echoes_to_1 = [m for m in received[1] if isinstance(m, EchoMessage)]
    assert len(echoes_to_1) == 1


def test_echo_sent_at_most_once_per_round():
    sim, proc, params, received = make_setup(n=7, f=2)
    for sender in (1, 2, 3, 4, 5):
        sim.schedule_at(0.3 + sender * 0.01, lambda s=sender: sim.network.send(s, 0, InitMessage(round=1)))
    sim.run_until(0.9)
    echoes_to_1 = [m for m in received[1] if isinstance(m, EchoMessage)]
    assert len(echoes_to_1) == 1


def test_accepts_on_2f_plus_1_echoes_and_adjusts():
    sim, proc, params, received = make_setup(n=7, f=2)
    # 4 foreign echoes + the process's own echo = 5 = 2f+1.
    for sender in (1, 2, 3, 4):
        sim.schedule_at(0.3, lambda s=sender: sim.network.send(s, 0, EchoMessage(round=1)))
    sim.run_until(0.4)
    assert proc.accepted_rounds == [1]
    assert proc.trace.resyncs[0].logical_after == pytest.approx(params.period + params.alpha_value)
    assert proc.current_round == 2


def test_does_not_accept_without_enough_echoes():
    sim, proc, params, received = make_setup(n=7, f=2)
    for sender in (1, 2, 3):
        sim.schedule_at(0.3, lambda s=sender: sim.network.send(s, 0, EchoMessage(round=1)))
    sim.run_until(0.6)
    # 3 foreign + own echo = 4 < 5: no acceptance.
    assert proc.accepted_rounds == []


def test_faulty_echoes_alone_cannot_cause_acceptance():
    sim, proc, params, received = make_setup(n=7, f=2)
    # Only f = 2 distinct (faulty) echoers, repeated many times.
    for repeat in range(10):
        for sender in (1, 2):
            sim.schedule_at(0.2 + repeat * 0.01, lambda s=sender: sim.network.send(s, 0, EchoMessage(round=1)))
    sim.run_until(0.9)
    assert proc.accepted_rounds == []
    # It did not even echo (f inits/echoes are below the echo threshold).
    assert all(not any(isinstance(m, EchoMessage) for m in msgs) for msgs in received.values())


def test_stale_round_messages_ignored_after_acceptance():
    sim, proc, params, received = make_setup(n=7, f=2)
    for sender in (1, 2, 3, 4):
        sim.schedule_at(0.3, lambda s=sender: sim.network.send(s, 0, EchoMessage(round=1)))
    sim.schedule_at(0.5, lambda: sim.network.send(5, 0, EchoMessage(round=1)))
    sim.run_until(0.8)
    assert len(proc.trace.resyncs) == 1


def test_startup_mode_inits_round_zero_at_boot():
    sim, proc, params, received = make_setup(use_startup=True)
    sim.run_until(0.01)
    for msgs in received.values():
        assert any(isinstance(m, InitMessage) and m.round == 0 for m in msgs)


def test_startup_retry_resends_init():
    sim, proc, params, received = make_setup(use_startup=True)
    sim.run_until(0.2)
    counts = [len([m for m in msgs if isinstance(m, InitMessage) and m.round == 0]) for msgs in received.values()]
    assert all(count >= 2 for count in counts)


def test_joiner_is_passive_but_accepts_from_others():
    sim, proc, params, received = make_setup(n=7, f=2, joiner=True)
    sim.run_until(1.5)
    assert all(len(msgs) == 0 for msgs in received.values())
    for sender in (1, 2, 3, 4, 5):
        sim.schedule_at(1.6, lambda s=sender: sim.network.send(s, 0, EchoMessage(round=2)))
    sim.run_until(1.7)
    assert proc.accepted_rounds == [2]
    assert proc.current_round == 3


def test_garbage_and_wrong_type_messages_ignored():
    sim, proc, params, received = make_setup()
    sim.schedule_at(0.2, lambda: sim.network.send(1, 0, "junk"))
    sim.schedule_at(0.2, lambda: sim.network.send(1, 0, None))
    sim.run_until(0.5)
    assert proc.accepted_rounds == []


def test_next_round_scheduled_relative_to_adjusted_clock():
    sim, proc, params, received = make_setup(n=7, f=2)
    for sender in (1, 2, 3, 4):
        sim.schedule_at(0.995, lambda s=sender: sim.network.send(s, 0, EchoMessage(round=1)))
    sim.run_until(2.05)
    inits_round2 = [m for m in received[1] if isinstance(m, InitMessage) and m.round == 2]
    assert len(inits_round2) == 1
