"""Integration tests for start-up (initial synchronization) and join (integration)."""

from __future__ import annotations

import pytest

from repro.analysis import metrics
from repro.core.bounds import precision_bound
from repro.core.join import join_latency_bound, join_time, joined
from repro.core.params import params_for
from repro.core.startup import startup_completion_bound
from repro.workloads.scenarios import Scenario, run_scenario


def run_startup(algorithm, boot_spread, seed=0, rounds=5, offset_spread=0.05):
    params = params_for(
        7, authenticated=(algorithm == "auth"), rho=1e-4, tdel=0.01, period=1.0,
        initial_offset_spread=offset_spread,
    )
    scenario = Scenario(
        params=params,
        algorithm=algorithm,
        attack="silent",
        rounds=rounds,
        clock_mode="extreme",
        delay_mode="uniform",
        use_startup=True,
        boot_spread=boot_spread,
        seed=seed,
    )
    return run_scenario(scenario, check_guarantees=False), scenario


@pytest.mark.parametrize("algorithm", ["auth", "echo"])
@pytest.mark.parametrize("boot_spread", [0.0, 0.05, 0.3])
def test_startup_everyone_synchronizes_in_time(algorithm, boot_spread):
    result, scenario = run_startup(algorithm, boot_spread)
    synced_by = metrics.steady_state_start(result.trace)
    bound = startup_completion_bound(result.params, boot_spread, scenario.st_algorithm)
    assert synced_by <= bound
    for ptrace in result.trace.honest():
        assert ptrace.resyncs, "every correct process must synchronize at least once"


@pytest.mark.parametrize("algorithm", ["auth", "echo"])
def test_startup_precision_holds_after_first_full_round(algorithm):
    result, scenario = run_startup(algorithm, boot_spread=0.05)
    settled = metrics.skew_after_round(result.trace, 1)
    assert settled is not None
    assert settled <= precision_bound(result.params, scenario.st_algorithm)


def test_startup_with_simultaneous_boot_synchronizes_immediately():
    result, scenario = run_startup("auth", boot_spread=0.0)
    # Round 0 completes within the acceptance latency of the boot.
    assert metrics.steady_state_start(result.trace) <= 2 * result.params.tdel
    assert metrics.liveness(result.trace, 3)


def test_startup_under_eager_adversary_still_works():
    params = params_for(7, authenticated=True, initial_offset_spread=0.02)
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack="eager",
        rounds=5,
        clock_mode="extreme",
        delay_mode="targeted",
        use_startup=True,
        boot_spread=0.02,
        seed=9,
    )
    result = run_scenario(scenario, check_guarantees=False)
    settled = metrics.skew_after_round(result.trace, 1)
    assert settled is not None and settled <= precision_bound(params, "auth")


# -- join ------------------------------------------------------------------------------------


def run_join(algorithm, join_at, seed=0, rounds=8, attack="eager"):
    params = params_for(7, authenticated=(algorithm == "auth"), rho=1e-4, tdel=0.01, period=1.0,
                        initial_offset_spread=0.005)
    scenario = Scenario(
        params=params,
        algorithm=algorithm,
        attack=attack,
        rounds=rounds,
        clock_mode="extreme",
        delay_mode="uniform",
        joiner_count=1,
        join_time=join_at,
        seed=seed,
    )
    return run_scenario(scenario, check_guarantees=False), scenario


@pytest.mark.parametrize("algorithm", ["auth", "echo"])
@pytest.mark.parametrize("join_at", [1.4, 2.7, 4.2])
def test_joiner_synchronizes_within_latency_bound(algorithm, join_at):
    result, scenario = run_join(algorithm, join_at)
    joiner_pid = scenario.joiner_pids[0]
    assert joined(result.trace, joiner_pid)
    latency = join_time(result.trace, joiner_pid, join_at)
    assert latency <= join_latency_bound(result.params, scenario.st_algorithm)


@pytest.mark.parametrize("algorithm", ["auth", "echo"])
def test_joiner_then_obeys_precision_bound(algorithm):
    result, scenario = run_join(algorithm, join_at=2.2)
    joiner_pid = scenario.joiner_pids[0]
    first_sync = result.trace.processes[joiner_pid].resyncs[0].time
    skew_with_joiner = metrics.max_skew(result.trace, t_start=first_sync)
    assert skew_with_joiner <= precision_bound(result.params, scenario.st_algorithm)


def test_joiner_keeps_participating_after_joining():
    result, scenario = run_join("auth", join_at=1.5, rounds=8)
    joiner_pid = scenario.joiner_pids[0]
    rounds = result.trace.processes[joiner_pid].rounds_accepted()
    assert len(rounds) >= 4
    assert rounds == sorted(rounds)


def test_two_joiners_both_integrate():
    params = params_for(7, authenticated=True, initial_offset_spread=0.005)
    scenario = Scenario(
        params=params,
        algorithm="auth",
        attack="silent",
        rounds=7,
        joiner_count=2,
        join_time=2.4,
        clock_mode="random",
        delay_mode="uniform",
        seed=4,
    )
    result = run_scenario(scenario, check_guarantees=False)
    for pid in scenario.joiner_pids:
        assert joined(result.trace, pid)
