"""Adaptive horizon: recorder-driven stops equal the historical event poll.

The engine's adaptive mode halts on the recorder's own round tracking (O(1)
per event) instead of polling ``min_completed_round`` after every event.
With ``grace=0`` it must stop on the *same event* the historical poll stops
on, so every streamed metric -- and every full trace -- is identical between
the two modes; a positive grace extends the run past completion by exactly
that much real time.  The grid covers the cases where the round bookkeeping
is easiest to get wrong: crash faults, start-up from scratch, late joiners,
drifting (piecewise-linear) clocks, and tie-heavy worst-case delay policies.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.serialize import trace_to_dict
from repro.experiments.common import adversarial_scenario, benign_scenario, default_params
from repro.workloads.scenarios import Scenario, build_cluster, resolve_adaptive, run_scenario


def _grid() -> list[Scenario]:
    return [
        # Crash faults: the crash ceiling must not make the stop fire early.
        adversarial_scenario(default_params(7, authenticated=True), "auth", attack="crash", rounds=6, seed=3),
        # Start-up from scratch (round 0 + staggered boots).
        Scenario(
            params=default_params(5, authenticated=True),
            algorithm="auth",
            attack="silent",
            rounds=5,
            use_startup=True,
            boot_spread=0.004,
            clock_mode="extreme",
            delay_mode="uniform",
            seed=8,
        ),
        # A late joiner holds the completed round at 0 until it catches up.
        Scenario(
            params=default_params(5, authenticated=True),
            algorithm="auth",
            attack="silent",
            rounds=6,
            joiner_count=1,
            join_time=2.5,
            clock_mode="extreme",
            delay_mode="uniform",
            seed=9,
        ),
        # Drifting piecewise-linear clocks (benign scenarios use "random").
        benign_scenario(default_params(5, authenticated=True), "auth", rounds=5, seed=5),
        benign_scenario(default_params(7, authenticated=False), "echo", rounds=5, seed=6),
        # Worst-case delays produce many same-instant deliveries: the
        # adaptive stop must break mid-instant exactly like the poll does.
        dataclasses.replace(
            adversarial_scenario(
                default_params(7, authenticated=True), "auth", attack="skew_max", rounds=6, seed=2
            ),
            delay_mode="max",
        ),
        dataclasses.replace(
            adversarial_scenario(
                default_params(7, authenticated=True), "auth", attack="eager", rounds=6, seed=4
            ),
            delay_mode="min",
        ),
    ]


def _result_fields(result):
    return (
        result.precision,
        result.precision_overall,
        result.period_stats,
        result.acceptance_spread,
        result.accuracy,
        result.completed_round,
        result.total_messages,
        result.messages_per_round,
        result.effective_horizon,
        result.stopped_early,
        None
        if result.guarantees is None
        else [(c.name, c.measured, c.bound, c.holds, c.direction) for c in result.guarantees.checks],
    )


@pytest.mark.parametrize("scenario", _grid(), ids=lambda s: f"{s.name}-seed{s.seed}")
def test_adaptive_metrics_run_equals_static(scenario: Scenario) -> None:
    static = run_scenario(
        dataclasses.replace(scenario, adaptive_horizon=False), trace_level="metrics"
    )
    adaptive = run_scenario(
        dataclasses.replace(scenario, adaptive_horizon=True), trace_level="metrics"
    )
    assert _result_fields(adaptive) == _result_fields(static)


@pytest.mark.parametrize("scenario", _grid()[:3], ids=lambda s: f"{s.name}-seed{s.seed}")
def test_adaptive_full_trace_is_byte_identical(scenario: Scenario) -> None:
    historical = run_scenario(scenario, trace_level="full")  # default: historical poll
    adaptive = run_scenario(
        dataclasses.replace(scenario, adaptive_horizon=True), trace_level="full"
    )
    assert trace_to_dict(adaptive.trace) == trace_to_dict(historical.trace)


def test_adaptive_summary_equality_at_engine_level() -> None:
    scenario = adversarial_scenario(
        default_params(7, authenticated=True), "auth", attack="skew_max", rounds=8, seed=17
    )
    summaries = []
    for adaptive in (False, True):
        handles = build_cluster(scenario, trace_level="metrics")
        summary = handles.sim.run_until_round(
            scenario.rounds, t_max=scenario.horizon(), adaptive=adaptive
        )
        assert handles.sim.stopped_early
        summaries.append(summary)
    assert summaries[0] == summaries[1]


def test_stop_never_fires_before_target_round_under_worst_case_delays() -> None:
    # Every message takes the full tdel: round completion is as late as the
    # model allows, and acceptances pile up on identical timestamps.  The
    # adaptive stop must still wait for the last process of the last round.
    scenario = dataclasses.replace(
        adversarial_scenario(
            default_params(7, authenticated=True),
            "auth",
            attack="skew_max",
            rounds=7,
            seed=23,
            adaptive_horizon=True,
        ),
        delay_mode="max",
    )
    handles = build_cluster(scenario, trace_level="metrics")
    sim = handles.sim
    summary = sim.run_until_round(scenario.rounds, t_max=scenario.horizon(), adaptive=True)
    assert sim.stopped_early
    assert summary.completed_round >= scenario.rounds
    # The completing instant cannot precede `rounds` sequential broadcasts.
    assert summary.end_time >= scenario.rounds * scenario.params.tdel


def test_grace_extends_the_adapted_horizon_exactly() -> None:
    scenario = adversarial_scenario(
        default_params(5, authenticated=True), "auth", attack="eager", rounds=5, seed=31
    )
    tight = run_scenario(dataclasses.replace(scenario, adaptive_horizon=True), trace_level="metrics")
    graced = run_scenario(
        dataclasses.replace(scenario, adaptive_horizon=True, grace=0.5), trace_level="metrics"
    )
    assert tight.stopped_early and graced.stopped_early
    assert graced.effective_horizon == tight.effective_horizon + 0.5
    assert graced.effective_horizon < scenario.horizon()
    assert graced.completed_round >= tight.completed_round


def test_infeasible_run_falls_back_to_the_static_budget() -> None:
    # A target round the execution never reaches: the adaptive run must use
    # the full static budget, exactly like the historical poll would.
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=3, seed=41)
    t_max = scenario.horizon()
    handles = build_cluster(scenario, trace_level="metrics")
    summary = handles.sim.run_until_round(10_000, t_max=t_max, adaptive=True)
    assert not handles.sim.stopped_early
    assert summary.end_time == t_max
    assert summary.completed_round < 10_000


def test_resolve_adaptive_defaults_per_trace_level() -> None:
    scenario = benign_scenario(default_params(4, authenticated=True), "auth", rounds=3, seed=1)
    assert resolve_adaptive(scenario, "metrics") is True
    assert resolve_adaptive(scenario, "full") is False
    explicit = dataclasses.replace(scenario, adaptive_horizon=True)
    assert resolve_adaptive(explicit, "full") is True


def test_negative_grace_is_rejected() -> None:
    with pytest.raises(ValueError, match="grace"):
        benign_scenario(default_params(4, authenticated=True), "auth", rounds=3, seed=1, grace=-0.1)


def test_grace_on_already_completed_target_never_rewinds_time() -> None:
    # Arming a target that is already complete (a resumed full-trace segment)
    # must cap the grace window at arm time: no event beyond it may fire, and
    # simulated time must never move backwards.
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=3, seed=13)
    handles = build_cluster(scenario, trace_level="full")
    sim = handles.sim
    sim.run_until_round(scenario.rounds, t_max=scenario.horizon())
    first_end = sim.now
    trace = sim.run_until_round(scenario.rounds, t_max=scenario.horizon(), grace=0.25, adaptive=True)
    assert sim.now >= first_end
    assert sim.now == first_end + 0.25
    assert trace.end_time == sim.now


# -- opt-in early abort of provably infeasible runs --------------------------


def _crashing_cluster(trace_level: str, crash_at: float = 1.5):
    """A feasible scenario whose honest process 0 halts at ``crash_at``."""
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=50, seed=19)
    handles = build_cluster(scenario, trace_level=trace_level)
    handles.sim.schedule_at(crash_at, handles.honest[0].halt)
    return scenario, handles


@pytest.mark.parametrize("adaptive", [False, True], ids=["historical", "adaptive"])
@pytest.mark.parametrize("trace_level", ["metrics", "full"])
def test_abort_unreachable_stops_at_the_fatal_crash(trace_level: str, adaptive: bool) -> None:
    crash_at = 1.5
    scenario, handles = _crashing_cluster(trace_level, crash_at)
    t_max = scenario.horizon()
    observed = handles.sim.run_until_round(
        scenario.rounds, t_max=t_max, adaptive=adaptive, abort_unreachable=True
    )
    # The crash caps the completable rounds below the target; the run must
    # end on the crash event itself, not at the static budget.
    assert handles.sim.stopped_early
    assert observed.end_time == crash_at
    assert handles.sim.recorder.crash_ceiling < scenario.rounds
    notes = observed.notes
    assert any("unreachable" in note for note in notes)


@pytest.mark.parametrize("trace_level", ["metrics", "full"])
def test_abort_unreachable_is_off_by_default(trace_level: str) -> None:
    scenario, handles = _crashing_cluster(trace_level)
    t_max = scenario.horizon()
    observed = handles.sim.run_until_round(scenario.rounds, t_max=t_max, adaptive=True)
    # Without the opt-in, the infeasible run burns the full static budget --
    # the historical behaviour the measured end times of failed runs rely on.
    assert not handles.sim.stopped_early
    assert observed.end_time == t_max


def test_abort_unreachable_never_changes_a_feasible_run() -> None:
    scenario = benign_scenario(default_params(5, authenticated=True), "auth", rounds=5, seed=19)
    plain = run_scenario(scenario, trace_level="metrics")
    flagged = run_scenario(
        dataclasses.replace(scenario, abort_unreachable=True), trace_level="metrics"
    )
    assert _result_fields(flagged) == _result_fields(plain)


def test_abort_unreachable_threads_through_run_scenario() -> None:
    # Crash faults below the resilience bound leave the run feasible, so the
    # scenario-level flag must not change anything for the stock attacks; the
    # engine-level tests above cover the aborting path.  Here we check the
    # flag survives replication (each replicate keeps it).
    scenario = dataclasses.replace(
        benign_scenario(default_params(5, authenticated=True), "auth", rounds=4, seed=7),
        abort_unreachable=True,
        replications=2,
        shards=2,
        name="",
    )
    result = run_scenario(scenario, trace_level="metrics")
    reference = run_scenario(
        dataclasses.replace(scenario, abort_unreachable=False, name=""), trace_level="metrics"
    )
    assert _result_fields(result) == _result_fields(reference)
