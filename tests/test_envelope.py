"""Unit tests for the accuracy-envelope measurements."""

from __future__ import annotations

import pytest

from repro.analysis.envelope import accuracy_summary, fit_envelope, long_run_rate, rate_extremes
from repro.sim.clocks import FixedRateClock, PiecewiseLinearClock
from repro.sim.trace import ProcessTrace, Trace


def make_ptrace(rate=1.0, offset=0.0, adjustments=()):
    ptrace = ProcessTrace(pid=0, clock=FixedRateClock(rate=rate, offset=offset))
    for t, adj in adjustments:
        ptrace.record_adjustment(t, adj)
    return ptrace


def test_long_run_rate_of_fixed_clock():
    ptrace = make_ptrace(rate=1.02)
    assert long_run_rate(ptrace, 0.0, 10.0) == pytest.approx(1.02)


def test_long_run_rate_includes_adjustments():
    ptrace = make_ptrace(rate=1.0, adjustments=[(5.0, 1.0)])
    # Over [0, 10] the clock advanced 10 (hardware) + 1 (jump) = 11.
    assert long_run_rate(ptrace, 0.0, 10.0) == pytest.approx(1.1)


def test_long_run_rate_requires_positive_window():
    with pytest.raises(ValueError):
        long_run_rate(make_ptrace(), 5.0, 5.0)


def test_rate_extremes_piecewise_clock():
    clock = PiecewiseLinearClock([(0.0, 0.9), (5.0, 1.1)])
    ptrace = ProcessTrace(pid=0, clock=clock)
    extremes = rate_extremes(ptrace, 0.0, 10.0, min_window=4.0)
    assert extremes.slowest == pytest.approx(0.9, abs=1e-6)
    assert extremes.fastest == pytest.approx(1.1, abs=1e-6)


def test_rate_extremes_fall_back_to_long_run_for_huge_window():
    ptrace = make_ptrace(rate=1.05)
    extremes = rate_extremes(ptrace, 0.0, 2.0, min_window=100.0)
    assert extremes.slowest == pytest.approx(1.05)
    assert extremes.fastest == pytest.approx(1.05)


def test_fit_envelope_perfect_clock_has_zero_constants():
    ptrace = make_ptrace(rate=1.0)
    fit = fit_envelope(ptrace, rate_low=1.0, rate_high=1.0, t_start=0.0, t_end=10.0)
    assert fit.a == pytest.approx(0.0, abs=1e-12)
    assert fit.b == pytest.approx(0.0, abs=1e-12)


def test_fit_envelope_captures_forward_jumps():
    ptrace = make_ptrace(rate=1.0, adjustments=[(5.0, 0.3)])
    fit = fit_envelope(ptrace, rate_low=1.0, rate_high=1.0, t_start=0.0, t_end=10.0)
    # Upper envelope violated by the +0.3 jump; lower envelope still fine.
    assert fit.b == pytest.approx(0.3)
    assert fit.a == pytest.approx(0.0, abs=1e-12)


def test_fit_envelope_captures_backward_jumps():
    ptrace = make_ptrace(rate=1.0, adjustments=[(5.0, -0.2)])
    fit = fit_envelope(ptrace, rate_low=1.0, rate_high=1.0, t_start=0.0, t_end=10.0)
    assert fit.a == pytest.approx(0.2)
    assert fit.b == pytest.approx(0.0, abs=1e-12)


def test_fit_envelope_with_slack_rates_absorbs_drift():
    ptrace = make_ptrace(rate=1.05)
    fit = fit_envelope(ptrace, rate_low=0.9, rate_high=1.1, t_start=0.0, t_end=10.0)
    assert fit.a == pytest.approx(0.0, abs=1e-12)
    assert fit.b == pytest.approx(0.0, abs=1e-12)


def test_accuracy_summary_aggregates_honest_processes():
    trace = Trace()
    trace.add_process(0, FixedRateClock(rate=1.0))
    trace.add_process(1, FixedRateClock(rate=1.1))
    trace.add_process(2, FixedRateClock(rate=5.0), faulty=True)  # must be ignored
    trace.end_time = 10.0
    summary = accuracy_summary(trace, rate_low=0.95, rate_high=1.05, min_window=5.0)
    assert summary.slowest_long_run_rate == pytest.approx(1.0)
    assert summary.fastest_long_run_rate == pytest.approx(1.1)
    assert summary.fastest_window_rate == pytest.approx(1.1)
    assert summary.envelope_b > 0  # the 1.1-rate clock exceeds the 1.05 envelope
    assert summary.worst_offset_from_real_time == pytest.approx(1.0)


def test_accuracy_summary_window_defaults():
    trace = Trace()
    trace.add_process(0, FixedRateClock(rate=1.0))
    trace.end_time = 8.0
    summary = accuracy_summary(trace, rate_low=1.0, rate_high=1.0)
    assert summary.slowest_long_run_rate == pytest.approx(1.0)
