"""Unit tests for scenario construction, cluster assembly and sweeps."""

from __future__ import annotations


import pytest

from repro.baselines import InflatedClockAttacker, LundeliusWelchProcess
from repro.core.auth_sync import AuthSyncProcess
from repro.core.params import params_for
from repro.core.unauth_sync import EchoSyncProcess
from repro.faults.behaviors import SilentFaulty
from repro.sim.network import MaxDelay, MinDelay, TargetedDelay, UniformDelay
from repro.workloads.scenarios import Scenario, build_cluster, run_scenario
from repro.workloads.sweeps import grid, run_sweep, scenario_sweep


@pytest.fixture
def auth_params():
    return params_for(5, authenticated=True, rho=1e-4, tdel=0.01, period=1.0)


# -- Scenario validation -----------------------------------------------------------------


def test_scenario_defaults_and_name(auth_params):
    scenario = Scenario(params=auth_params)
    assert scenario.actual_faults == auth_params.f
    assert scenario.name.startswith("auth-n5")
    assert scenario.honest_pids == [0, 1, 2]
    assert scenario.faulty_pids == [3, 4]
    assert scenario.joiner_pids == []
    assert scenario.st_algorithm == "auth"


def test_scenario_rejects_unknown_algorithm(auth_params):
    with pytest.raises(ValueError):
        Scenario(params=auth_params, algorithm="ntp")


def test_scenario_rejects_unknown_modes(auth_params):
    with pytest.raises(ValueError):
        Scenario(params=auth_params, clock_mode="weird")
    with pytest.raises(ValueError):
        Scenario(params=auth_params, delay_mode="weird")
    with pytest.raises(ValueError):
        Scenario(params=auth_params, rounds=0)


def test_scenario_rejects_all_faulty(auth_params):
    with pytest.raises(ValueError):
        Scenario(params=auth_params, actual_faults=5)


def test_scenario_horizon_scales_with_rounds(auth_params):
    short = Scenario(params=auth_params, rounds=5)
    long = Scenario(params=auth_params, rounds=20)
    assert long.horizon() > short.horizon()


def test_scenario_joiner_pids(auth_params):
    scenario = Scenario(params=auth_params, joiner_count=2, join_time=2.0)
    assert scenario.joiner_pids == [5, 6]


# -- build_cluster ---------------------------------------------------------------------------


def test_build_cluster_auth_composition(auth_params):
    handles = build_cluster(Scenario(params=auth_params, algorithm="auth", seed=1))
    assert len(handles.honest) == 3
    assert all(isinstance(p, AuthSyncProcess) for p in handles.honest)
    assert len(handles.faulty) == 2
    assert all(isinstance(p, SilentFaulty) for p in handles.faulty)
    assert handles.keystore is not None
    assert sorted(handles.sim.processes) == [0, 1, 2, 3, 4]


def test_build_cluster_echo_has_no_keystore():
    params = params_for(7, authenticated=False)
    handles = build_cluster(Scenario(params=params, algorithm="echo"))
    assert handles.keystore is None
    assert all(isinstance(p, EchoSyncProcess) for p in handles.honest)


def test_build_cluster_baseline_with_inflated_clock_attack():
    params = params_for(5, f=1, authenticated=False)
    handles = build_cluster(
        Scenario(params=params, algorithm="lundelius_welch", attack="inflated_clock", actual_faults=1)
    )
    assert all(isinstance(p, LundeliusWelchProcess) for p in handles.honest)
    assert all(isinstance(p, InflatedClockAttacker) for p in handles.faulty)


def test_build_cluster_rejects_st_attack_on_baseline():
    params = params_for(5, f=1, authenticated=False)
    with pytest.raises(ValueError):
        build_cluster(Scenario(params=params, algorithm="lundelius_welch", attack="eager", actual_faults=1))


@pytest.mark.parametrize(
    "delay_mode,expected",
    [("uniform", UniformDelay), ("max", MaxDelay), ("min", MinDelay), ("targeted", TargetedDelay)],
)
def test_build_cluster_delay_policies(auth_params, delay_mode, expected):
    handles = build_cluster(Scenario(params=auth_params, delay_mode=delay_mode))
    assert isinstance(handles.sim.network.policy, expected)


def test_build_cluster_clock_modes(auth_params):
    extreme = build_cluster(Scenario(params=auth_params, clock_mode="extreme"))
    rates = {round(t.clock.max_rate, 6) for t in extreme.sim.trace.honest()}
    assert len(rates) == 2  # alternating fastest/slowest
    nominal = build_cluster(Scenario(params=auth_params, clock_mode="nominal"))
    assert all(t.clock.max_rate == 1.0 for t in nominal.sim.trace.honest())
    random_clocks = build_cluster(Scenario(params=auth_params, clock_mode="random"))
    assert all(t.clock.respects_drift(auth_params.rho) for t in random_clocks.sim.trace.honest())


def test_build_cluster_joiners_marked_honest(auth_params):
    handles = build_cluster(Scenario(params=auth_params, joiner_count=1, join_time=2.0))
    assert len(handles.joiners) == 1
    assert handles.joiners[0].joiner
    assert not handles.sim.trace.processes[5].faulty


# -- run_scenario -----------------------------------------------------------------------------


def test_run_scenario_reports_basic_fields(auth_params):
    result = run_scenario(Scenario(params=auth_params, rounds=4, seed=2))
    assert result.completed_round >= 4
    assert result.precision >= 0.0
    assert result.total_messages > 0
    assert result.guarantees is not None
    assert result.guarantees_hold
    assert result.params is auth_params


def test_run_scenario_guarantee_check_disabled_for_out_of_spec(auth_params):
    scenario = Scenario(params=auth_params, attack="rushing_cabal", actual_faults=auth_params.f + 1, rounds=4)
    result = run_scenario(scenario)
    assert result.guarantees is None
    assert result.guarantees_hold  # vacuously true when not checked


def test_run_scenario_baseline_has_no_guarantee_report():
    params = params_for(5, f=1, authenticated=False)
    result = run_scenario(Scenario(params=params, algorithm="lundelius_welch", rounds=4, actual_faults=1))
    assert result.guarantees is None


# -- sweeps -----------------------------------------------------------------------------------


def test_grid_cartesian_product():
    points = grid(n=[4, 7], rho=[1e-4, 1e-3])
    assert len(points) == 4
    assert {"n": 4, "rho": 1e-3} in points


def test_scenario_sweep_splits_param_and_scenario_fields(auth_params):
    base = Scenario(params=auth_params, rounds=4)
    scenarios = scenario_sweep(base, grid(rho=[1e-4, 1e-3], attack=["eager"]))
    assert len(scenarios) == 2
    assert {s.params.rho for s in scenarios} == {1e-4, 1e-3}
    assert all(s.attack == "eager" for s in scenarios)
    assert all(s.rounds == 4 for s in scenarios)
    # The base scenario is untouched.
    assert base.params.rho == 1e-4 and base.attack is None


def test_run_sweep_returns_results_in_order_and_calls_callback(auth_params):
    base = Scenario(params=auth_params, rounds=3)
    scenarios = scenario_sweep(base, grid(seed=[1, 2]))
    seen = []
    results = run_sweep(scenarios, callback=lambda r: seen.append(r.scenario.seed))
    assert [r.scenario.seed for r in results] == [1, 2]
    assert seen == [1, 2]
