"""Analytic guarantees of the Srikanth-Toueg synchronizers.

This module re-derives, from first principles and for the algorithms exactly
as implemented in :mod:`repro.core.auth_sync` and
:mod:`repro.core.unauth_sync`, the quantities the paper's theorems are about:

* bounds on the real time between resynchronizations (``beta_min``/``beta_max``),
* the worst-case precision (mutual skew) bound ``Dmax``,
* the long-run accuracy (logical clock rate) bounds and their optimality gap,
* the parameter side-conditions under which the guarantees hold,
* message-complexity counts.

Because the reproduction could not quote the original text verbatim (see the
mismatch notice in DESIGN.md), the constants below are conservative bounds
*proved for this implementation*; the benchmark harness checks empirically
that no execution, adversarial or benign, ever violates them.

Derivation sketch
-----------------
Both algorithms are instances of the same pattern, differing only in the
broadcast primitive used to agree that "it is time for round k":

* authenticated (signatures):  accept on ``f+1`` distinct valid signatures;
  the acceptor relays the signature set.  Properties:

  - *correctness*:  once ``f+1`` correct processes have broadcast round ``k``,
    every correct process accepts within ``tdel``;
  - *unforgeability*:  no correct process accepts round ``k`` before the first
    correct process broadcast it;
  - *relay*:  if some correct process accepts at real time ``t``, every correct
    process accepts by ``t + tdel``  (the acceptor's forwarded bundle arrives
    within one delay).

* non-authenticated (init/echo with thresholds ``f+1`` / ``2f+1``, requires
  ``n > 3f``): the same three properties hold with ``tdel`` replaced by
  ``2*tdel`` for correctness and relay (an extra hop through the echoes).

Write ``SIGMA`` for the relay bound (``tdel`` resp. ``2*tdel``) and ``DACC``
for the correctness bound (same values).  Let ``t_k`` be the real time of the
*first* correct acceptance of round ``k``.  By relay, all correct acceptance
times for round ``k`` lie in ``[t_k, t_k + SIGMA]``.  On acceptance a process
sets its logical clock to ``k*P + alpha``, so it next broadcasts round ``k+1``
after a local-clock advance of ``P - alpha``, i.e. after real time in
``[(P - alpha)/(1+rho), (P - alpha)*(1+rho)]``.  Combining with
unforgeability and correctness:

    gamma_min :=  (P - alpha)/(1+rho) - SIGMA   <=  t_{k+1} - t_k
    gamma_max :=  (P - alpha)*(1+rho) + SIGMA + DACC  >=  t_{k+1} - t_k

and for a single process's consecutive resynchronizations

    beta_min  :=  gamma_min                <=  a_p^{k+1} - a_p^k
    beta_max  :=  gamma_max + SIGMA        >=  a_p^{k+1} - a_p^k .

Precision.  Between the completion of round ``k`` (time ``t_k + SIGMA``) and
the completion of round ``k+1``, a correct clock is in one of two states:
still on round ``k`` (value ``k*P + alpha`` plus local advance since its
acceptance) or already on round ``k+1`` (value ``(k+1)*P + alpha`` plus at
most ``(1+rho)*SIGMA``).  Maximising the difference over the four
combinations, with ``tau = t - t_k <= gamma_max + SIGMA``, gives

    skew_AA = gamma_max * rho(2+rho)/(1+rho) + (1+rho) * SIGMA          (both on k)
    skew_BB = (1+rho) * SIGMA                                            (both on k+1)
    skew_BA = P + (1+rho)*SIGMA + SIGMA/(1+rho) - gamma_min/(1+rho)      (ahead vs behind)
    skew_AB = (1+rho)*(gamma_max + SIGMA) - P                            (behind-but-fast vs just-resynced)

    Dmax = max(skew_AA, skew_BB, skew_BA, skew_AB)

Accuracy.  Between consecutive acceptances a logical clock advances exactly
``P`` (from ``k*P+alpha`` to ``(k+1)*P+alpha``), over a real-time span in
``[beta_min, beta_max]``, so the long-run logical rate lies in
``[P / beta_max, P / beta_min]``.  As ``P / tdel -> infinity`` these bounds
converge to the hardware bounds ``[1/(1+rho), 1+rho]``: the excess is
``O((tdel + rho*tdel) / P)`` and -- crucially -- independent of ``f`` and
``n``.  That is the "optimal accuracy" property this reproduction validates:
fault tolerance costs nothing in clock rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .params import SyncParams

#: Identifier of the authenticated (signature-based) algorithm.
AUTH = "auth"
#: Identifier of the non-authenticated (echo-broadcast) algorithm.
ECHO = "echo"

_ALGORITHMS = (AUTH, ECHO)


class ParameterError(ValueError):
    """Raised when parameters violate the side-conditions of a guarantee."""


def _check_algorithm(algorithm: str) -> str:
    if algorithm not in _ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {_ALGORITHMS}")
    return algorithm


def acceptance_spread(params: SyncParams, algorithm: str = AUTH) -> float:
    """``SIGMA``: max real-time spread of correct acceptances of one round (relay bound)."""
    _check_algorithm(algorithm)
    return params.tdel if algorithm == AUTH else 2.0 * params.tdel


def acceptance_latency(params: SyncParams, algorithm: str = AUTH) -> float:
    """``DACC``: max real time from "enough correct processes broadcast" to "all accepted"."""
    _check_algorithm(algorithm)
    return params.tdel if algorithm == AUTH else 2.0 * params.tdel


def required_honest_majority(params: SyncParams, algorithm: str = AUTH) -> bool:
    """Whether ``(n, f)`` satisfies the algorithm's resilience requirement."""
    _check_algorithm(algorithm)
    if algorithm == AUTH:
        return params.n > 2 * params.f
    return params.n > 3 * params.f


def gamma_min(params: SyncParams, algorithm: str = AUTH) -> float:
    """Lower bound on the gap between consecutive first-acceptance times."""
    sigma = acceptance_spread(params, algorithm)
    return (params.period - params.alpha_value) / (1.0 + params.rho) - sigma


def gamma_max(params: SyncParams, algorithm: str = AUTH) -> float:
    """Upper bound on the gap between consecutive first-acceptance times."""
    sigma = acceptance_spread(params, algorithm)
    dacc = acceptance_latency(params, algorithm)
    return (params.period - params.alpha_value) * (1.0 + params.rho) + sigma + dacc


def beta_min(params: SyncParams, algorithm: str = AUTH) -> float:
    """Lower bound on the real time between one process's consecutive resynchronizations."""
    return gamma_min(params, algorithm)


def beta_max(params: SyncParams, algorithm: str = AUTH) -> float:
    """Upper bound on the real time between one process's consecutive resynchronizations."""
    return gamma_max(params, algorithm) + acceptance_spread(params, algorithm)


def precision_bound(params: SyncParams, algorithm: str = AUTH) -> float:
    """``Dmax``: worst-case mutual skew of correct logical clocks in steady state.

    Steady state means "from the completion of the first resynchronization
    on"; see :func:`startup_precision_bound` for the initial window.
    """
    rho = params.rho
    sigma = acceptance_spread(params, algorithm)
    g_min = gamma_min(params, algorithm)
    g_max = gamma_max(params, algorithm)
    one = 1.0 + rho
    drift_factor = rho * (2.0 + rho) / one

    skew_aa = g_max * drift_factor + one * sigma
    skew_bb = one * sigma
    skew_ba = params.period + one * sigma + sigma / one - g_min / one
    skew_ab = one * (g_max + sigma) - params.period
    return max(skew_aa, skew_bb, skew_ba, skew_ab)


def startup_precision_bound(params: SyncParams, algorithm: str = AUTH) -> float:
    """Skew bound valid from time 0, given the initial hardware-offset spread.

    Before the first resynchronization completes, correct logical clocks equal
    their hardware clocks, so the skew is the initial offset spread plus the
    drift accumulated until the first acceptance window closes, which happens
    no later than real time ``(1+rho) * P + DACC + SIGMA`` (every correct
    clock reaches ``P`` by ``(1+rho) * P``, regardless of offsets <= P).
    """
    rho = params.rho
    one = 1.0 + rho
    sigma = acceptance_spread(params, algorithm)
    dacc = acceptance_latency(params, algorithm)
    first_window_end = one * params.period + dacc + sigma
    drift_factor = rho * (2.0 + rho) / one
    initial = params.initial_offset_spread + first_window_end * drift_factor
    return max(initial, precision_bound(params, algorithm))


def long_run_rate_bounds(params: SyncParams, algorithm: str = AUTH) -> tuple[float, float]:
    """Bounds on the long-run rate of a correct logical clock, ``(rate_min, rate_max)``.

    Per resynchronization the logical clock advances exactly ``P`` over a real
    time in ``[beta_min, beta_max]``.
    """
    b_min = beta_min(params, algorithm)
    b_max = beta_max(params, algorithm)
    if b_min <= 0:
        raise ParameterError(
            "beta_min <= 0: the period is too short for the chosen delay bound "
            f"(P={params.period}, alpha={params.alpha_value}, tdel={params.tdel})"
        )
    return params.period / b_max, params.period / b_min


def accuracy_excess(params: SyncParams, algorithm: str = AUTH) -> tuple[float, float]:
    """How far the long-run rate bounds exceed the hardware drift envelope.

    Returns ``(low_excess, high_excess)`` where ``low_excess = 1/(1+rho) -
    rate_min`` and ``high_excess = rate_max - (1+rho)``.  Both are
    ``O((tdel + rho*tdel)/P)`` and vanish as the period grows -- the
    quantitative form of the paper's *optimal accuracy* claim.
    """
    rate_min, rate_max = long_run_rate_bounds(params, algorithm)
    return params.min_rate - rate_min, rate_max - params.max_rate


def envelope_constants(params: SyncParams, algorithm: str = AUTH) -> tuple[float, float]:
    """Additive constants ``(a, b)`` of the two-point accuracy envelope.

    For all ``t1 <= t2`` in steady state and every correct process::

        rate_min * (t2 - t1) - a  <=  C(t2) - C(t1)  <=  rate_max * (t2 - t1) + b

    where ``rate_min``/``rate_max`` are :func:`long_run_rate_bounds`.  The
    constants absorb at most one period's worth of slack on each side.
    """
    rate_min, rate_max = long_run_rate_bounds(params, algorithm)
    b_max = beta_max(params, algorithm)
    a = params.period + rate_min * b_max
    b = params.period + rate_max * b_max
    return a, b


def max_adjustment(params: SyncParams, algorithm: str = AUTH) -> float:
    """Upper bound on the absolute size of any single clock adjustment in steady state.

    A correct clock at acceptance of round ``k+1`` reads at least
    ``k*P + alpha + (gamma_min)/(1+rho)`` and at most
    ``k*P + alpha + (1+rho)*(gamma_max + SIGMA)``; the adjustment moves it to
    ``(k+1)*P + alpha``, so its magnitude is bounded by the larger deviation
    of those two readings from ``(k+1)*P + alpha``.
    """
    one = 1.0 + params.rho
    sigma = acceptance_spread(params, algorithm)
    low_reading = gamma_min(params, algorithm) / one
    high_reading = one * (gamma_max(params, algorithm) + sigma)
    upward = params.period - low_reading  # clock behind, moved forward
    downward = high_reading - params.period  # clock ahead, moved back
    return max(abs(upward), abs(downward))


def messages_per_round_per_process(params: SyncParams, algorithm: str = AUTH) -> int:
    """Worst-case messages a correct process sends per resynchronization round.

    Authenticated: one signed broadcast plus one relayed bundle, each to
    ``n - 1`` peers.  Non-authenticated: one init plus one echo broadcast.
    """
    _check_algorithm(algorithm)
    return 2 * (params.n - 1)


def messages_per_round_total(params: SyncParams, algorithm: str = AUTH) -> int:
    """Worst-case total messages sent by correct processes per round: ``O(n^2)``."""
    return params.honest_count * messages_per_round_per_process(params, algorithm)


def validate(params: SyncParams, algorithm: str = AUTH) -> list[str]:
    """Return the list of violated side-conditions (empty if the guarantees apply)."""
    _check_algorithm(algorithm)
    problems: list[str] = []
    if algorithm == AUTH and not params.authenticated_resilient():
        problems.append(
            f"authenticated algorithm requires n > 2f, got n={params.n}, f={params.f}"
        )
    if algorithm == ECHO and not params.unauthenticated_resilient():
        problems.append(
            f"non-authenticated algorithm requires n > 3f, got n={params.n}, f={params.f}"
        )
    if params.alpha_value >= params.period:
        problems.append(
            f"alpha ({params.alpha_value}) must be smaller than the period ({params.period})"
        )
    if gamma_min(params, algorithm) <= 0:
        problems.append(
            "gamma_min <= 0: period too short relative to the delay bound "
            f"(P={params.period}, alpha={params.alpha_value}, tdel={params.tdel}, rho={params.rho})"
        )
    if params.alpha_value < (1.0 + params.rho) * params.tdel - 1e-12:
        problems.append(
            f"alpha ({params.alpha_value}) below the recommended (1+rho)*tdel "
            f"({(1.0 + params.rho) * params.tdel}); benign-case adjustments may be negative"
        )
    if params.initial_offset_spread > params.period:
        problems.append(
            "initial_offset_spread larger than the period: the first round may be missed"
        )
    return problems


def require_valid(params: SyncParams, algorithm: str = AUTH) -> None:
    """Raise :class:`ParameterError` if any side-condition is violated."""
    problems = validate(params, algorithm)
    if problems:
        raise ParameterError("; ".join(problems))


@dataclass(frozen=True)
class TheoreticalBounds:
    """All analytic guarantees for one parameterisation, in one record."""

    algorithm: str
    resilience: int
    sigma: float
    beta_min: float
    beta_max: float
    gamma_min: float
    gamma_max: float
    precision: float
    startup_precision: float
    rate_min: float
    rate_max: float
    accuracy_excess_low: float
    accuracy_excess_high: float
    max_adjustment: float
    messages_per_round_total: int

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary form, convenient for report tables."""
        return {
            "resilience": self.resilience,
            "sigma": self.sigma,
            "beta_min": self.beta_min,
            "beta_max": self.beta_max,
            "gamma_min": self.gamma_min,
            "gamma_max": self.gamma_max,
            "precision": self.precision,
            "startup_precision": self.startup_precision,
            "rate_min": self.rate_min,
            "rate_max": self.rate_max,
            "accuracy_excess_low": self.accuracy_excess_low,
            "accuracy_excess_high": self.accuracy_excess_high,
            "max_adjustment": self.max_adjustment,
            "messages_per_round_total": self.messages_per_round_total,
        }


def theoretical_bounds(params: SyncParams, algorithm: str = AUTH) -> TheoreticalBounds:
    """Compute every analytic guarantee for ``params`` under ``algorithm``."""
    require_valid(params, algorithm)
    rate_min, rate_max = long_run_rate_bounds(params, algorithm)
    excess_low, excess_high = accuracy_excess(params, algorithm)
    if algorithm == AUTH:
        resilience = math.ceil(params.n / 2) - 1
    else:
        resilience = math.ceil(params.n / 3) - 1
    return TheoreticalBounds(
        algorithm=algorithm,
        resilience=resilience,
        sigma=acceptance_spread(params, algorithm),
        beta_min=beta_min(params, algorithm),
        beta_max=beta_max(params, algorithm),
        gamma_min=gamma_min(params, algorithm),
        gamma_max=gamma_max(params, algorithm),
        precision=precision_bound(params, algorithm),
        startup_precision=startup_precision_bound(params, algorithm),
        rate_min=rate_min,
        rate_max=rate_max,
        accuracy_excess_low=excess_low,
        accuracy_excess_high=excess_high,
        max_adjustment=max_adjustment(params, algorithm),
        messages_per_round_total=messages_per_round_total(params, algorithm),
    )
