"""The paper's primary contribution: the Srikanth-Toueg clock synchronizers.

This subpackage contains the model parameters, the analytic guarantees, the
logical clock abstraction, and the two synchronization algorithms
(authenticated, ``n > 2f``; and non-authenticated via echo broadcast,
``n > 3f``), together with the start-up and join procedures.
"""

from .auth_sync import AuthSyncProcess
from .bounds import (
    AUTH,
    ECHO,
    ParameterError,
    TheoreticalBounds,
    acceptance_latency,
    acceptance_spread,
    accuracy_excess,
    beta_max,
    beta_min,
    envelope_constants,
    gamma_max,
    gamma_min,
    long_run_rate_bounds,
    max_adjustment,
    messages_per_round_per_process,
    messages_per_round_total,
    precision_bound,
    require_valid,
    startup_precision_bound,
    theoretical_bounds,
    validate,
)
from .clock import AdjustmentResult, LogicalClock
from .join import join_latency_bound, join_time, joined
from .messages import (
    ClockSample,
    EchoMessage,
    GarbageMessage,
    InitMessage,
    JoinInfo,
    JoinRequest,
    Message,
    RoundContent,
    SignatureBundle,
    SignedRound,
    SyncPulse,
)
from .params import SyncParams, default_alpha, params_for
from .process import ClockSyncProcess
from .smoothing import (
    SmoothedClock,
    default_catch_up_rate,
    max_lag,
    smooth_all,
    smooth_clock,
    smoothed_skew,
)
from .startup import startup_completion_bound, staggered_boot_times
from .unauth_sync import EchoSyncProcess

__all__ = [
    "SyncParams",
    "params_for",
    "default_alpha",
    "AUTH",
    "ECHO",
    "ParameterError",
    "TheoreticalBounds",
    "theoretical_bounds",
    "validate",
    "require_valid",
    "precision_bound",
    "startup_precision_bound",
    "acceptance_spread",
    "acceptance_latency",
    "beta_min",
    "beta_max",
    "gamma_min",
    "gamma_max",
    "long_run_rate_bounds",
    "accuracy_excess",
    "envelope_constants",
    "max_adjustment",
    "messages_per_round_per_process",
    "messages_per_round_total",
    "LogicalClock",
    "AdjustmentResult",
    "ClockSyncProcess",
    "AuthSyncProcess",
    "EchoSyncProcess",
    "Message",
    "RoundContent",
    "SignedRound",
    "SignatureBundle",
    "InitMessage",
    "EchoMessage",
    "JoinRequest",
    "JoinInfo",
    "ClockSample",
    "SyncPulse",
    "GarbageMessage",
    "SmoothedClock",
    "smooth_clock",
    "smooth_all",
    "default_catch_up_rate",
    "max_lag",
    "smoothed_skew",
    "staggered_boot_times",
    "startup_completion_bound",
    "join_latency_bound",
    "join_time",
    "joined",
]
