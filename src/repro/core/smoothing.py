"""Continuous, rate-bounded output clocks (amortized corrections).

The Srikanth-Toueg synchronizers adjust the logical clock by discrete jumps at
each resynchronization.  Many applications (timestamp ordering, rate-based
schedulers, round simulation) additionally need an *output* clock that is
continuous and whose instantaneous rate is bounded -- the classic remedy is to
amortize each correction over time instead of applying it at once (cf. the
"logical clocks of bounded rate" discussion accompanying pulse/round
synchronizers).

This module post-processes a recorded :class:`~repro.sim.trace.ProcessTrace`
into such an output clock:

* the output clock ``S`` is continuous and non-decreasing,
* its rate never exceeds ``catch_up_rate`` (chosen slightly above the fastest
  hardware rate, e.g. ``(1 + rho) * (1 + amortization)``),
* its rate is never below the slowest hardware rate while it agrees with the
  underlying logical clock,
* it never overtakes the running maximum of the logical clock and lags it by
  at most the largest pending (positive) correction, which it absorbs at the
  extra-rate budget.

Construction: ``S`` is the *minimal-slope upper follower* of the running
maximum ``M(t) = max_{s <= t} C(s)`` of the logical clock,

    S(t) = min_{s <= t} ( M(s) + catch_up_rate * (t - s) ).

Because ``M`` is non-decreasing and piecewise linear with slopes at most the
hardware maximum (< ``catch_up_rate``) except at jump points, ``S`` is
continuous, piecewise linear, and coincides with ``M`` whenever it has caught
up.  Taking the running maximum first makes backward adjustments (possible in
the non-monotonic variant) disappear from the output: the output clock simply
pauses its extra speed-up instead of stepping back.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from ..sim.trace import ProcessTrace, Trace


@dataclass(frozen=True)
class SmoothedClock:
    """A continuous, rate-bounded output clock as a piecewise-linear function."""

    pid: int
    catch_up_rate: float
    #: Sorted sample times (the breakpoints of the output clock).
    times: tuple[float, ...]
    #: Output clock values at those times.
    values: tuple[float, ...]

    def value(self, t: float) -> float:
        """Evaluate the output clock at real time ``t`` (linear interpolation)."""
        times = self.times
        if t <= times[0]:
            return self.values[0]
        if t >= times[-1]:
            return self.values[-1] + self.catch_up_rate * 0.0 + (t - times[-1]) * self._last_slope()
        i = bisect.bisect_right(times, t) - 1
        t0, t1 = times[i], times[i + 1]
        v0, v1 = self.values[i], self.values[i + 1]
        if t1 == t0:
            return v1
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def _last_slope(self) -> float:
        if len(self.times) < 2 or self.times[-1] == self.times[-2]:
            return 1.0
        return (self.values[-1] - self.values[-2]) / (self.times[-1] - self.times[-2])

    def max_rate(self) -> float:
        """Largest slope over all segments."""
        best = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt > 0:
                best = max(best, (self.values[i] - self.values[i - 1]) / dt)
        return best

    def min_rate(self) -> float:
        """Smallest slope over all segments."""
        best = float("inf")
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            if dt > 0:
                best = min(best, (self.values[i] - self.values[i - 1]) / dt)
        return best if best != float("inf") else 0.0

    def max_jump(self) -> float:
        """Largest discontinuity (0 for a continuous clock, up to numerical noise)."""
        worst = 0.0
        for i in range(1, len(self.times)):
            if self.times[i] == self.times[i - 1]:
                worst = max(worst, abs(self.values[i] - self.values[i - 1]))
        return worst


def _sample_points(ptrace: ProcessTrace, t_end: float) -> list[float]:
    points = {0.0, t_end}
    for t in ptrace.breakpoints():
        if 0.0 <= t <= t_end:
            points.add(t)
    return sorted(points)


def smooth_clock(ptrace: ProcessTrace, t_end: float, catch_up_rate: float) -> SmoothedClock:
    """Build the amortized output clock for one process over ``[0, t_end]``.

    ``catch_up_rate`` must exceed the hardware clock's maximum rate, otherwise
    the output clock could never catch up with the logical clock after a
    forward correction.
    """
    if catch_up_rate <= ptrace.clock.max_rate:
        raise ValueError(
            f"catch_up_rate ({catch_up_rate}) must exceed the hardware clock's "
            f"maximum rate ({ptrace.clock.max_rate})"
        )
    points = _sample_points(ptrace, t_end)
    times: list[float] = []
    values: list[float] = []
    running_max = float("-inf")
    smoothed = None
    for t in points:
        # The output value at t may only depend on the logical clock *up to and
        # including* the left limit at t: a jump happening exactly at t starts
        # being absorbed just after t.
        left_limit = ptrace.logical_before(t)
        if smoothed is None:
            running_max = max(running_max, left_limit)
            smoothed = running_max
        else:
            t0 = times[-1]
            dt = t - t0
            previous = values[-1]
            # If the output clock is catching up along a segment on which the
            # running maximum simply follows the logical clock, record the
            # exact point where it catches up so the output stays piecewise
            # linear (instead of a chord that would catch up late).
            start_value = ptrace.logical_at(t0)
            if previous < running_max and running_max == start_value and dt > 0:
                slope = (left_limit - start_value) / dt
                if catch_up_rate > slope:
                    catch_time = t0 + (start_value - previous) / (catch_up_rate - slope)
                    if t0 < catch_time < t:
                        times.append(catch_time)
                        values.append(previous + catch_up_rate * (catch_time - t0))
                        previous = values[-1]
                        t0 = catch_time
                        dt = t - t0
            running_max = max(running_max, left_limit)
            # Advance with the catch-up budget but never overtake M(t^-).
            smoothed = min(running_max, previous + catch_up_rate * dt)
        times.append(t)
        values.append(smoothed)
        # The post-jump value becomes part of the running maximum for later points.
        running_max = max(running_max, ptrace.logical_at(t))
    return SmoothedClock(pid=ptrace.pid, catch_up_rate=catch_up_rate, times=tuple(times), values=tuple(values))


def default_catch_up_rate(max_hardware_rate: float, amortization: float = 0.1) -> float:
    """The conventional choice: ``(1 + amortization)`` times the fastest hardware rate."""
    if amortization <= 0:
        raise ValueError("amortization must be positive")
    return max_hardware_rate * (1.0 + amortization)


def smooth_all(trace: Trace, amortization: float = 0.1) -> dict[int, SmoothedClock]:
    """Amortize every honest process's logical clock in a trace."""
    result = {}
    for pid in trace.honest_pids():
        ptrace = trace.processes[pid]
        rate = default_catch_up_rate(ptrace.clock.max_rate, amortization)
        result[pid] = smooth_clock(ptrace, trace.end_time, rate)
    return result


def max_lag(ptrace: ProcessTrace, smoothed: SmoothedClock, t_end: float) -> float:
    """Largest amount by which the output clock lags the logical clock."""
    worst = 0.0
    for t in _sample_points(ptrace, t_end):
        worst = max(worst, ptrace.logical_at(t) - smoothed.value(t))
    return worst


def smoothed_skew(smoothed: dict[int, SmoothedClock], times: Sequence[float]) -> float:
    """Worst pairwise difference between the smoothed output clocks at the given times."""
    worst = 0.0
    for t in times:
        values = [clock.value(t) for clock in smoothed.values()]
        if values:
            worst = max(worst, max(values) - min(values))
    return worst
