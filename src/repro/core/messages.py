"""Wire-format message types used by the synchronization algorithms.

All messages are small frozen dataclasses so that they can be canonicalised
and signed (see :func:`repro.crypto.message_digest`), compared in tests, and
counted by type in the network statistics.

Round numbering convention
--------------------------
Round ``k >= 1`` corresponds to the resynchronization at logical time ``k*P``.
Round ``0`` is reserved for the start-up ("ready") phase: accepting round 0
means the system agreed to start, and processes set their logical clocks to
``alpha`` at that point.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.signatures import Signature


@dataclass(frozen=True)
class Message:
    """Common base class for all wire messages (useful for isinstance checks)."""


# -- authenticated algorithm ---------------------------------------------------


@dataclass(frozen=True)
class RoundContent(Message):
    """The content that gets signed for round ``k``: the statement "it is time for round k"."""

    round: int


@dataclass(frozen=True)
class SignedRound(Message):
    """A single signed round-k statement, as broadcast by its signer."""

    round: int
    signature: Signature


@dataclass(frozen=True)
class SignatureBundle(Message):
    """The relay message: the full set of signatures that caused an acceptance.

    Forwarding the accepted set is what gives the authenticated primitive its
    *relay* property -- every correct process accepts within one message delay
    of the first correct acceptance.
    """

    round: int
    signatures: tuple[Signature, ...]


# -- non-authenticated (echo) algorithm ---------------------------------------


@dataclass(frozen=True)
class InitMessage(Message):
    """"My clock reached round k" -- the non-authenticated broadcast of a round."""

    round: int


@dataclass(frozen=True)
class EchoMessage(Message):
    """Echo supporting round k, sent once f+1 inits or f+1 echoes were received."""

    round: int


# -- join / integration --------------------------------------------------------


@dataclass(frozen=True)
class JoinRequest(Message):
    """Sent by a process that wants to (re)join the synchronized system."""

    joiner: int


@dataclass(frozen=True)
class JoinInfo(Message):
    """Reply to a join request: the responder's current round number.

    The joiner only uses this to know which round to listen for; the actual
    synchronization still happens through the regular acceptance rule, so a
    faulty responder cannot desynchronize the joiner.
    """

    responder: int
    current_round: int


# -- baseline algorithms --------------------------------------------------------


@dataclass(frozen=True)
class ClockSample(Message):
    """A baseline process announcing its logical clock value (Lamport/Melliar-Smith)."""

    round: int
    value: float


@dataclass(frozen=True)
class SyncPulse(Message):
    """A baseline process announcing that its logical clock reached round ``k`` (Lundelius-Welch)."""

    round: int


# -- adversarial / garbage messages --------------------------------------------


@dataclass(frozen=True)
class GarbageMessage(Message):
    """An arbitrary, meaningless message used by flooding adversaries."""

    blob: str
