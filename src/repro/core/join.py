"""Integration of late-starting or recovering processes.

A process that was down (or is new) can (re)join a running synchronized
system without any special protocol: it listens to the ordinary round-``k``
traffic and applies the ordinary acceptance rule.  Because acceptance
requires support that only correct processes can provide (unforgeability),
faulty processes cannot feed a joiner a bogus clock; and because every
correct process re-announces each round, the joiner accepts the next round
that completes after it came up -- i.e. it is synchronized within one
resynchronization period plus the acceptance latency.

The joiner behaviour itself is the ``joiner=True`` mode of the algorithm
classes; this module provides the helpers used by scenarios and experiments.
"""

from __future__ import annotations

from .bounds import acceptance_latency, beta_max
from .params import SyncParams


def join_latency_bound(params: SyncParams, algorithm: str = "auth") -> float:
    """Worst-case real time from a joiner coming up to its first resynchronization.

    The joiner misses at most one full resynchronization interval (it may come
    up just after an acceptance completed) and then accepts the next round
    together with everybody else.
    """
    return beta_max(params, algorithm) + acceptance_latency(params, algorithm)


def joined(trace, joiner_pid: int) -> bool:
    """Whether the joining process recorded at least one resynchronization."""
    return bool(trace.processes[joiner_pid].resyncs)


def join_time(trace, joiner_pid: int, boot_time: float) -> float:
    """Real time the joiner took from boot to its first resynchronization.

    Raises ``ValueError`` if the joiner never synchronized.
    """
    resyncs = trace.processes[joiner_pid].resyncs
    if not resyncs:
        raise ValueError(f"process {joiner_pid} never synchronized")
    return resyncs[0].time - boot_time
