"""Logical (synchronized) clocks.

A logical clock is the hardware clock plus an adjustment maintained by the
synchronization algorithm:  ``C(t) = H(t) + A``.  The class below is a tiny
pure-value object -- it never looks at real time -- so it can be unit-tested
exhaustively and reused by every algorithm (Srikanth-Toueg and baselines).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AdjustmentResult:
    """Outcome of a clock adjustment."""

    #: Logical value immediately before the adjustment.
    before: float
    #: Logical value immediately after the adjustment.
    after: float
    #: ``after - before``; negative means the clock was set back.
    delta: float
    #: Whether the adjustment was suppressed by the monotonic option.
    suppressed: bool = False


class LogicalClock:
    """The adjustment layer on top of a hardware clock reading.

    The object deliberately operates on *hardware clock readings* rather than
    real time: the owning process supplies the current reading and the class
    converts between logical values, hardware readings and adjustments.
    """

    def __init__(self, initial_adjustment: float = 0.0) -> None:
        self.adjustment = float(initial_adjustment)

    def value(self, hardware_reading: float) -> float:
        """Logical clock value for the given hardware reading."""
        return hardware_reading + self.adjustment

    def hardware_target_for(self, logical_target: float) -> float:
        """Hardware reading at which the logical clock will show ``logical_target``."""
        return logical_target - self.adjustment

    def set_to(self, logical_target: float, hardware_reading: float, monotonic: bool = False) -> AdjustmentResult:
        """Set the logical clock to ``logical_target`` right now.

        With ``monotonic=True`` the adjustment is suppressed if it would move
        the clock backwards (the clock keeps its current, larger value).
        """
        before = self.value(hardware_reading)
        if monotonic and logical_target < before:
            return AdjustmentResult(before=before, after=before, delta=0.0, suppressed=True)
        self.adjustment = logical_target - hardware_reading
        return AdjustmentResult(before=before, after=logical_target, delta=logical_target - before)

    def shift_by(self, delta: float) -> None:
        """Apply a relative correction of ``delta`` (used by the averaging baselines)."""
        self.adjustment += delta
