"""The authenticated Srikanth-Toueg clock synchronization algorithm.

Resilience: tolerates up to ``f = ceil(n/2) - 1`` Byzantine processes
(``n > 2f``), the optimum achievable with signatures.

Protocol (for process ``p``, round ``k = 1, 2, ...``):

1. When ``p``'s logical clock reaches ``k * P`` and ``p`` has not yet
   supported round ``k``, it signs the statement ``RoundContent(k)`` and
   broadcasts the signature (message :class:`~repro.core.messages.SignedRound`).
2. When ``p`` holds valid round-``k`` signatures from ``f + 1`` **distinct**
   processes, it *accepts* round ``k``:

   * it sets its logical clock to ``k * P + alpha``,
   * it relays the accepting signature set to everyone
     (:class:`~repro.core.messages.SignatureBundle`), adding its own signature
     if it had not broadcast yet -- this relay is what bounds the spread of
     acceptance times among correct processes by one message delay,
   * it starts waiting for round ``k + 1`` (timer at logical ``(k+1) * P``).

Round ``0`` (optional start-up phase) uses the same machinery: a booting
process immediately signs and broadcasts round 0, and accepting round 0 sets
the clock to ``alpha``.

A *joiner* (late-starting or recovering process) runs the same code but stays
passive -- no broadcasts, no timers -- until its first acceptance, at which
point it adopts that round's clock value and participates normally.
"""

from __future__ import annotations

from ..broadcast.authenticated import SignatureTracker
from ..crypto.signatures import KeyStore, SecretKey
from .messages import RoundContent, SignatureBundle, SignedRound
from .params import SyncParams
from .process import ClockSyncProcess


class AuthSyncProcess(ClockSyncProcess):
    """A correct process running the authenticated synchronizer."""

    algorithm_name = "st-auth"

    def __init__(
        self,
        pid: int,
        params: SyncParams,
        keystore: KeyStore,
        secret_key: SecretKey,
        monotonic: bool = False,
        use_startup: bool = False,
        joiner: bool = False,
    ) -> None:
        super().__init__(pid, params, monotonic=monotonic, use_startup=use_startup, joiner=joiner)
        if secret_key.owner != pid:
            raise ValueError(
                f"process {pid} was given the secret key of process {secret_key.owner}"
            )
        self.keystore = keystore
        self.secret_key = secret_key
        self.tracker = SignatureTracker(
            keystore=keystore,
            threshold=params.f + 1,
            content_factory=RoundContent,
        )

    # -- protocol actions -------------------------------------------------------

    def announce_round(self, round_: int) -> None:
        """Sign round ``round_`` and broadcast the signature (at most once)."""
        if round_ in self.broadcast_rounds:
            return
        self.broadcast_rounds.add(round_)
        signature = self.tracker.add_own(round_, self.secret_key)
        self.broadcast(SignedRound(round=round_, signature=signature))
        # Our own signature might complete the threshold (e.g. n = 1 + 2f with
        # all f faulty processes having signed already).
        self.try_accept()

    def resend_support(self, round_: int) -> None:
        """Re-broadcast the previously created signature for ``round_`` (start-up retries)."""
        if round_ not in self.broadcast_rounds:
            self.announce_round(round_)
            return
        if self.tracker.has_signer(round_, self.pid):
            signature = next(
                s for s in self.tracker.signatures(round_) if s.signer == self.pid
            )
            self.broadcast(SignedRound(round=round_, signature=signature))

    def after_acceptance(self, round_: int) -> None:
        """Relay the acceptance proof so every correct process accepts within one delay."""
        if round_ not in self.broadcast_rounds:
            # Contribute our own signature as well, as the paper prescribes.
            self.broadcast_rounds.add(round_)
            self.tracker.add_own(round_, self.secret_key)
        proof = self.tracker.acceptance_proof(round_)
        self.broadcast(SignatureBundle(round=round_, signatures=proof))

    def on_round_advanced(self, new_round: int) -> None:
        self.tracker.set_floor(new_round)

    def pending_accepts(self) -> list[int]:
        minimum = self.current_round if self.current_round is not None else 0
        return self.tracker.reached_rounds(minimum_round=minimum)

    # -- message handling ----------------------------------------------------------

    def on_message(self, sender: int, payload: object) -> None:
        if isinstance(payload, SignedRound):
            if self.tracker.add(payload.round, payload.signature):
                self.try_accept()
        elif isinstance(payload, SignatureBundle):
            if self.tracker.add_many(payload.round, payload.signatures) > 0:
                self.try_accept()
        # Everything else (garbage, baseline messages, echo messages) is ignored.
