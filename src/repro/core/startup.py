"""System start-up (initial synchronization).

The synchronization theorems assume the system starts in an approximately
synchronized state.  Srikanth and Toueg also describe how to *reach* that
state from scratch: a booting process announces "round 0" (readiness) and the
ordinary acceptance rule -- ``f + 1`` signatures or ``2f + 1`` echoes -- makes
every correct process start its logical clock at ``alpha`` within one
acceptance spread of the others, regardless of when exactly each process
booted (a process that boots late simply keeps re-announcing and at the
latest synchronizes at round 1).

The mechanics live in the algorithm classes themselves (constructed with
``use_startup=True``); this module provides the scenario helpers and the
analytic statement of the guarantee.
"""

from __future__ import annotations

import random

from .bounds import acceptance_latency, acceptance_spread
from .params import SyncParams


def staggered_boot_times(n: int, spread: float, seed: int = 0) -> list[float]:
    """Draw ``n`` boot times uniformly from ``[0, spread]``, pinning the extremes.

    The first process boots at 0 and the last at ``spread`` so that the
    configured dispersion is actually realised in every scenario.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if spread < 0:
        raise ValueError("spread must be non-negative")
    rng = random.Random(seed)
    if n == 1:
        return [0.0]
    times = [0.0, spread] + [rng.uniform(0.0, spread) for _ in range(n - 2)]
    return times[:n]


def startup_completion_bound(params: SyncParams, boot_spread: float, algorithm: str = "auth") -> float:
    """Real time by which every correct process has synchronized at least once.

    A correct process that boots at time ``b`` announces round 0 immediately
    and keeps re-announcing.  Once all correct processes are up (by
    ``boot_spread``), correctness of the broadcast primitive guarantees a
    round-0 acceptance within the acceptance latency plus one retry interval;
    processes that nevertheless missed round 0 synchronize at round 1, which
    completes within ``(1+rho) * P`` local time of the round-0 acceptance.
    The returned bound covers the worst of the two paths.
    """
    retry_interval = 4.0 * params.tdel * (1.0 + params.rho)
    round0 = boot_spread + retry_interval + acceptance_latency(params, algorithm)
    round1 = round0 + (1.0 + params.rho) * params.period + acceptance_latency(params, algorithm)
    return round1 + acceptance_spread(params, algorithm)
