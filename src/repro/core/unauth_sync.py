"""The non-authenticated Srikanth-Toueg clock synchronization algorithm.

Resilience: tolerates up to ``f = ceil(n/3) - 1`` Byzantine processes
(``n > 3f``) -- the optimum achievable without authentication.

The algorithm is the same two-step pattern as the authenticated variant, but
"broadcasting round k" and "accepting round k" go through the echo broadcast
primitive (:mod:`repro.broadcast.echo`) instead of signatures:

1. When the logical clock reaches ``k * P``: send ``(init, k)`` to everyone.
2. On ``f + 1`` distinct inits or ``f + 1`` distinct echoes for round ``k``:
   send ``(echo, k)`` to everyone (once).
3. On ``2f + 1`` distinct echoes for round ``k``: *accept* round ``k`` -- set
   the logical clock to ``k * P + alpha`` and start waiting for ``k + 1``.

Acceptance spreads among correct processes within ``2 * tdel`` (one hop for
the ``f + 1`` correct echoes behind the first acceptance to arrive, one hop
for the remaining correct processes' echoes), which is why the analytic
bounds in :mod:`repro.core.bounds` use ``SIGMA = 2 * tdel`` for this variant.

Round 0 (start-up) and the passive joiner mode work exactly as in the
authenticated variant.
"""

from __future__ import annotations

from ..broadcast.echo import EchoTracker
from ..broadcast.primitive import PrimitiveActions
from .messages import EchoMessage, InitMessage
from .params import SyncParams
from .process import ClockSyncProcess


class EchoSyncProcess(ClockSyncProcess):
    """A correct process running the non-authenticated (echo) synchronizer."""

    algorithm_name = "st-echo"

    def __init__(
        self,
        pid: int,
        params: SyncParams,
        monotonic: bool = False,
        use_startup: bool = False,
        joiner: bool = False,
    ) -> None:
        super().__init__(pid, params, monotonic=monotonic, use_startup=use_startup, joiner=joiner)
        self.tracker = EchoTracker(n=params.n, f=params.f)

    # -- protocol actions ---------------------------------------------------------

    def announce_round(self, round_: int) -> None:
        """Send ``(init, round)`` to everyone (at most once per round)."""
        if round_ in self.broadcast_rounds:
            return
        self.broadcast_rounds.add(round_)
        self.broadcast(InitMessage(round=round_))
        actions = self.tracker.note_own_init(round_, self.pid)
        self._apply_actions(round_, actions)

    def resend_support(self, round_: int) -> None:
        """Re-broadcast the init (and echo, if already sent) for ``round_`` (start-up retries)."""
        if round_ not in self.broadcast_rounds:
            self.announce_round(round_)
            return
        self.broadcast(InitMessage(round=round_))
        if self.tracker.has_echoed(round_):
            self.broadcast(EchoMessage(round=round_))

    def after_acceptance(self, round_: int) -> None:
        # The relay property is provided by the echo mechanism itself: the
        # 2f+1 echoes that caused this acceptance were sent to everyone.
        # Nothing extra to do.
        return

    def on_round_advanced(self, new_round: int) -> None:
        self.tracker.set_floor(new_round)

    def pending_accepts(self) -> list[int]:
        minimum = self.current_round if self.current_round is not None else 0
        return self.tracker.reached_rounds(minimum_round=minimum)

    # -- echo plumbing -------------------------------------------------------------

    def _send_echo(self, round_: int) -> None:
        if self.tracker.has_echoed(round_):
            return
        # A passive joiner only listens; it still accepts on 2f+1 echoes from
        # others (n - f >= 2f + 1 correct processes echo regardless).
        if self.joiner and self.current_round is None:
            return
        self.broadcast(EchoMessage(round=round_))
        actions = self.tracker.note_own_echo(round_, self.pid)
        self._apply_actions(round_, actions)

    def _apply_actions(self, round_: int, actions: PrimitiveActions) -> None:
        if actions.send_echo:
            self._send_echo(round_)
        if actions.accept:
            self.try_accept()

    # -- message handling -------------------------------------------------------------

    def on_message(self, sender: int, payload: object) -> None:
        if isinstance(payload, InitMessage):
            actions = self.tracker.record_init(payload.round, sender)
            self._apply_actions(payload.round, actions)
        elif isinstance(payload, EchoMessage):
            actions = self.tracker.record_echo(payload.round, sender)
            self._apply_actions(payload.round, actions)
        # Everything else is ignored.
