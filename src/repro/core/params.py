"""Model and algorithm parameters.

:class:`SyncParams` bundles the Srikanth-Toueg model parameters (number of
processes ``n``, fault bound ``f``, drift bound ``rho``, message delay bounds
``tmin``/``tdel``) with the algorithm parameters (resynchronization period
``P`` and adjustment constant ``alpha``).

Conventions
-----------
* Hardware clock rates lie in ``[1/(1+rho), 1+rho]``.
* Message delays between any two processes lie in ``[tmin, tdel]``; faulty
  processes are subject to the same bounds (they control *content*, not
  physics).
* The logical clock of process ``p`` is ``C_p(t) = H_p(t) + A_p(t)`` where
  ``A_p`` is the step function of adjustments applied by the algorithm.
* Round ``k >= 1`` resynchronizes at logical time ``k * period``; on accepting
  round ``k`` a process sets ``C := k * period + alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional


def default_alpha(rho: float, tdel: float) -> float:
    """The canonical adjustment constant ``alpha = (1 + rho) * tdel``.

    ``alpha`` compensates for the time a round-k message spends in transit:
    when a process accepts round ``k`` it knows at least ``0`` and at most
    ``tdel`` real time (hence at most ``(1+rho)*tdel`` local time) has passed
    since the earliest correct process announced round ``k``.  Setting the
    clock to ``k*P + alpha`` therefore never sets a correct clock back in the
    benign case and keeps the adjustment bounded by a constant.
    """
    return (1.0 + rho) * tdel


@dataclass(frozen=True)
class SyncParams:
    """All model and algorithm parameters of a synchronization scenario."""

    #: Total number of processes.
    n: int
    #: Maximum number of faulty processes the algorithm must tolerate.
    f: int
    #: Hardware clock drift bound; rates lie in ``[1/(1+rho), 1+rho]``.
    rho: float = 1e-4
    #: Maximum message delay.
    tdel: float = 0.01
    #: Minimum message delay.
    tmin: float = 0.0
    #: Resynchronization period in logical time units.
    period: float = 1.0
    #: Adjustment constant; ``None`` selects :func:`default_alpha`.
    alpha: Optional[float] = None
    #: Bound on the initial dispersion of hardware clock values among correct
    #: processes (logical units).  Used by the start-up analysis.
    initial_offset_spread: float = 0.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"n must be positive, got {self.n}")
        if not 0 <= self.f < self.n:
            raise ValueError(f"f must satisfy 0 <= f < n, got f={self.f}, n={self.n}")
        if self.rho < 0:
            raise ValueError(f"rho must be non-negative, got {self.rho}")
        if self.tdel <= 0:
            raise ValueError(f"tdel must be positive, got {self.tdel}")
        if not 0 <= self.tmin <= self.tdel:
            raise ValueError(f"tmin must satisfy 0 <= tmin <= tdel, got {self.tmin}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.alpha is not None and self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.initial_offset_spread < 0:
            raise ValueError("initial_offset_spread must be non-negative")

    # -- derived quantities --------------------------------------------------

    @property
    def alpha_value(self) -> float:
        """The adjustment constant actually used (explicit value or the default)."""
        if self.alpha is not None:
            return self.alpha
        return default_alpha(self.rho, self.tdel)

    @property
    def min_rate(self) -> float:
        """Slowest allowed hardware clock rate ``1/(1+rho)``."""
        return 1.0 / (1.0 + self.rho)

    @property
    def max_rate(self) -> float:
        """Fastest allowed hardware clock rate ``1+rho``."""
        return 1.0 + self.rho

    @property
    def delay_uncertainty(self) -> float:
        """Width of the message-delay window, ``tdel - tmin``."""
        return self.tdel - self.tmin

    @property
    def honest_count(self) -> int:
        """Number of processes guaranteed to be correct, ``n - f``."""
        return self.n - self.f

    # -- resilience ------------------------------------------------------------

    def max_faults_authenticated(self) -> int:
        """Largest ``f`` tolerated by the authenticated algorithm: ``ceil(n/2) - 1``."""
        return math.ceil(self.n / 2) - 1

    def max_faults_unauthenticated(self) -> int:
        """Largest ``f`` tolerated by the non-authenticated algorithm: ``ceil(n/3) - 1``."""
        return math.ceil(self.n / 3) - 1

    def authenticated_resilient(self) -> bool:
        """Whether ``f`` is within the authenticated algorithm's resilience bound (n > 2f)."""
        return self.n > 2 * self.f

    def unauthenticated_resilient(self) -> bool:
        """Whether ``f`` is within the non-authenticated algorithm's resilience bound (n > 3f)."""
        return self.n > 3 * self.f

    # -- convenience -----------------------------------------------------------

    def with_(self, **changes) -> "SyncParams":
        """Return a copy of these parameters with the given fields replaced."""
        return replace(self, **changes)

    def round_logical_time(self, k: int) -> float:
        """Logical time at which round ``k`` is due: ``k * period``."""
        return k * self.period

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"n={self.n} f={self.f} rho={self.rho:g} tdel={self.tdel:g} tmin={self.tmin:g} "
            f"P={self.period:g} alpha={self.alpha_value:g}"
        )


def params_for(
    n: int,
    f: Optional[int] = None,
    authenticated: bool = True,
    rho: float = 1e-4,
    tdel: float = 0.01,
    tmin: float = 0.0,
    period: float = 1.0,
    alpha: Optional[float] = None,
    initial_offset_spread: float = 0.0,
) -> SyncParams:
    """Build :class:`SyncParams` with ``f`` defaulting to the maximum tolerable value.

    ``authenticated`` selects which resilience bound is used for the default
    ``f``: ``ceil(n/2)-1`` for the authenticated algorithm, ``ceil(n/3)-1``
    for the non-authenticated one.
    """
    if f is None:
        f = math.ceil(n / 2) - 1 if authenticated else math.ceil(n / 3) - 1
        f = max(f, 0)
    return SyncParams(
        n=n,
        f=f,
        rho=rho,
        tdel=tdel,
        tmin=tmin,
        period=period,
        alpha=alpha,
        initial_offset_spread=initial_offset_spread,
    )
