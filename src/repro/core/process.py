"""Shared machinery of all clock-synchronization processes.

:class:`ClockSyncProcess` extends the framework :class:`~repro.sim.process.Process`
with the notions every synchronizer needs:

* a :class:`~repro.core.clock.LogicalClock` and :meth:`logical_time`,
* logical-clock timers (fire when the *logical* clock reaches a target),
* :meth:`resynchronize_to`, which applies an adjustment and emits both the
  adjustment and a :class:`~repro.sim.trace.ResyncEvent` into the recorder,
* the three operating modes shared by the Srikanth-Toueg variants:

  - normal (round 1 scheduled at logical time ``P``),
  - start-up (round 0 is broadcast immediately at boot; accepting it starts
    the logical clock at ``alpha``),
  - joiner (fully passive until the first acceptance, then a normal member).
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..sim.process import Process, Timer
from ..sim.trace import ResyncEvent
from .clock import LogicalClock
from .params import SyncParams


class ClockSyncProcess(Process):
    """Base class for every synchronization algorithm in this package."""

    #: Name used by reports; subclasses override.
    algorithm_name = "abstract"

    def __init__(
        self,
        pid: int,
        params: SyncParams,
        monotonic: bool = False,
        use_startup: bool = False,
        joiner: bool = False,
    ) -> None:
        super().__init__(pid)
        self.params = params
        self.monotonic = monotonic
        self.use_startup = use_startup
        self.joiner = joiner
        self.logical = LogicalClock()
        #: Next round this process is waiting to accept (None while a passive joiner).
        self.current_round: Optional[int] = None
        #: Rounds for which this process already broadcast its own support.
        self.broadcast_rounds: set[int] = set()
        #: Rounds this process accepted, in order.
        self.accepted_rounds: list[int] = []
        self._round_timer: Optional[Timer] = None

    # -- time ----------------------------------------------------------------------

    def logical_time(self) -> float:
        """Current logical clock value."""
        return self.logical.value(self.local_time())

    def set_logical_timer(self, logical_target: float, key: Hashable) -> Timer:
        """Set a timer that fires when the *logical* clock reaches ``logical_target``."""
        hardware_target = self.logical.hardware_target_for(logical_target)
        return self.set_timer_local(hardware_target, key=key)

    # -- resynchronization -----------------------------------------------------------

    def resynchronize_to(self, round_: int, logical_target: float) -> None:
        """Set the logical clock to ``logical_target`` and record the resynchronization."""
        now = self.sim.now
        reading = self.local_time()
        result = self.logical.set_to(logical_target, reading, monotonic=self.monotonic)
        self.record_adjustment(now, self.logical.adjustment)
        self.record_resync(
            ResyncEvent(
                pid=self.pid,
                round=round_,
                time=now,
                logical_before=result.before,
                logical_after=result.after,
            )
        )
        self.accepted_rounds.append(round_)

    # -- round scheduling --------------------------------------------------------------

    def schedule_round(self, round_: int) -> None:
        """(Re)arm the timer for broadcasting round ``round_``."""
        if self._round_timer is not None:
            self.cancel_timer(self._round_timer)
        target = self.params.round_logical_time(round_)
        self._round_timer = self.set_logical_timer(target, key=("round", round_))

    def first_round(self) -> int:
        """The first round this process participates in (0 with start-up, else 1)."""
        return 0 if self.use_startup else 1

    # -- hooks shared by both Srikanth-Toueg variants ------------------------------------

    def on_start(self) -> None:
        if self.joiner:
            # A joiner observes silently; its current_round stays None until it
            # accepts some round through the regular rule.
            self.current_round = None
            return
        self.current_round = self.first_round()
        if self.use_startup:
            # Round 0 is due immediately: announce readiness right away.  A
            # process that boots after its peers may have missed their round-0
            # messages (messages to a down node are lost), so it keeps
            # re-announcing until the system has started.
            self.announce_round(0)
            self._schedule_startup_retry()
        else:
            self.schedule_round(self.current_round)

    def _schedule_startup_retry(self) -> None:
        retry_interval = 4.0 * self.params.tdel * (1.0 + self.params.rho)
        self.set_timer_local(self.local_time() + retry_interval, key=("startup-retry",))

    def on_timer(self, key: Hashable) -> None:
        if not isinstance(key, tuple):
            return
        if key[0] == "startup-retry":
            if self.current_round == 0:
                self.resend_support(0)
                self._schedule_startup_retry()
            return
        if key[0] != "round":
            return
        round_ = key[1]
        if self.current_round is None or round_ != self.current_round:
            return
        self.announce_round(round_)

    # -- extension points ---------------------------------------------------------------

    def announce_round(self, round_: int) -> None:
        """Broadcast this process's support for ``round_`` (algorithm-specific)."""
        raise NotImplementedError

    def resend_support(self, round_: int) -> None:
        """Re-broadcast previously announced support (used by the start-up retry)."""
        raise NotImplementedError

    def accept_round(self, round_: int) -> None:
        """Handle acceptance of ``round_``: resynchronize and arm the next round."""
        logical_target = self.params.round_logical_time(round_) + self.params.alpha_value
        self.resynchronize_to(round_, logical_target)
        self.after_acceptance(round_)
        self.current_round = round_ + 1
        self.on_round_advanced(round_ + 1)
        self.schedule_round(self.current_round)

    def after_acceptance(self, round_: int) -> None:
        """Algorithm-specific follow-up to an acceptance (e.g. relaying proofs)."""

    def on_round_advanced(self, new_round: int) -> None:
        """Called after ``current_round`` moved forward (used to garbage-collect trackers)."""

    # -- common acceptance loop ------------------------------------------------------------

    def pending_accepts(self) -> list[int]:
        """Rounds at or above ``current_round`` whose threshold has been reached."""
        raise NotImplementedError

    def try_accept(self) -> None:
        """Accept every pending round in order (normally at most one)."""
        if self.halted:
            return
        if self.current_round is None:
            # Passive joiner: accept the highest reached round and become active.
            reached = self.pending_accepts()
            if not reached:
                return
            round_ = max(reached)
            self.accept_round(round_)
            return
        while True:
            reached = [r for r in self.pending_accepts() if r >= self.current_round]
            if not reached:
                return
            self.accept_round(min(reached))
