"""Guarantee verification: does an execution respect the paper's theorems?

:func:`verify_guarantees` compares the exact measurements of a trace with the
analytic bounds of :mod:`repro.core.bounds` and returns a structured verdict.
It is the workhorse of the integration tests and of experiments E1/E5/E10:
under every tolerated adversary the verdict must be all-green, and above the
resilience threshold the breaking attacks must produce a red verdict
(otherwise the experiment itself is broken).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core import bounds as bounds_mod
from ..core.params import SyncParams
from ..sim.recorder import OnlineMetricsSummary
from ..sim.trace import Trace
from . import metrics
from .envelope import accuracy_summary


@dataclass(frozen=True)
class GuaranteeCheck:
    """One guarantee: its measured value, its bound, and whether it holds."""

    name: str
    measured: float
    bound: float
    holds: bool
    direction: str = "<="

    def describe(self) -> str:
        return f"{self.name}: measured {self.measured:.6g} {self.direction} bound {self.bound:.6g}: {'OK' if self.holds else 'VIOLATED'}"


@dataclass
class GuaranteeReport:
    """Verdict over all guarantees checked for one execution."""

    algorithm: str
    params: SyncParams
    checks: list[GuaranteeCheck] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return all(check.holds for check in self.checks)

    def violated(self) -> list[GuaranteeCheck]:
        return [check for check in self.checks if not check.holds]

    def by_name(self, name: str) -> GuaranteeCheck:
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(name)

    def describe(self) -> str:
        lines = [f"Guarantees for {self.algorithm} ({self.params.describe()}):"]
        lines.extend("  " + check.describe() for check in self.checks)
        return "\n".join(lines)


@dataclass(frozen=True)
class ExecutionMeasurements:
    """The measured quantities guarantee verification compares against bounds.

    Both observation paths produce this: :func:`measure_trace` computes it
    post hoc from a full :class:`~repro.sim.trace.Trace`, and
    :func:`measure_summary` reads it from a streamed
    :class:`~repro.sim.recorder.OnlineMetricsSummary`.  The two agree
    float-for-float for the same execution, so the verdicts agree too.
    """

    steady_skew: float
    acceptance_spread: float
    period_stats: metrics.PeriodStats
    #: Largest |adjustment| over honest resyncs (first skipped); None if none.
    max_adjustment: Optional[float]
    min_completed_round: int
    #: Whether every honest process accepted all needed rounds; None when
    #: liveness was not evaluated (``expected_round`` == 0).
    liveness_ok: Optional[bool]
    #: (slowest, fastest) long-run logical rates over the steady interval;
    #: None when the steady interval is shorter than one period.
    long_run_rates: Optional[tuple[float, float]]


def measure_trace(
    trace: Trace,
    params: SyncParams,
    algorithm: str = bounds_mod.AUTH,
    expected_round: int = 0,
) -> ExecutionMeasurements:
    """Exact guarantee-relevant measurements of a full execution trace."""
    theoretical = bounds_mod.theoretical_bounds(params, algorithm)
    adjustments = metrics.adjustment_magnitudes(trace)
    long_run_rates: Optional[tuple[float, float]] = None
    start = metrics.steady_state_start(trace)
    if trace.end_time - start > params.period:
        summary = accuracy_summary(
            trace,
            rate_low=theoretical.rate_min,
            rate_high=theoretical.rate_max,
            t_start=start,
            t_end=trace.end_time,
        )
        long_run_rates = (summary.slowest_long_run_rate, summary.fastest_long_run_rate)
    return ExecutionMeasurements(
        steady_skew=metrics.steady_state_skew(trace),
        acceptance_spread=metrics.max_acceptance_spread(trace),
        period_stats=metrics.period_stats(trace),
        max_adjustment=max(adjustments) if adjustments else None,
        min_completed_round=trace.min_completed_round(),
        liveness_ok=metrics.liveness(trace, expected_round) if expected_round > 0 else None,
        long_run_rates=long_run_rates,
    )


def period_stats_from_summary(summary: OnlineMetricsSummary) -> metrics.PeriodStats:
    """The streamed period extremes as a :class:`~repro.analysis.metrics.PeriodStats`."""
    if not summary.period_count:
        return metrics.PeriodStats.empty()
    return metrics.PeriodStats(minimum=summary.period_min, maximum=summary.period_max, count=summary.period_count)


def measure_summary(
    summary: OnlineMetricsSummary,
    params: SyncParams,
    expected_round: int = 0,
) -> ExecutionMeasurements:
    """Guarantee-relevant measurements read off a streamed metrics summary."""
    return ExecutionMeasurements(
        steady_skew=summary.steady_skew,
        acceptance_spread=summary.acceptance_spread,
        period_stats=period_stats_from_summary(summary),
        max_adjustment=summary.max_adjustment,
        min_completed_round=summary.completed_round,
        liveness_ok=summary.liveness(expected_round) if expected_round > 0 else None,
        long_run_rates=summary.long_run_rates(params.period),
    )


def verify_measurements(
    measured: ExecutionMeasurements,
    params: SyncParams,
    algorithm: str = bounds_mod.AUTH,
    expected_round: int = 0,
    slack: float = 1e-9,
) -> GuaranteeReport:
    """Compare measured quantities against the paper's analytic bounds."""
    report = GuaranteeReport(algorithm=algorithm, params=params)
    checks = report.checks

    theoretical = bounds_mod.theoretical_bounds(params, algorithm)

    # Precision (steady state).
    checks.append(
        GuaranteeCheck(
            name="precision",
            measured=measured.steady_skew,
            bound=theoretical.precision + slack,
            holds=measured.steady_skew <= theoretical.precision + slack,
        )
    )

    # Acceptance spread (relay property in action).
    checks.append(
        GuaranteeCheck(
            name="acceptance_spread",
            measured=measured.acceptance_spread,
            bound=theoretical.sigma + slack,
            holds=measured.acceptance_spread <= theoretical.sigma + slack,
        )
    )

    # Resynchronization period bounds.
    stats = measured.period_stats
    if stats.count > 0:
        checks.append(
            GuaranteeCheck(
                name="period_min",
                measured=stats.minimum,
                bound=theoretical.beta_min - slack,
                holds=stats.minimum >= theoretical.beta_min - slack,
                direction=">=",
            )
        )
        checks.append(
            GuaranteeCheck(
                name="period_max",
                measured=stats.maximum,
                bound=theoretical.beta_max + slack,
                holds=stats.maximum <= theoretical.beta_max + slack,
            )
        )

    # Adjustment magnitude.
    if measured.max_adjustment is not None:
        checks.append(
            GuaranteeCheck(
                name="max_adjustment",
                measured=measured.max_adjustment,
                bound=theoretical.max_adjustment + slack,
                holds=measured.max_adjustment <= theoretical.max_adjustment + slack,
            )
        )

    # Liveness.
    if expected_round > 0 and measured.liveness_ok is not None:
        checks.append(
            GuaranteeCheck(
                name="liveness",
                measured=float(measured.min_completed_round),
                bound=float(expected_round),
                holds=measured.liveness_ok,
                direction=">=",
            )
        )

    # Accuracy: long-run logical clock rate within the analytic rate bounds.
    if measured.long_run_rates is not None:
        slowest, fastest = measured.long_run_rates
        checks.append(
            GuaranteeCheck(
                name="accuracy_rate_max",
                measured=fastest,
                bound=theoretical.rate_max + slack,
                holds=fastest <= theoretical.rate_max + slack,
            )
        )
        checks.append(
            GuaranteeCheck(
                name="accuracy_rate_min",
                measured=slowest,
                bound=theoretical.rate_min - slack,
                holds=slowest >= theoretical.rate_min - slack,
                direction=">=",
            )
        )

    return report


def verify_guarantees(
    trace: Trace,
    params: SyncParams,
    algorithm: str = bounds_mod.AUTH,
    expected_round: int = 0,
    slack: float = 1e-9,
) -> GuaranteeReport:
    """Check precision, period, acceptance spread, adjustment size, liveness and accuracy.

    ``expected_round`` > 0 additionally requires every honest process to have
    accepted all rounds up to that number (liveness).  ``slack`` is a tiny
    numerical tolerance added to every bound.
    """
    measured = measure_trace(trace, params, algorithm=algorithm, expected_round=expected_round)
    return verify_measurements(measured, params, algorithm=algorithm, expected_round=expected_round, slack=slack)


def verify_summary(
    summary: OnlineMetricsSummary,
    params: SyncParams,
    algorithm: str = bounds_mod.AUTH,
    expected_round: int = 0,
    slack: float = 1e-9,
) -> GuaranteeReport:
    """:func:`verify_guarantees` for the streaming (no-trace) observation path."""
    measured = measure_summary(summary, params, expected_round=expected_round)
    return verify_measurements(measured, params, algorithm=algorithm, expected_round=expected_round, slack=slack)
