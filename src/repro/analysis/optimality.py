"""Guarantee verification: does an execution respect the paper's theorems?

:func:`verify_guarantees` compares the exact measurements of a trace with the
analytic bounds of :mod:`repro.core.bounds` and returns a structured verdict.
It is the workhorse of the integration tests and of experiments E1/E5/E10:
under every tolerated adversary the verdict must be all-green, and above the
resilience threshold the breaking attacks must produce a red verdict
(otherwise the experiment itself is broken).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import bounds as bounds_mod
from ..core.params import SyncParams
from ..sim.trace import Trace
from . import metrics
from .envelope import accuracy_summary


@dataclass(frozen=True)
class GuaranteeCheck:
    """One guarantee: its measured value, its bound, and whether it holds."""

    name: str
    measured: float
    bound: float
    holds: bool
    direction: str = "<="

    def describe(self) -> str:
        return f"{self.name}: measured {self.measured:.6g} {self.direction} bound {self.bound:.6g}: {'OK' if self.holds else 'VIOLATED'}"


@dataclass
class GuaranteeReport:
    """Verdict over all guarantees checked for one execution."""

    algorithm: str
    params: SyncParams
    checks: list[GuaranteeCheck] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return all(check.holds for check in self.checks)

    def violated(self) -> list[GuaranteeCheck]:
        return [check for check in self.checks if not check.holds]

    def by_name(self, name: str) -> GuaranteeCheck:
        for check in self.checks:
            if check.name == name:
                return check
        raise KeyError(name)

    def describe(self) -> str:
        lines = [f"Guarantees for {self.algorithm} ({self.params.describe()}):"]
        lines.extend("  " + check.describe() for check in self.checks)
        return "\n".join(lines)


def verify_guarantees(
    trace: Trace,
    params: SyncParams,
    algorithm: str = bounds_mod.AUTH,
    expected_round: int = 0,
    slack: float = 1e-9,
) -> GuaranteeReport:
    """Check precision, period, acceptance spread, adjustment size, liveness and accuracy.

    ``expected_round`` > 0 additionally requires every honest process to have
    accepted all rounds up to that number (liveness).  ``slack`` is a tiny
    numerical tolerance added to every bound.
    """
    report = GuaranteeReport(algorithm=algorithm, params=params)
    checks = report.checks

    theoretical = bounds_mod.theoretical_bounds(params, algorithm)

    # Precision (steady state).
    measured_skew = metrics.steady_state_skew(trace)
    checks.append(
        GuaranteeCheck(
            name="precision",
            measured=measured_skew,
            bound=theoretical.precision + slack,
            holds=measured_skew <= theoretical.precision + slack,
        )
    )

    # Acceptance spread (relay property in action).
    spread = metrics.max_acceptance_spread(trace)
    checks.append(
        GuaranteeCheck(
            name="acceptance_spread",
            measured=spread,
            bound=theoretical.sigma + slack,
            holds=spread <= theoretical.sigma + slack,
        )
    )

    # Resynchronization period bounds.
    stats = metrics.period_stats(trace)
    if stats.count > 0:
        checks.append(
            GuaranteeCheck(
                name="period_min",
                measured=stats.minimum,
                bound=theoretical.beta_min - slack,
                holds=stats.minimum >= theoretical.beta_min - slack,
                direction=">=",
            )
        )
        checks.append(
            GuaranteeCheck(
                name="period_max",
                measured=stats.maximum,
                bound=theoretical.beta_max + slack,
                holds=stats.maximum <= theoretical.beta_max + slack,
            )
        )

    # Adjustment magnitude.
    adjustments = metrics.adjustment_magnitudes(trace)
    if adjustments:
        worst_adjustment = max(adjustments)
        checks.append(
            GuaranteeCheck(
                name="max_adjustment",
                measured=worst_adjustment,
                bound=theoretical.max_adjustment + slack,
                holds=worst_adjustment <= theoretical.max_adjustment + slack,
            )
        )

    # Liveness.
    if expected_round > 0:
        alive = metrics.liveness(trace, expected_round)
        checks.append(
            GuaranteeCheck(
                name="liveness",
                measured=float(trace.min_completed_round()),
                bound=float(expected_round),
                holds=alive,
                direction=">=",
            )
        )

    # Accuracy: long-run logical clock rate within the analytic rate bounds.
    start = metrics.steady_state_start(trace)
    if trace.end_time - start > params.period:
        summary = accuracy_summary(
            trace,
            rate_low=theoretical.rate_min,
            rate_high=theoretical.rate_max,
            t_start=start,
            t_end=trace.end_time,
        )
        checks.append(
            GuaranteeCheck(
                name="accuracy_rate_max",
                measured=summary.fastest_long_run_rate,
                bound=theoretical.rate_max + slack,
                holds=summary.fastest_long_run_rate <= theoretical.rate_max + slack,
            )
        )
        checks.append(
            GuaranteeCheck(
                name="accuracy_rate_min",
                measured=summary.slowest_long_run_rate,
                bound=theoretical.rate_min - slack,
                holds=summary.slowest_long_run_rate >= theoretical.rate_min - slack,
                direction=">=",
            )
        )

    return report
