"""Plain-text result tables.

The benchmark harness regenerates the paper's "tables" (one per reproduced
claim) as aligned plain-text tables; examples print the same tables.  This
module is a tiny dependency-free table formatter so results look the same in
test logs, benchmark output and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned table with a title and optional notes."""

    title: str
    headers: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    precision: int = 5

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells but the table has {len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def add_rows(self, rows: Iterable[Sequence[object]]) -> None:
        """Append many rows (e.g. the output of a streamed sweep fold)."""
        for row in rows:
            self.add_row(*row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[object]:
        """All values of the named column."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        cells = [[_format_cell(v, self.precision) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        cells = [[_format_cell(v, self.precision) for v in row] for row in self.rows]
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in cells:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"_note: {note}_")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def render_tables(tables: Iterable[Table]) -> str:
    """Render several tables separated by blank lines."""
    return "\n\n".join(table.render() for table in tables)
