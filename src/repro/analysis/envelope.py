"""Accuracy (rate-envelope) measurements.

The accuracy of a synchronized clock is about how it tracks *real time*:
the paper's optimality result says the logical clocks' rate envelope is the
hardware envelope ``[1/(1+rho), 1+rho]`` up to additive constants that do not
grow with time, and with an excess that vanishes as the period grows -- in
particular the envelope does not depend on ``f`` or ``n``.

This module measures, exactly (over logical-clock breakpoints):

* the long-run rate of each honest logical clock,
* the extreme rates over all windows longer than a minimum width,
* the smallest additive constants ``(a, b)`` for which a given rate envelope
  holds over the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..sim.trace import ProcessTrace, Trace


def _clock_samples(ptrace: ProcessTrace, t_start: float, t_end: float) -> list[tuple[float, float]]:
    """(time, logical value) pairs at all breakpoints, with both sides of each jump."""
    points = {t_start, t_end}
    for t in ptrace.breakpoints():
        if t_start <= t <= t_end:
            points.add(t)
    samples: list[tuple[float, float]] = []
    for t in sorted(points):
        before = ptrace.logical_before(t)
        after = ptrace.logical_at(t)
        samples.append((t, before))
        if after != before:
            samples.append((t, after))
    return samples


def long_run_rate(ptrace: ProcessTrace, t_start: float, t_end: float) -> float:
    """Average rate of the logical clock over ``[t_start, t_end]``."""
    if t_end <= t_start:
        raise ValueError("t_end must exceed t_start")
    return (ptrace.logical_at(t_end) - ptrace.logical_at(t_start)) / (t_end - t_start)


@dataclass(frozen=True)
class RateExtremes:
    """Extreme average rates over windows of at least ``min_window`` length."""

    slowest: float
    fastest: float
    min_window: float


def _pairwise_window_extremes(
    times: Sequence[float], values: Sequence[float], min_window: float
) -> Optional[tuple[float, float]]:
    """Quadratic reference: (slowest, fastest) window rates, or None if no pair fits.

    Kept as the ground truth the hull pass is property-tested against.
    """
    slowest = float("inf")
    fastest = float("-inf")
    count = len(times)
    for i in range(count):
        t1 = times[i]
        v1 = values[i]
        for j in range(i + 1, count):
            width = times[j] - t1
            if width < min_window or width <= 0:
                continue
            rate = (values[j] - v1) / width
            slowest = min(slowest, rate)
            fastest = max(fastest, rate)
    if slowest == float("inf"):
        return None
    return (slowest, fastest)


def _hull_max_rate(times: Sequence[float], values: Sequence[float], min_window: float) -> Optional[float]:
    """Maximum average rate over sample pairs at least ``min_window`` apart.

    The classic maximum-average-segment sweep: walk the right endpoint in
    time order while folding every sample that has fallen at least
    ``min_window`` behind it into a lower convex hull of candidate left
    endpoints; the best left endpoint for a given right endpoint is the
    tangent vertex of that hull (the slope along a lower-convex chain seen
    from a point on the right is unimodal), found by binary search.  Work is
    O(k log h) for k samples and hull size h instead of the quadratic pair
    scan, and the only state beyond the samples is hull-bounded.
    """
    count = len(times)
    best: Optional[float] = None
    hull_t: list[float] = []
    hull_v: list[float] = []
    include = 0  # next sample to become an eligible left endpoint
    for j in range(count):
        tj = times[j]
        vj = values[j]
        # Eligibility must use the same float expressions as the pair scan
        # (``width >= min_window`` and ``width > 0`` -- the positive-width
        # guard matters when min_window <= 0), not algebraic rearrangements.
        # Widths are nonincreasing in ``include``, so the first ineligible
        # sample ends the scan for this right endpoint.
        while include < count:
            t = times[include]
            width = tj - t
            if width < min_window or width <= 0:
                break
            v = values[include]
            include += 1
            if hull_t and t == hull_t[-1]:
                if v >= hull_v[-1]:
                    continue  # the higher of two equal-time points never wins
                hull_t.pop()
                hull_v.pop()
            while len(hull_t) >= 2:
                # Pop the middle point when it lies on or above the chord.
                cross = (hull_t[-1] - hull_t[-2]) * (v - hull_v[-2]) - (
                    hull_v[-1] - hull_v[-2]
                ) * (t - hull_t[-2])
                if cross <= 0.0:
                    hull_t.pop()
                    hull_v.pop()
                else:
                    break
            hull_t.append(t)
            hull_v.append(v)
        if not hull_t:
            continue
        lo = 0
        hi = len(hull_t) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            # slope(mid+1 -> j) >= slope(mid -> j): keep climbing right.
            left = (vj - hull_v[mid]) * (tj - hull_t[mid + 1])
            right = (vj - hull_v[mid + 1]) * (tj - hull_t[mid])
            if left <= right:
                lo = mid + 1
            else:
                hi = mid
        # Evaluate the binary-search landing and its neighbours so a
        # rounding-perturbed comparison cannot cost the true optimum.
        for k in (lo - 1, lo, lo + 1):
            if 0 <= k < len(hull_t):
                rate = (vj - hull_v[k]) / (tj - hull_t[k])
                if best is None or rate > best:
                    best = rate
    return best


def window_rate_extremes(
    times: Sequence[float], values: Sequence[float], min_window: float
) -> Optional[tuple[float, float]]:
    """Exact (slowest, fastest) average rates over windows >= ``min_window``.

    ``times`` must be nondecreasing (both sides of a jump appear as two
    samples at the same time).  Returns ``None`` when no pair of samples is
    at least ``min_window`` apart.  Both observation paths -- the post-hoc
    :func:`rate_extremes` and the streaming recorder -- call this one
    function on the same breakpoint samples, so their window-rate extremes
    are float-for-float identical by construction.
    """
    fastest = _hull_max_rate(times, values, min_window)
    if fastest is None:
        return None
    negated = [-v for v in values]
    slowest = -_hull_max_rate(times, negated, min_window)
    return (slowest, fastest)


def combined_window_extremes(
    samples: Sequence[tuple], t_start: float, t_end: float
) -> Optional[tuple[float, float]]:
    """Extreme window rates over a collection of per-process retained samples.

    ``samples`` holds one ``(times, values, long_run_rate)`` triple per
    process; the minimum window is a quarter of ``[t_start, t_end]`` -- the
    same availability rule :func:`accuracy_summary` applies -- and a process
    whose samples admit no window of that width contributes its long-run rate
    (the fallback :func:`rate_extremes` uses).  Both the streaming recorder's
    ``finalize`` and the shard-merge algebra
    (:meth:`repro.sim.recorder.OnlineMetricsSummary.merge`) fold through this
    one function, so a merged summary's window rates are float-for-float what
    a single recorder observing every process over the combined interval
    would report.  Returns ``None`` when the interval is empty or no process
    contributed samples.
    """
    if t_end <= t_start or not samples:
        return None
    min_window = max((t_end - t_start) / 4.0, 1e-9)
    slowest = float("inf")
    fastest = float("-inf")
    for times, values, rate in samples:
        extremes = window_rate_extremes(times, values, min_window)
        if extremes is None:
            extremes = (rate, rate)
        if extremes[0] < slowest:
            slowest = extremes[0]
        if extremes[1] > fastest:
            fastest = extremes[1]
    if slowest == float("inf"):
        return None
    return (slowest, fastest)


def rate_extremes(ptrace: ProcessTrace, t_start: float, t_end: float, min_window: float) -> RateExtremes:
    """Exact extreme window rates of one logical clock.

    Because the clock is piecewise linear, the extreme average rates over
    windows of length at least ``min_window`` are attained with both window
    endpoints at breakpoints (or at the interval ends), so a pass over the
    breakpoint samples is exact; :func:`window_rate_extremes` performs it
    with a convex-hull sweep instead of the quadratic pair scan.
    """
    samples = _clock_samples(ptrace, t_start, t_end)
    extremes = window_rate_extremes([t for t, _ in samples], [v for _, v in samples], min_window)
    if extremes is None:
        # Window longer than the run: fall back to the long-run rate.
        rate = long_run_rate(ptrace, t_start, t_end)
        return RateExtremes(slowest=rate, fastest=rate, min_window=min_window)
    return RateExtremes(slowest=extremes[0], fastest=extremes[1], min_window=min_window)


@dataclass(frozen=True)
class EnvelopeFit:
    """Smallest additive constants for a two-sided linear rate envelope.

    For all ``t1 <= t2`` in the measured interval::

        rate_low * (t2 - t1) - a  <=  C(t2) - C(t1)  <=  rate_high * (t2 - t1) + b
    """

    rate_low: float
    rate_high: float
    a: float
    b: float


def fit_envelope(
    ptrace: ProcessTrace,
    rate_low: float,
    rate_high: float,
    t_start: float,
    t_end: float,
) -> EnvelopeFit:
    """Compute the minimal ``(a, b)`` making the envelope hold over ``[t_start, t_end]``.

    Uses the drawdown/run-up characterisation: with ``g(t) = C(t) - rate_low*t``
    the constant ``a`` is the maximum drawdown of ``g``; with
    ``h(t) = C(t) - rate_high*t`` the constant ``b`` is the maximum rise of
    ``h``.  Both are computed in one pass over breakpoint samples.
    """
    samples = _clock_samples(ptrace, t_start, t_end)
    max_g = float("-inf")
    max_drawdown = 0.0
    min_h = float("inf")
    max_rise = 0.0
    for t, value in samples:
        g = value - rate_low * t
        h = value - rate_high * t
        max_g = max(max_g, g)
        max_drawdown = max(max_drawdown, max_g - g)
        min_h = min(min_h, h)
        max_rise = max(max_rise, h - min_h)
    return EnvelopeFit(rate_low=rate_low, rate_high=rate_high, a=max_drawdown, b=max_rise)


@dataclass(frozen=True)
class AccuracySummary:
    """Accuracy measurements aggregated over all honest processes."""

    slowest_long_run_rate: float
    fastest_long_run_rate: float
    slowest_window_rate: float
    fastest_window_rate: float
    envelope_a: float
    envelope_b: float
    worst_offset_from_real_time: float


def accuracy_summary(
    trace: Trace,
    rate_low: float,
    rate_high: float,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
    min_window: Optional[float] = None,
    pids: Optional[Sequence[int]] = None,
) -> AccuracySummary:
    """Aggregate accuracy metrics for the honest processes of a trace."""
    if pids is None:
        pids = trace.honest_pids()
    if t_start is None:
        t_start = 0.0
    if t_end is None:
        t_end = trace.end_time
    if min_window is None:
        min_window = max((t_end - t_start) / 4.0, 1e-9)
    slowest_lr = float("inf")
    fastest_lr = float("-inf")
    slowest_win = float("inf")
    fastest_win = float("-inf")
    worst_a = 0.0
    worst_b = 0.0
    worst_offset = 0.0
    for pid in pids:
        ptrace = trace.processes[pid]
        rate = long_run_rate(ptrace, t_start, t_end)
        slowest_lr = min(slowest_lr, rate)
        fastest_lr = max(fastest_lr, rate)
        extremes = rate_extremes(ptrace, t_start, t_end, min_window)
        slowest_win = min(slowest_win, extremes.slowest)
        fastest_win = max(fastest_win, extremes.fastest)
        fit = fit_envelope(ptrace, rate_low, rate_high, t_start, t_end)
        worst_a = max(worst_a, fit.a)
        worst_b = max(worst_b, fit.b)
        for t, value in _clock_samples(ptrace, t_start, t_end):
            worst_offset = max(worst_offset, abs(value - t))
    return AccuracySummary(
        slowest_long_run_rate=slowest_lr,
        fastest_long_run_rate=fastest_lr,
        slowest_window_rate=slowest_win,
        fastest_window_rate=fastest_win,
        envelope_a=worst_a,
        envelope_b=worst_b,
        worst_offset_from_real_time=worst_offset,
    )
