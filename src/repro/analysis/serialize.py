"""JSON-friendly serialization of results and traces.

Experiment pipelines usually want to archive what was run and what was
measured.  This module converts scenarios, guarantee reports, traces and
scenario results into plain dictionaries (and JSON), and can reload result
summaries for later comparison.  Hardware clock *objects* are not serialized
(they are adversary inputs, not measurements); their drift bounds and the full
adjustment/resynchronization history are.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any, Optional, Union

from ..core.params import SyncParams
from ..sim.trace import ProcessTrace, Trace
from .optimality import GuaranteeReport


def params_to_dict(params: SyncParams) -> dict[str, Any]:
    """Serialize model parameters (including the resolved alpha)."""
    data = dataclasses.asdict(params)
    data["alpha_value"] = params.alpha_value
    return data


def guarantees_to_dict(report: Optional[GuaranteeReport]) -> Optional[dict[str, Any]]:
    """Serialize a guarantee report (None passes through)."""
    if report is None:
        return None
    return {
        "algorithm": report.algorithm,
        "all_hold": report.all_hold,
        "checks": [
            {
                "name": check.name,
                "measured": check.measured,
                "bound": check.bound,
                "holds": check.holds,
                "direction": check.direction,
            }
            for check in report.checks
        ],
    }


def process_trace_to_dict(ptrace: ProcessTrace) -> dict[str, Any]:
    """Serialize one process's observable history."""
    return {
        "pid": ptrace.pid,
        "faulty": ptrace.faulty,
        "crashed_at": ptrace.crashed_at,
        "clock": {
            "type": type(ptrace.clock).__name__,
            "min_rate": ptrace.clock.min_rate,
            "max_rate": ptrace.clock.max_rate,
            "initial_value": ptrace.clock.read(0.0),
        },
        "adjustments": [
            {"time": t, "adjustment": a}
            for t, a in zip(ptrace.adjustment_times, ptrace.adjustment_values)
        ],
        "resyncs": [
            {
                "round": event.round,
                "time": event.time,
                "logical_before": event.logical_before,
                "logical_after": event.logical_after,
            }
            for event in ptrace.resyncs
        ],
    }


def trace_to_dict(trace: Trace) -> dict[str, Any]:
    """Serialize a whole execution trace."""
    return {
        "end_time": trace.end_time,
        "total_messages": trace.total_messages,
        "message_stats": dict(trace.message_stats),
        "notes": list(trace.notes),
        "processes": [process_trace_to_dict(trace.processes[pid]) for pid in sorted(trace.processes)],
    }


def scenario_to_dict(scenario) -> dict[str, Any]:
    """Serialize a scenario description (its parameters become a nested dict)."""
    data = dataclasses.asdict(scenario)
    data["params"] = params_to_dict(scenario.params)
    return data


def result_to_dict(result, include_trace: bool = False) -> dict[str, Any]:
    """Serialize a :class:`~repro.workloads.scenarios.ScenarioResult`.

    The (potentially large) trace is omitted unless ``include_trace=True``.
    """
    data: dict[str, Any] = {
        "scenario": scenario_to_dict(result.scenario),
        "trace_level": getattr(result, "trace_level", "full"),
        "effective_horizon": getattr(result, "effective_horizon", None),
        "stopped_early": getattr(result, "stopped_early", False),
        "shard_count": getattr(result, "shard_count", 1),
        "shard_horizons": (
            list(result.shard_horizons) if getattr(result, "shard_horizons", None) is not None else None
        ),
        "message_samples": (
            [list(sample) for sample in result.message_samples]
            if getattr(result, "message_samples", None) is not None
            else None
        ),
        "kernel_provenance": (
            dataclasses.asdict(result.kernel_provenance)
            if getattr(result, "kernel_provenance", None) is not None
            else None
        ),
        "precision": result.precision,
        "precision_overall": result.precision_overall,
        "acceptance_spread": result.acceptance_spread,
        "completed_round": result.completed_round,
        "total_messages": result.total_messages,
        "messages_per_round": result.messages_per_round,
        "period_min": result.period_stats.minimum if result.period_stats.count else None,
        "period_max": result.period_stats.maximum if result.period_stats.count else None,
        "guarantees": guarantees_to_dict(result.guarantees),
    }
    if result.accuracy is not None:
        accuracy = dataclasses.asdict(result.accuracy)
        # A recorder run without window tracking reports the window-rate
        # extremes as nan; emit null so the document stays valid JSON.
        data["accuracy"] = {
            key: None if isinstance(value, float) and math.isnan(value) else value
            for key, value in accuracy.items()
        }
    if include_trace and result.trace is not None:
        data["trace"] = trace_to_dict(result.trace)
    return data


def result_to_json(result, include_trace: bool = False, indent: int = 2) -> str:
    """Serialize a scenario result to a JSON string."""
    return json.dumps(result_to_dict(result, include_trace=include_trace), indent=indent, sort_keys=True)


def save_result(result, path: Union[str, Path], include_trace: bool = False) -> Path:
    """Write a scenario result to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(result_to_json(result, include_trace=include_trace), encoding="utf-8")
    return path


def load_result_summary(path: Union[str, Path]) -> dict[str, Any]:
    """Load a previously saved result summary back into a dictionary."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
