"""Exact execution metrics.

Honest logical clocks in a trace are piecewise-linear functions of real time
whose breakpoints (hardware-clock rate changes and adjustment instants) are
all recorded, so worst-case quantities -- maximum skew, envelope constants,
extreme rates -- can be computed *exactly* by evaluating at breakpoints
(taking both the left limit and the right value at each, because adjustments
are jumps).  No sampling error enters the reproduction's measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..sim.trace import Trace


def _evaluation_points(trace: Trace, pids: Sequence[int], t_start: float, t_end: float) -> list[float]:
    points = {t_start, t_end}
    for pid in pids:
        for t in trace.processes[pid].breakpoints():
            if t_start <= t <= t_end:
                points.add(t)
    return sorted(points)


def skew_at(trace: Trace, t: float, pids: Optional[Sequence[int]] = None, before: bool = False) -> float:
    """Maximum pairwise difference of logical clocks at real time ``t``.

    With ``before=True`` the left limits (values just before any jump at
    ``t``) are used.
    """
    if pids is None:
        pids = trace.honest_pids()
    values = []
    for pid in pids:
        ptrace = trace.processes[pid]
        values.append(ptrace.logical_before(t) if before else ptrace.logical_at(t))
    if not values:
        return 0.0
    return max(values) - min(values)


def max_skew(
    trace: Trace,
    t_start: float = 0.0,
    t_end: Optional[float] = None,
    pids: Optional[Sequence[int]] = None,
) -> float:
    """Exact worst-case skew among the given processes over ``[t_start, t_end]``."""
    if pids is None:
        pids = trace.honest_pids()
    if not pids:
        return 0.0
    if t_end is None:
        t_end = trace.end_time
    worst = 0.0
    for t in _evaluation_points(trace, pids, t_start, t_end):
        worst = max(worst, skew_at(trace, t, pids))
        if t > t_start:
            # The left limit captures the value just before any jump at t; the
            # state strictly before the measurement interval does not count.
            worst = max(worst, skew_at(trace, t, pids, before=True))
    return worst


def skew_timeseries(
    trace: Trace,
    samples: int = 200,
    t_start: float = 0.0,
    t_end: Optional[float] = None,
    pids: Optional[Sequence[int]] = None,
) -> list[tuple[float, float]]:
    """Skew sampled at ``samples`` evenly spaced times (for plots and examples)."""
    if t_end is None:
        t_end = trace.end_time
    if samples < 2 or t_end <= t_start:
        return [(t_start, skew_at(trace, t_start, pids))]
    step = (t_end - t_start) / (samples - 1)
    return [
        (t_start + i * step, skew_at(trace, t_start + i * step, pids)) for i in range(samples)
    ]


def steady_state_start(trace: Trace, pids: Optional[Sequence[int]] = None) -> float:
    """Real time at which every honest process has resynchronized at least once.

    Precision guarantees are stated for steady state; before this time clocks
    simply carry their initial offsets.  ``pids`` restricts the set of
    processes considered (e.g. to exclude a late joiner).
    """
    if pids is None:
        pids = trace.honest_pids()
    firsts = []
    for pid in pids:
        ptrace = trace.processes[pid]
        if not ptrace.resyncs:
            return trace.end_time
        firsts.append(ptrace.resyncs[0].time)
    return max(firsts) if firsts else trace.end_time


def steady_state_skew(trace: Trace, pids: Optional[Sequence[int]] = None) -> float:
    """Exact worst-case skew from the end of the first resynchronization on."""
    return max_skew(trace, t_start=steady_state_start(trace), pids=pids)


def round_completion_time(trace: Trace, round_: int, pids: Optional[Sequence[int]] = None) -> Optional[float]:
    """Real time at which every honest process had accepted ``round_`` (None if it never happened)."""
    if pids is None:
        pids = trace.honest_pids()
    times = []
    for pid in pids:
        ptrace = trace.processes[pid]
        accepted = [e.time for e in ptrace.resyncs if e.round == round_]
        if not accepted:
            return None
        times.append(min(accepted))
    return max(times) if times else None


def skew_after_round(trace: Trace, round_: int, pids: Optional[Sequence[int]] = None) -> Optional[float]:
    """Exact worst-case skew from the completion of ``round_`` onwards.

    Used for start-up scenarios, where the ordinary steady-state bound only
    applies once the first full resynchronization round has completed.
    """
    t0 = round_completion_time(trace, round_, pids=pids)
    if t0 is None:
        return None
    return max_skew(trace, t_start=t0, pids=pids)


# -- resynchronization structure ------------------------------------------------------


def resync_intervals(trace: Trace, pid: int) -> list[float]:
    """Real-time gaps between consecutive resynchronizations of one process."""
    times = trace.processes[pid].resync_times()
    return [b - a for a, b in zip(times, times[1:])]


@dataclass(frozen=True)
class PeriodStats:
    """Extremes of the observed resynchronization intervals over all honest processes."""

    minimum: float
    maximum: float
    count: int

    @classmethod
    def empty(cls) -> "PeriodStats":
        return cls(minimum=float("inf"), maximum=0.0, count=0)


def period_stats(trace: Trace, skip_first: int = 1) -> PeriodStats:
    """Min/max resynchronization interval across honest processes.

    ``skip_first`` drops the first interval(s), which include the start-up
    transient (initial offsets) and are covered by the start-up bound instead.
    """
    minimum = float("inf")
    maximum = 0.0
    count = 0
    for pid in trace.honest_pids():
        intervals = resync_intervals(trace, pid)[skip_first:]
        for value in intervals:
            minimum = min(minimum, value)
            maximum = max(maximum, value)
            count += 1
    if count == 0:
        return PeriodStats.empty()
    return PeriodStats(minimum=minimum, maximum=maximum, count=count)


def acceptance_spread_by_round(trace: Trace) -> dict[int, float]:
    """For each round accepted by every honest process, the real-time spread of acceptances."""
    honest = trace.honest()
    if not honest:
        return {}
    per_round: dict[int, list[float]] = {}
    for ptrace in honest:
        for event in ptrace.resyncs:
            per_round.setdefault(event.round, []).append(event.time)
    return {
        round_: max(times) - min(times)
        for round_, times in per_round.items()
        if len(times) == len(honest)
    }


def max_acceptance_spread(trace: Trace) -> float:
    """Largest acceptance spread over all fully accepted rounds."""
    spreads = acceptance_spread_by_round(trace)
    return max(spreads.values()) if spreads else 0.0


def liveness(trace: Trace, expected_round: int) -> bool:
    """Whether every honest process accepted every round up to ``expected_round``."""
    for ptrace in trace.honest():
        accepted = set(e.round for e in ptrace.resyncs)
        if not accepted:
            return False
        first = max(min(accepted), 1)
        needed = set(range(first, expected_round + 1))
        if not needed.issubset(accepted):
            return False
    return True


def adjustment_magnitudes(trace: Trace, skip_first: int = 1) -> list[float]:
    """Absolute sizes of all honest clock adjustments (optionally skipping the first)."""
    sizes = []
    for ptrace in trace.honest():
        for event in ptrace.resyncs[skip_first:]:
            sizes.append(abs(event.adjustment))
    return sizes


def max_backward_adjustment(trace: Trace, skip_first: int = 1) -> float:
    """Largest backward correction applied by any honest process (0 if clocks are monotone)."""
    worst = 0.0
    for ptrace in trace.honest():
        for event in ptrace.resyncs[skip_first:]:
            worst = max(worst, -min(0.0, event.adjustment))
    return worst


def message_totals(trace: Trace) -> dict[str, int]:
    """Total messages sent, by message type, plus the overall count."""
    totals = dict(trace.message_stats)
    totals["total"] = trace.total_messages
    return totals


def messages_per_completed_round(trace: Trace) -> float:
    """Average number of messages per fully completed round (all senders included)."""
    completed = trace.min_completed_round()
    if completed <= 0:
        return float(trace.total_messages)
    return trace.total_messages / completed
