"""Parameter sweeps.

Every experiment in the benchmark harness is a sweep: vary one or two model
parameters, run a scenario per grid point, and collect a results table.  The
helpers here keep that pattern declarative and identical across experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..core.params import SyncParams
from .scenarios import Scenario, ScenarioResult


def grid(**axes: Sequence) -> list[dict]:
    """Cartesian product of named value lists, as a list of keyword dictionaries.

    >>> grid(n=[4, 7], rho=[0.001])
    [{'n': 4, 'rho': 0.001}, {'n': 7, 'rho': 0.001}]
    """
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, values)) for values in combos]


def scenario_sweep(
    base: Scenario,
    points: Iterable[Mapping],
    param_fields: Optional[Sequence[str]] = None,
) -> list[Scenario]:
    """Build one scenario per grid point.

    Keys that name :class:`~repro.core.params.SyncParams` fields (or listed in
    ``param_fields``) are applied to the scenario's parameters; all other keys
    are applied to the scenario itself.
    """
    params_fields = set(SyncParams.__dataclass_fields__)
    if param_fields:
        params_fields.update(param_fields)
    scenarios = []
    for point in points:
        param_changes = {k: v for k, v in point.items() if k in params_fields}
        scenario_changes = {k: v for k, v in point.items() if k not in params_fields}
        params = base.params.with_(**param_changes) if param_changes else base.params
        scenario = replace(base, params=params, name="", **scenario_changes)
        scenarios.append(scenario)
    return scenarios


def run_sweep(
    scenarios: Iterable[Scenario],
    check_guarantees=None,
    callback: Optional[Callable[[ScenarioResult], None]] = None,
    runner=None,
    trace_level: str = "full",
) -> list[ScenarioResult]:
    """Run every scenario and return the results in input order.

    Execution goes through a :class:`~repro.runner.core.SweepRunner`: the one
    passed as ``runner``, or the process-wide default (see
    :mod:`repro.runner.config`), which may parallelize across worker
    processes and serve repeated grid points from the on-disk result cache.
    ``check_guarantees`` is a single flag for the whole sweep or a sequence
    with one entry per scenario.  ``trace_level`` selects the observation
    depth (``"full"`` keeps traces, ``"metrics"`` streams scalars in O(n)
    memory); sweeps that only read scalar metrics should pass ``"metrics"``
    so large grids skip trace construction entirely.  Replicated grid points
    (``Scenario.replications > 1``, metrics level) shard transparently
    across the same worker pool; their results are the exact merge of the
    per-replication summaries.
    """
    if runner is None:
        from ..runner.config import get_runner

        runner = get_runner()
    return runner.run_sweep(
        scenarios, check_guarantees=check_guarantees, callback=callback, trace_level=trace_level
    )


def stream_sweep(
    scenarios: Iterable[Scenario],
    on_result: Callable[[int, ScenarioResult], None],
    check_guarantees=None,
    runner=None,
    trace_level: str = "full",
) -> int:
    """Run every scenario, folding each result into ``on_result`` as it completes.

    The constant-memory counterpart of :func:`run_sweep`: ``on_result(index,
    result)`` receives each scenario's input position and result exactly once
    (input order when serial, completion order when parallel) and nothing is
    retained by the runner, so a reducer that extracts what it needs and
    drops the result keeps the parent at O(1) results regardless of grid
    size.  Returns the number of scenarios run.
    """
    if runner is None:
        from ..runner.config import get_runner

        runner = get_runner()
    return runner.stream_sweep(
        scenarios, on_result, check_guarantees=check_guarantees, trace_level=trace_level
    )
