"""Scenario construction and execution.

A :class:`Scenario` is a complete, declarative description of one simulated
execution: model parameters, which algorithm runs, how the adversary sets
hardware clock rates and message delays, which Byzantine behaviour the faulty
processes follow, whether the system starts synchronized or from scratch, and
for how many rounds to run.  :func:`build_cluster` turns it into a ready
:class:`~repro.sim.engine.Simulation`; :func:`run_scenario` additionally runs
it and returns a :class:`ScenarioResult` with the exact measurements used by
tests, examples and the benchmark harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace as dataclasses_replace
from typing import Optional, Sequence

from .. import obs
from ..analysis import metrics
from ..analysis.envelope import AccuracySummary, accuracy_summary
from ..analysis.optimality import (
    ExecutionMeasurements,
    GuaranteeReport,
    period_stats_from_summary,
    verify_measurements,
    verify_summary,
)
from ..baselines import (
    FreeRunningProcess,
    InflatedClockAttacker,
    LamportMelliarSmithProcess,
    LundeliusWelchProcess,
    SyncToMaxProcess,
)
from ..core.auth_sync import AuthSyncProcess
from ..core.bounds import AUTH, ECHO
from ..core.params import SyncParams
from ..core.startup import staggered_boot_times
from ..core.unauth_sync import EchoSyncProcess
from ..crypto.signatures import KeyStore
from ..faults.behaviors import AdversaryContext, SilentFaulty
from ..faults.strategies import make_faulty_processes
from ..sim.clocks import FixedRateClock, HardwareClock, drifting_clock, spread_offsets
from ..sim.engine import Simulation
from ..sim.kernel import (
    KERNELS,
    fallback_note,
    kernel_ineligibility,
    resolve_kernel,
)
from ..sim.vectorized import run_lanes
from ..sim.recorder import (
    OnlineMetricsRecorder,
    OnlineMetricsSummary,
    Recorder,
    merge_summaries,
)
from ..sim.network import (
    DelayPolicy,
    FixedDelay,
    MaxDelay,
    MinDelay,
    TargetedDelay,
    UniformDelay,
)
from ..sim.trace import Trace

#: Algorithms driven through the Srikanth-Toueg guarantee checker.
ST_ALGORITHMS = ("auth", "echo")
#: Baseline algorithms (compared against, no analytic guarantees checked).
BASELINE_ALGORITHMS = ("lundelius_welch", "lamport_melliar_smith", "sync_to_max", "free_running")
ALL_ALGORITHMS = ST_ALGORITHMS + BASELINE_ALGORITHMS

CLOCK_MODES = ("extreme", "random", "nominal")
DELAY_MODES = ("uniform", "max", "min", "midpoint", "targeted")
#: Observation depth: "full" keeps the whole execution trace (exact
#: history-based analysis), "metrics" streams scalar metrics in O(n) memory.
TRACE_LEVELS = ("full", "metrics")


@dataclass
class Scenario:
    """Declarative description of one simulated execution."""

    params: SyncParams
    algorithm: str = "auth"
    name: str = ""
    #: Number of resynchronization rounds every honest process must complete.
    rounds: int = 20
    #: Named adversary strategy (see :mod:`repro.faults.strategies`);
    #: ``None`` means the faulty slots are filled with silent processes.
    attack: Optional[str] = None
    #: How many processes actually behave faultily; defaults to ``params.f``.
    #: Setting this above ``params.f`` is how the resilience-threshold
    #: experiments run the algorithms out of spec.
    actual_faults: Optional[int] = None
    #: Hardware clock assignment: "extreme" (honest clocks alternate between the
    #: fastest and slowest admissible rate), "random" (wandering within the
    #: bound) or "nominal" (all at rate 1).
    clock_mode: str = "extreme"
    #: Delay policy: "uniform", "max", "min", "midpoint" or "targeted"
    #: (fast delivery to one half of the honest processes, slow to the other).
    delay_mode: str = "uniform"
    #: Start from scratch using the start-up protocol (round 0) instead of
    #: assuming initial synchronization.
    use_startup: bool = False
    #: Real-time dispersion of process boot times (only used with start-up).
    boot_spread: float = 0.0
    #: Suppress backward clock corrections (ablation).
    monotonic: bool = False
    #: Number of passive joiners added on top of ``params.n`` processes.
    joiner_count: int = 0
    #: Real time at which the joiners come up.
    join_time: float = 0.0
    #: Adaptive horizon: halt the run as soon as the target round completes
    #: (plus ``grace``) instead of deciding via the per-event round poll.
    #: ``None`` resolves per observation depth -- adaptive for metrics-level
    #: runs, historical for full-trace runs (byte-identical traces).
    adaptive_horizon: Optional[bool] = None
    #: Real time to keep simulating past target-round completion (adaptive
    #: runs only).  0 reproduces the historical stop instant exactly.
    grace: float = 0.0
    #: Opt-in early abort: end a run the moment the target round becomes
    #: unreachable (an honest crash capped the completable rounds below it)
    #: instead of burning the full budget.  Off by default because it changes
    #: the measured end time of infeasible runs.
    abort_unreachable: bool = False
    #: Independent replications of this configuration (seeds ``seed`` ..
    #: ``seed + replications - 1``).  The scenario's result is the exact
    #: merge of the per-replication summaries -- worst-case statistics over
    #: all runs, the per-configuration quantities the paper's claims bound.
    #: Requires ``trace_level="metrics"`` when above 1.
    replications: int = 1
    #: Shard tasks the replications are split into (each shard runs its block
    #: of replications and folds them locally).  ``None`` resolves to one
    #: shard per core (``REPRO_SHARDS`` overrides), capped by
    #: ``replications``; sharding never changes measured values, only where
    #: the replications execute.
    shards: Optional[int] = None
    #: Sampling message trace (metrics level only): retain every K-th network
    #: message as a :class:`~repro.sim.recorder.MessageSample` in
    #: :attr:`ScenarioResult.message_samples`.  Samples concatenate across
    #: replications and shards under the merge algebra, so sharded and
    #: distributed runs ship bounded message-level provenance home.  ``None``
    #: (the default) retains nothing and costs nothing.
    sample_messages: Optional[int] = None
    #: Simulation kernel: ``"event"`` (the pure-Python event loop),
    #: ``"vector"`` (the batched NumPy round evaluator,
    #: :mod:`repro.sim.vectorized`) or ``"auto"`` (vector exactly when the
    #: scenario family is in its proven float-parity regime).  ``None``
    #: defers to the ``REPRO_KERNEL`` environment variable, then ``"auto"``.
    #: A requested-but-ineligible vector run falls back to the event loop
    #: and records the reason via ``on_note``; measured values are
    #: float-identical either way (see ``docs/kernel.md``).
    kernel: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.algorithm not in ALL_ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; expected one of {ALL_ALGORITHMS}")
        if self.clock_mode not in CLOCK_MODES:
            raise ValueError(f"unknown clock_mode {self.clock_mode!r}; expected one of {CLOCK_MODES}")
        if self.delay_mode not in DELAY_MODES:
            raise ValueError(f"unknown delay_mode {self.delay_mode!r}; expected one of {DELAY_MODES}")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.grace < 0:
            raise ValueError("grace must be non-negative")
        if self.replications < 1:
            raise ValueError("replications must be at least 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be at least 1 (or None for auto)")
        if self.sample_messages is not None and self.sample_messages < 1:
            raise ValueError("sample_messages must be at least 1 (or None to disable)")
        if self.kernel is not None and self.kernel not in KERNELS:
            raise ValueError(f"unknown kernel {self.kernel!r}; expected one of {KERNELS} (or None)")
        if self.actual_faults is None:
            self.actual_faults = self.params.f
        if self.actual_faults >= self.params.n:
            raise ValueError("actual_faults must leave at least one honest process")
        if not self.name:
            self.name = f"{self.algorithm}-n{self.params.n}-f{self.actual_faults}-{self.attack or 'benign'}"

    # -- derived layout ------------------------------------------------------------

    @property
    def honest_pids(self) -> list[int]:
        """Honest process ids: the first ``n - actual_faults`` ids."""
        return list(range(self.params.n - self.actual_faults))

    @property
    def faulty_pids(self) -> list[int]:
        """Faulty process ids: the last ``actual_faults`` ids."""
        return list(range(self.params.n - self.actual_faults, self.params.n))

    @property
    def joiner_pids(self) -> list[int]:
        """Ids of the passive joiners (allocated above the base population)."""
        return list(range(self.params.n, self.params.n + self.joiner_count))

    @property
    def st_algorithm(self) -> str:
        """The bounds-module identifier for Srikanth-Toueg scenarios."""
        return AUTH if self.algorithm == "auth" else ECHO

    def horizon(self) -> float:
        """Real-time budget: generous upper bound for completing ``rounds`` rounds.

        Under the adaptive horizon this is only the liveness cap (a run that
        completes the target round ends there); historical runs poll the same
        stop but treat this as the static budget for infeasible executions.
        """
        per_round = (1.0 + self.params.rho) * self.params.period + 4.0 * self.params.tdel
        startup = self.boot_spread + 10.0 * self.params.tdel + self.params.initial_offset_spread
        return startup + per_round * (self.rounds + 2) + self.join_time


def resolve_adaptive(scenario: Scenario, trace_level: str) -> bool:
    """The effective adaptive-horizon flag for one scenario.

    ``None`` resolves to adaptive for metrics-level observation and to the
    historical per-event poll for full traces; the result cache keys on the
    resolved value so the default and its explicit spelling share entries.
    """
    if scenario.adaptive_horizon is not None:
        return scenario.adaptive_horizon
    return trace_level == "metrics"


def auto_shard_count() -> int:
    """The shard count ``Scenario.shards=None`` resolves to (before capping).

    ``REPRO_SHARDS`` overrides (a non-positive value falls back to auto);
    otherwise one shard per CPU core.
    """
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_SHARDS must be an integer, got {raw!r}") from None
        if value > 0:
            return value
    return os.cpu_count() or 1


def resolve_shards(scenario: Scenario) -> int:
    """The effective shard count for one scenario.

    ``None`` resolves to one shard per core (``REPRO_SHARDS`` overrides);
    the result is always capped by ``replications`` (a shard needs at least
    one replication) and an unreplicated scenario is never sharded.  The
    result cache keys on this resolved value because the stored result's
    provenance (``shard_count``, ``shard_horizons``) depends on it -- the
    measured metrics themselves do not.
    """
    if scenario.replications <= 1:
        return 1
    shards = scenario.shards if scenario.shards is not None else auto_shard_count()
    return max(1, min(shards, scenario.replications))


def plan_shards(scenario: Scenario) -> list[tuple[int, ...]]:
    """Deterministic shard plan: contiguous, balanced blocks of replication indices.

    The plan depends only on ``(replications, resolved shard count)``, so the
    serial reference path and the parallel sharded backend fold exactly the
    same blocks in exactly the same order.
    """
    count = resolve_shards(scenario)
    reps = scenario.replications
    base, extra = divmod(reps, count)
    blocks: list[tuple[int, ...]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        blocks.append(tuple(range(start, start + size)))
        start += size
    return blocks


def replicate(scenario: Scenario, index: int) -> Scenario:
    """Replication ``index`` of ``scenario``: a single-run copy with seed ``seed + index``."""
    if index < 0 or index >= scenario.replications:
        raise ValueError(f"replication index {index} out of range for {scenario.replications} replications")
    if scenario.replications == 1:
        return scenario
    return dataclasses_replace(
        scenario, replications=1, shards=None, seed=scenario.seed + index, name=""
    )


@dataclass
class ClusterHandles:
    """Everything :func:`build_cluster` created, for tests that need the internals."""

    sim: Simulation
    scenario: Scenario
    keystore: Optional[KeyStore]
    context: Optional[AdversaryContext]
    honest: list
    faulty: list
    joiners: list


@dataclass(frozen=True)
class KernelProvenance:
    """Which engine served each lane (replication) of an executed scenario.

    One lane is one single-replication run.  Every lane lands in exactly one
    bucket: served by the vector kernel, dynamically fallen back to the event
    loop (the vector evaluator refused it, reason counted in
    ``fallback_reasons``), or never offered to the vector evaluator at all
    (statically ineligible, or the kernel resolved to ``"event"``).
    """

    #: The resolved kernel selection (``"auto"``/``"event"``/``"vector"``).
    resolved: str
    #: Lanes evaluated by the vector kernel.
    vector_lanes: int = 0
    #: Lanes the vector evaluator refused per-run; they re-ran on the event
    #: loop with the reason noted.
    fallback_lanes: int = 0
    #: Lanes that never reached the vector evaluator (static ineligibility,
    #: or ``resolved == "event"``).
    ineligible_lanes: int = 0
    #: Deduplicated dynamic fallback reasons as ``(reason, lane_count)``
    #: pairs, sorted by reason.
    fallback_reasons: tuple = ()
    #: The static ineligibility reason, or ``None`` (always ``None`` when
    #: the kernel resolved to ``"event"`` -- that is selection, not
    #: eligibility).
    ineligible_reason: Optional[str] = None

    @property
    def total_lanes(self) -> int:
        """All lanes this provenance accounts for."""
        return self.vector_lanes + self.fallback_lanes + self.ineligible_lanes

    def describe(self) -> str:
        """One human-readable provenance line (used by the CLI and reports)."""
        parts = [f"kernel {self.resolved}:"]
        buckets = []
        if self.vector_lanes:
            buckets.append(f"{self.vector_lanes} vector-served")
        if self.fallback_lanes:
            reasons = "; ".join(
                f"{reason} ({count} lanes)" if count > 1 else reason
                for reason, count in self.fallback_reasons
            )
            buckets.append(f"{self.fallback_lanes} fell back ({reasons})")
        if self.ineligible_lanes:
            if self.ineligible_reason is not None:
                buckets.append(
                    f"{self.ineligible_lanes} ineligible ({self.ineligible_reason})"
                )
            else:
                buckets.append(f"{self.ineligible_lanes} event-loop")
        parts.append(", ".join(buckets) if buckets else "no lanes")
        return " ".join(parts)


def merge_kernel_provenance(resolved: str, parts: Sequence["KernelProvenance"]) -> KernelProvenance:
    """Fold per-shard provenance records into one scenario-level record."""
    reasons: dict = {}
    ineligible_reason = None
    for part in parts:
        for reason, count in part.fallback_reasons:
            reasons[reason] = reasons.get(reason, 0) + count
        if ineligible_reason is None:
            ineligible_reason = part.ineligible_reason
    return KernelProvenance(
        resolved=resolved,
        vector_lanes=sum(part.vector_lanes for part in parts),
        fallback_lanes=sum(part.fallback_lanes for part in parts),
        ineligible_lanes=sum(part.ineligible_lanes for part in parts),
        fallback_reasons=tuple(sorted(reasons.items())),
        ineligible_reason=ineligible_reason,
    )


@dataclass
class ScenarioResult:
    """Measurements of one executed scenario.

    ``trace`` is only populated at ``trace_level="full"``; every scalar
    metric -- including the accuracy summary's window-rate extremes -- is
    identical between trace levels (the streaming recorder evaluates the
    same breakpoints the post-hoc analysis walks and runs the same
    window-rate pass over them).
    """

    scenario: Scenario
    trace: Optional[Trace]
    #: Worst-case skew among honest processes after every one of them
    #: resynchronized at least once.
    precision: float
    #: Worst-case skew over the entire run (including the start-up transient).
    precision_overall: float
    period_stats: metrics.PeriodStats
    acceptance_spread: float
    accuracy: Optional[AccuracySummary]
    completed_round: int
    total_messages: int
    messages_per_round: float
    guarantees: Optional[GuaranteeReport]
    trace_level: str = "full"
    #: Real time at which the run actually ended: the adapted horizon when
    #: the target round completed, the static budget otherwise.  For a
    #: replicated scenario this is the latest end time over all replications.
    effective_horizon: Optional[float] = None
    #: Whether the run ended before its static budget (round target reached).
    #: For a replicated scenario: whether every replication stopped early.
    stopped_early: bool = False
    #: Shard tasks the replications actually executed in (1 for plain runs).
    shard_count: int = 1
    #: Per-shard effective horizon (latest end time inside each shard), in
    #: shard order; ``None`` for unreplicated runs.
    shard_horizons: Optional[tuple] = None
    #: Every K-th message's :class:`~repro.sim.recorder.MessageSample` when
    #: the scenario set ``sample_messages=K`` (metrics level only); for a
    #: replicated scenario, the concatenation over all replications in
    #: replication order.  ``None`` when sampling was off.
    message_samples: Optional[tuple] = None
    #: Which engine served each lane (vector-served / fell-back / ineligible
    #: counts plus deduplicated reasons); ``None`` for results predating the
    #: provenance record.
    kernel_provenance: Optional[KernelProvenance] = None

    @property
    def params(self) -> SyncParams:
        """The scenario's model parameters (shorthand for ``scenario.params``)."""
        return self.scenario.params

    @property
    def guarantees_hold(self) -> bool:
        """Whether every checked guarantee held (True when checking was off)."""
        return self.guarantees.all_hold if self.guarantees is not None else True


# -- hardware clock assignment -----------------------------------------------------------


def _honest_clock(scenario: Scenario, index: int, offset: float) -> HardwareClock:
    params = scenario.params
    if scenario.clock_mode == "nominal":
        return FixedRateClock(rate=1.0, offset=offset)
    if scenario.clock_mode == "extreme":
        rate = params.max_rate if index % 2 == 0 else params.min_rate
        return FixedRateClock(rate=rate, offset=offset)
    horizon = scenario.horizon()
    return drifting_clock(
        params.rho,
        offset=offset,
        seed=scenario.seed * 1009 + index,
        segment_length=max(params.period, 4.0 * params.tdel),
        horizon=horizon * 1.2 + 1.0,
    )


def _delay_policy(scenario: Scenario, fast_group: list[int]) -> DelayPolicy:
    params = scenario.params
    if scenario.delay_mode == "uniform":
        return UniformDelay()
    if scenario.delay_mode == "max":
        return MaxDelay()
    if scenario.delay_mode == "min":
        return MinDelay()
    if scenario.delay_mode == "midpoint":
        return FixedDelay(0.5 * (params.tmin + params.tdel))
    return TargetedDelay(fast_destinations=fast_group)


# -- process construction --------------------------------------------------------------------


def _make_honest_process(scenario: Scenario, pid: int, keystore: Optional[KeyStore], joiner: bool = False):
    params = scenario.params
    common = dict(monotonic=scenario.monotonic, use_startup=scenario.use_startup and not joiner, joiner=joiner)
    if scenario.algorithm == "auth":
        assert keystore is not None
        return AuthSyncProcess(pid, params, keystore, keystore.secret_key(pid), **common)
    if scenario.algorithm == "echo":
        return EchoSyncProcess(pid, params, **common)
    if scenario.algorithm == "lundelius_welch":
        return LundeliusWelchProcess(pid, params)
    if scenario.algorithm == "lamport_melliar_smith":
        return LamportMelliarSmithProcess(pid, params)
    if scenario.algorithm == "sync_to_max":
        return SyncToMaxProcess(pid, params)
    return FreeRunningProcess(pid, params)


def _make_faulty_processes(scenario: Scenario, context: AdversaryContext, keystore: Optional[KeyStore]):
    if not scenario.faulty_pids:
        return []
    attack = scenario.attack
    if attack is None or attack == "silent":
        return [SilentFaulty(pid, context) for pid in scenario.faulty_pids]
    if scenario.algorithm in ST_ALGORITHMS:
        return make_faulty_processes(attack, context, algorithm=scenario.st_algorithm, keystore=keystore)
    # Baseline-specific adversaries.
    if attack == "inflated_clock":
        return [InflatedClockAttacker(pid, scenario.params) for pid in scenario.faulty_pids]
    raise ValueError(f"attack {attack!r} is not applicable to baseline algorithm {scenario.algorithm!r}")


def _make_recorder(
    scenario: Scenario,
    trace_level: str,
    mergeable: bool = False,
    sample_messages: Optional[int] = None,
) -> Optional[Recorder]:
    if trace_level not in TRACE_LEVELS:
        raise ValueError(f"unknown trace_level {trace_level!r}; expected one of {TRACE_LEVELS}")
    if trace_level == "full":
        if mergeable:
            raise ValueError("mergeable summaries require trace_level='metrics'")
        if sample_messages is not None:
            raise ValueError("sample_messages requires trace_level='metrics' (full traces keep every message)")
        return None  # the engine's default FullTraceRecorder
    params = scenario.params
    return OnlineMetricsRecorder(
        rate_low=params.min_rate,
        rate_high=params.max_rate,
        mergeable=mergeable,
        sample_messages=sample_messages,
    )


def build_cluster(
    scenario: Scenario,
    trace_level: str = "full",
    mergeable: bool = False,
    sample_messages: Optional[int] = None,
) -> ClusterHandles:
    """Assemble a ready-to-run simulation for ``scenario``.

    ``trace_level`` selects the recorder the engine emits into: ``"full"``
    keeps the complete execution trace, ``"metrics"`` streams scalar metrics
    in O(n) memory (no history retained).  ``mergeable`` (metrics level only)
    makes the finalized summary carry the retained window samples the
    shard-merge algebra folds over.  ``sample_messages=K`` (metrics level
    only) retains every K-th message's
    :class:`~repro.sim.recorder.MessageSample` in the summary -- the
    lightweight message-level provenance distributed runs ship home.
    """
    params = scenario.params
    sim = Simulation(
        tmin=params.tmin,
        tdel=params.tdel,
        seed=scenario.seed,
        recorder=_make_recorder(scenario, trace_level, mergeable=mergeable, sample_messages=sample_messages),
    )

    keystore: Optional[KeyStore] = None
    if scenario.algorithm == "auth":
        keystore = KeyStore.generate(params.n + scenario.joiner_count, seed=scenario.seed + 7)

    honest_pids = scenario.honest_pids
    faulty_pids = scenario.faulty_pids
    context = AdversaryContext.build(
        params=params,
        faulty_pids=faulty_pids,
        honest_pids=honest_pids,
        keystore=keystore,
        seed=scenario.seed,
    )
    sim.network.policy = _delay_policy(scenario, fast_group=context.fast_group)

    offsets = spread_offsets(len(honest_pids), params.initial_offset_spread, seed=scenario.seed + 13)
    if scenario.use_startup:
        boot_times = staggered_boot_times(len(honest_pids), scenario.boot_spread, seed=scenario.seed + 17)
    else:
        boot_times = [0.0] * len(honest_pids)

    honest_processes = []
    for index, pid in enumerate(honest_pids):
        process = _make_honest_process(scenario, pid, keystore)
        clock = _honest_clock(scenario, index, offsets[index])
        sim.add_process(process, clock, faulty=False, boot_time=boot_times[index])
        honest_processes.append(process)

    faulty_processes = _make_faulty_processes(scenario, context, keystore)
    for process in faulty_processes:
        clock = FixedRateClock(rate=1.0, offset=0.0)
        sim.add_process(process, clock, faulty=True)

    joiners = []
    for index, pid in enumerate(scenario.joiner_pids):
        process = _make_honest_process(scenario, pid, keystore, joiner=True)
        clock = _honest_clock(scenario, len(honest_pids) + index, 0.0)
        sim.add_process(process, clock, faulty=False, boot_time=scenario.join_time)
        joiners.append(process)

    return ClusterHandles(
        sim=sim,
        scenario=scenario,
        keystore=keystore,
        context=context,
        honest=honest_processes,
        faulty=faulty_processes,
        joiners=joiners,
    )


def _resolve_check(scenario: Scenario, check_guarantees: Optional[bool]) -> bool:
    st_scenario = scenario.algorithm in ST_ALGORITHMS
    if check_guarantees is None:
        within_spec = scenario.actual_faults <= scenario.params.f
        check_guarantees = st_scenario and within_spec
    return st_scenario and bool(check_guarantees)


def _measure_full(scenario: Scenario, trace: Trace, check: bool, stopped_early: bool = False) -> ScenarioResult:
    steady = metrics.steady_state_start(trace)
    accuracy: Optional[AccuracySummary] = None
    if trace.end_time - steady > scenario.params.period:
        accuracy = accuracy_summary(
            trace,
            rate_low=scenario.params.min_rate,
            rate_high=scenario.params.max_rate,
            t_start=steady,
            t_end=trace.end_time,
        )

    precision = metrics.steady_state_skew(trace)
    period_stats = metrics.period_stats(trace)
    acceptance_spread = metrics.max_acceptance_spread(trace)
    completed_round = trace.min_completed_round()

    guarantees: Optional[GuaranteeReport] = None
    if check:
        # Reuse the measurements computed above instead of re-walking the
        # trace inside verify_guarantees (the long-run rates are independent
        # of the envelope's rate bounds, so the result-level accuracy summary
        # supplies exactly the values the guarantee checks compare).
        adjustments = metrics.adjustment_magnitudes(trace)
        measured = ExecutionMeasurements(
            steady_skew=precision,
            acceptance_spread=acceptance_spread,
            period_stats=period_stats,
            max_adjustment=max(adjustments) if adjustments else None,
            min_completed_round=completed_round,
            liveness_ok=metrics.liveness(trace, scenario.rounds),
            long_run_rates=(
                (accuracy.slowest_long_run_rate, accuracy.fastest_long_run_rate)
                if accuracy is not None
                else None
            ),
        )
        guarantees = verify_measurements(
            measured,
            scenario.params,
            algorithm=scenario.st_algorithm,
            expected_round=scenario.rounds,
        )

    return ScenarioResult(
        scenario=scenario,
        trace=trace,
        precision=precision,
        precision_overall=metrics.max_skew(trace),
        period_stats=period_stats,
        acceptance_spread=acceptance_spread,
        accuracy=accuracy,
        completed_round=completed_round,
        total_messages=trace.total_messages,
        messages_per_round=metrics.messages_per_completed_round(trace),
        guarantees=guarantees,
        trace_level="full",
        effective_horizon=trace.end_time,
        stopped_early=stopped_early,
    )


def _measure_streamed(
    scenario: Scenario, summary: OnlineMetricsSummary, check: bool, stopped_early: bool = False
) -> ScenarioResult:
    guarantees: Optional[GuaranteeReport] = None
    if check:
        guarantees = verify_summary(
            summary,
            scenario.params,
            algorithm=scenario.st_algorithm,
            expected_round=scenario.rounds,
        )

    accuracy: Optional[AccuracySummary] = None
    rates = summary.long_run_rates(scenario.params.period)
    if rates is not None:
        # The recorder retains the steady-window breakpoint samples and runs
        # the same window-rate pass as the post-hoc analysis, so the extremes
        # stream exactly; nan only appears when the recorder was built
        # without window tracking.
        nan = float("nan")
        accuracy = AccuracySummary(
            slowest_long_run_rate=rates[0],
            fastest_long_run_rate=rates[1],
            slowest_window_rate=summary.slowest_window_rate if summary.slowest_window_rate is not None else nan,
            fastest_window_rate=summary.fastest_window_rate if summary.fastest_window_rate is not None else nan,
            envelope_a=summary.envelope_a,
            envelope_b=summary.envelope_b,
            worst_offset_from_real_time=summary.worst_offset_from_real_time,
        )

    return ScenarioResult(
        scenario=scenario,
        trace=None,
        precision=summary.steady_skew,
        precision_overall=summary.overall_skew,
        period_stats=period_stats_from_summary(summary),
        acceptance_spread=summary.acceptance_spread,
        accuracy=accuracy,
        completed_round=summary.completed_round,
        total_messages=summary.total_messages,
        messages_per_round=summary.messages_per_round(),
        guarantees=guarantees,
        trace_level="metrics",
        effective_horizon=summary.end_time,
        stopped_early=stopped_early,
        message_samples=summary.message_samples,
    )


@dataclass(frozen=True)
class ShardOutcome:
    """One shard task's folded observation of its block of replications."""

    shard_index: int
    #: Global replication indices this shard ran, in execution order.
    replication_indices: tuple
    #: Mergeable fold of the per-replication summaries (carries the retained
    #: window samples so later folds stay exact).
    summary: OnlineMetricsSummary
    #: Whether every replication in the block ended before its static budget.
    stopped_early: bool
    #: Per-shard kernel accounting, folded into the scenario-level
    #: :class:`KernelProvenance` by :func:`measure_sharded`.
    vector_lanes: int = 0
    fallback_lanes: int = 0
    ineligible_lanes: int = 0
    #: Deduplicated ``(reason, lane_count)`` pairs, sorted by reason.
    fallback_reasons: tuple = ()
    ineligible_reason: Optional[str] = None


def _account_kernel_lanes(vector: int, fallback: int, ineligible: int, reasons: Sequence[tuple]) -> None:
    """Fold one block's lane accounting into the live ``kernel.*`` telemetry.

    These are the *worker-side* counters: they ride result frames home and
    merge into the parent's registry, so a sweep's ``kernel.vector_lanes``
    counts computed lanes across every process (cache hits excluded -- a
    served entry computes nothing).  The distinct ``provenance.*`` namespace
    the CLI folds a finished result's record into never overlaps with these.
    """
    if not (obs.enabled() or obs.metrics_enabled()):
        return
    obs.inc("kernel.vector_lanes", vector)
    obs.inc("kernel.fallback_lanes", fallback)
    obs.inc("kernel.ineligible_lanes", ineligible)
    if obs.enabled():
        for reason, count in reasons:
            obs.event("kernel.fallback", {"reason": reason, "lanes": count})


def run_shard(scenario: Scenario, shard_index: int, replication_indices: Sequence[int]) -> ShardOutcome:
    """Run one shard's block of replications serially and fold their summaries.

    This is the worker-side unit of the sharded backend (and the building
    block of the serial reference path): each replication runs at metrics
    level under a mergeable recorder, and the block folds through
    :func:`~repro.sim.recorder.merge_summaries` in replication order.

    When the resolved kernel allows it, the whole block is evaluated
    *lane-batched* on the vector kernel first -- all replications stepped in
    lockstep as array lanes (:func:`repro.sim.vectorized.run_lanes`) -- and
    only lanes that individually fell back re-run on the event loop, with
    the reason annotated.  The fold order is replication order either way,
    so lane batching never changes the merged summary.
    """
    with obs.span("scenario.shard") as sp:
        sp.set("shard", shard_index)
        sp.set("replications", len(replication_indices))
        outcome = _run_shard(scenario, shard_index, replication_indices)
        _account_kernel_lanes(
            outcome.vector_lanes,
            outcome.fallback_lanes,
            outcome.ineligible_lanes,
            outcome.fallback_reasons,
        )
        return outcome


def _run_shard(scenario: Scenario, shard_index: int, replication_indices: Sequence[int]) -> ShardOutcome:
    reps = [replicate(scenario, index) for index in replication_indices]
    resolved = resolve_kernel(scenario)
    static_reason: Optional[str] = None
    outcomes: list = [None] * len(reps)
    if reps and resolved != "event":
        static_reason = kernel_ineligibility(reps[0], "metrics")
        if static_reason is None:
            outcomes = run_lanes(
                reps, mergeable=True, sample_messages=scenario.sample_messages
            )
            # Cache-identity guard: the result cache keys on the *static*
            # resolution, so a lane that dynamically fell back to the event
            # loop must still present the same resolved kernel and the same
            # (absent) static reason -- dynamic fallback never forks cache
            # identity.  Both inputs are pure functions of the scenario, so
            # a violation here means a mid-run mutation or a policy/
            # mechanism split, which must fail loudly rather than poison
            # the cache.
            assert resolve_kernel(scenario) == resolved and (
                kernel_ineligibility(reps[0], "metrics") is None
            ), "dynamic fallback changed the static kernel resolution"

    # Kernel accounting up front, so fallback notes are recorded once per
    # distinct reason (with a lane count) rather than once per lane.
    fallback_counts: dict = {}
    vector_lanes = 0
    for outcome in outcomes:
        if outcome is None:
            continue
        if outcome.fallback is None:
            vector_lanes += 1
        else:
            fallback_counts[outcome.fallback] = fallback_counts.get(outcome.fallback, 0) + 1
    ineligible_lanes = len(reps) - vector_lanes - sum(fallback_counts.values())

    def deduped_note(reason: str, count: int) -> str:
        suffix = f" ({count} lanes)" if count > 1 else ""
        return fallback_note(reason) + suffix

    summaries: list[OnlineMetricsSummary] = []
    stopped = True
    noted: set = set()
    for rep, outcome in zip(reps, outcomes):
        if outcome is not None and outcome.fallback is None:
            summaries.append(outcome.summary)
            stopped = stopped and outcome.stopped_early
            continue
        handles = build_cluster(rep, trace_level="metrics", mergeable=True, sample_messages=rep.sample_messages)
        sim = handles.sim
        if outcome is not None:
            if outcome.fallback not in noted:
                noted.add(outcome.fallback)
                sim.recorder.on_note(
                    deduped_note(outcome.fallback, fallback_counts[outcome.fallback])
                )
        elif resolved == "vector" and static_reason is not None and static_reason not in noted:
            noted.add(static_reason)
            sim.recorder.on_note(deduped_note(static_reason, len(reps)))
        summaries.append(
            sim.run_until_round(
                rep.rounds,
                t_max=rep.horizon(),
                grace=rep.grace,
                adaptive=resolve_adaptive(rep, "metrics"),
                abort_unreachable=rep.abort_unreachable,
            )
        )
        stopped = stopped and sim.stopped_early
    return ShardOutcome(
        shard_index=shard_index,
        replication_indices=tuple(replication_indices),
        summary=merge_summaries(summaries),
        stopped_early=stopped,
        vector_lanes=vector_lanes,
        fallback_lanes=sum(fallback_counts.values()),
        ineligible_lanes=ineligible_lanes,
        fallback_reasons=tuple(sorted(fallback_counts.items())),
        ineligible_reason=static_reason if resolved != "event" else None,
    )


def measure_sharded(
    scenario: Scenario, outcomes: Sequence[ShardOutcome], check_guarantees: Optional[bool] = None
) -> ScenarioResult:
    """Fold shard outcomes (in shard order) into the scenario's final result.

    The shard summaries merge through the same exact algebra the shards used
    internally, so any grouping of the same replications -- one shard, one
    per replication, or anything between -- produces float-for-float the
    same measurements; only the provenance (``shard_count``,
    ``shard_horizons``) records how the work was split.
    """
    outcomes = sorted(outcomes, key=lambda outcome: outcome.shard_index)
    merged = merge_summaries([outcome.summary for outcome in outcomes])
    check = _resolve_check(scenario, check_guarantees)
    result = _measure_streamed(
        scenario,
        merged.compact(),  # drop the retained samples: results stay lean
        check,
        stopped_early=all(outcome.stopped_early for outcome in outcomes),
    )
    provenance = merge_kernel_provenance(
        resolve_kernel(scenario),
        [
            KernelProvenance(
                resolved=resolve_kernel(scenario),
                vector_lanes=outcome.vector_lanes,
                fallback_lanes=outcome.fallback_lanes,
                ineligible_lanes=outcome.ineligible_lanes,
                fallback_reasons=outcome.fallback_reasons,
                ineligible_reason=outcome.ineligible_reason,
            )
            for outcome in outcomes
        ],
    )
    return dataclasses_replace(
        result,
        shard_count=len(outcomes),
        shard_horizons=tuple(outcome.summary.end_time for outcome in outcomes),
        kernel_provenance=provenance,
    )


def run_scenario(
    scenario: Scenario,
    check_guarantees: Optional[bool] = None,
    trace_level: str = "full",
) -> ScenarioResult:
    """Build, run and measure ``scenario``.

    ``check_guarantees`` controls whether the Srikanth-Toueg analytic bounds
    are evaluated against the execution; by default they are evaluated exactly
    when the scenario runs an ST algorithm within its resilience bound under a
    tolerated attack.  ``trace_level="metrics"`` runs the whole pipeline
    without constructing a trace: the engine streams the scalar measurements
    (identical values, O(n) memory) and ``result.trace`` is ``None``.

    The horizon adapts per :func:`resolve_adaptive`: metrics-level runs halt
    the instant the target round completes (plus ``scenario.grace``) without
    per-event polling, full-trace runs keep the historical poll so traces
    stay byte-identical.  Either way :attr:`Scenario.horizon` caps runs that
    never complete the target round (``scenario.abort_unreachable`` opts into
    ending provably infeasible runs at the fatal crash instead).

    A replicated scenario (``replications > 1``, metrics level only) runs
    every replication here, in process, folded through the exact shard-merge
    algebra along the resolved shard plan -- the serial reference the
    parallel sharded backend (:mod:`repro.runner.sharded`) is
    float-for-float identical to.

    The resolved kernel (:func:`repro.sim.kernel.resolve_kernel`) decides
    which engine steps each run: eligible metrics-level runs under
    ``"auto"``/``"vector"`` are evaluated by the batched NumPy kernel
    (float-identical by contract), everything else -- and every run the
    vector evaluator refuses -- by the event loop, with the fallback reason
    recorded via ``on_note`` when the vector kernel was in play.
    """
    with obs.span("scenario.run") as sp:
        sp.set("algorithm", scenario.algorithm)
        sp.set("n", scenario.params.n)
        sp.set("trace_level", trace_level)
        result = _run_scenario(scenario, check_guarantees, trace_level)
        provenance = result.kernel_provenance
        if scenario.replications <= 1 and provenance is not None:
            # Replicated scenarios already accounted per shard inside
            # run_shard; counting the merged provenance again would double.
            _account_kernel_lanes(
                provenance.vector_lanes,
                provenance.fallback_lanes,
                provenance.ineligible_lanes,
                provenance.fallback_reasons,
            )
        return result


def _run_scenario(
    scenario: Scenario,
    check_guarantees: Optional[bool],
    trace_level: str,
) -> ScenarioResult:
    if scenario.replications > 1:
        if trace_level != "metrics":
            raise ValueError(
                f"replications require trace_level='metrics' (full traces do not merge); "
                f"got {trace_level!r} with replications={scenario.replications}"
            )
        outcomes = [
            run_shard(scenario, shard_index, block)
            for shard_index, block in enumerate(plan_shards(scenario))
        ]
        return measure_sharded(scenario, outcomes, check_guarantees)

    check = _resolve_check(scenario, check_guarantees)
    resolved = resolve_kernel(scenario)
    fallback_reason: Optional[str] = None
    provenance = KernelProvenance(resolved=resolved, ineligible_lanes=1)
    if resolved != "event":
        reason = kernel_ineligibility(scenario, trace_level)
        if reason is None:
            outcome = run_lanes([scenario], sample_messages=scenario.sample_messages)[0]
            if outcome.fallback is None:
                result = _measure_streamed(
                    scenario, outcome.summary, check, stopped_early=outcome.stopped_early
                )
                return dataclasses_replace(
                    result,
                    kernel_provenance=KernelProvenance(
                        resolved=resolved, vector_lanes=1
                    ),
                )
            fallback_reason = outcome.fallback
            provenance = KernelProvenance(
                resolved=resolved,
                fallback_lanes=1,
                fallback_reasons=((fallback_reason, 1),),
            )
        else:
            provenance = KernelProvenance(
                resolved=resolved, ineligible_lanes=1, ineligible_reason=reason
            )
            if resolved == "vector":
                # An explicit vector request never errors: run on the event
                # loop (float-identical by contract) and annotate why.
                fallback_reason = reason

    handles = build_cluster(scenario, trace_level=trace_level, sample_messages=scenario.sample_messages)
    sim = handles.sim
    if fallback_reason is not None:
        sim.recorder.on_note(fallback_note(fallback_reason))
    horizon = scenario.horizon()
    observed = sim.run_until_round(
        scenario.rounds,
        t_max=horizon,
        grace=scenario.grace,
        adaptive=resolve_adaptive(scenario, trace_level),
        abort_unreachable=scenario.abort_unreachable,
    )

    if trace_level == "metrics":
        result = _measure_streamed(scenario, observed, check, stopped_early=sim.stopped_early)
    else:
        result = _measure_full(scenario, observed, check, stopped_early=sim.stopped_early)
    return dataclasses_replace(result, kernel_provenance=provenance)
