"""Scenario descriptions, cluster assembly and parameter sweeps."""

from .scenarios import (
    ALL_ALGORITHMS,
    BASELINE_ALGORITHMS,
    CLOCK_MODES,
    DELAY_MODES,
    ST_ALGORITHMS,
    TRACE_LEVELS,
    ClusterHandles,
    KernelProvenance,
    Scenario,
    ScenarioResult,
    build_cluster,
    resolve_adaptive,
    run_scenario,
)
from .sweeps import grid, run_sweep, scenario_sweep, stream_sweep

__all__ = [
    "Scenario",
    "ScenarioResult",
    "KernelProvenance",
    "ClusterHandles",
    "build_cluster",
    "resolve_adaptive",
    "run_scenario",
    "ST_ALGORITHMS",
    "BASELINE_ALGORITHMS",
    "ALL_ALGORITHMS",
    "CLOCK_MODES",
    "DELAY_MODES",
    "TRACE_LEVELS",
    "grid",
    "scenario_sweep",
    "run_sweep",
    "stream_sweep",
]
