"""The sharded execution backend: replication shards on the shared worker pool.

A replicated scenario (``Scenario.replications > 1``) is a bag of independent
seeded runs whose result is the exact merge of the per-run summaries
(:func:`~repro.sim.recorder.merge_summaries`).  Because the merge is
associative, the replication axis can be *sharded*: split into blocks, each
block executed (and locally folded) by a worker process, and the per-shard
summaries folded again in the parent -- float-for-float identical to running
every replication in one process, for any shard plan.

This module supplies the pieces the :class:`~repro.runner.core.SweepRunner`
composes into its windowed submission loop, so grid parallelism and shard
parallelism share one bounded pool:

* :func:`shard_plan_for` / :func:`expand_shards` -- turn one scenario into
  its deterministic shard tasks,
* :func:`run_shard_chunk` -- the picklable worker task (a batch of shard
  tasks, each running its replication block via
  :func:`~repro.workloads.scenarios.run_shard`),
* :class:`ShardFold` -- the parent-side accumulator that collects a
  scenario's shard outcomes and emits the folded
  :class:`~repro.workloads.scenarios.ScenarioResult` the moment the last
  shard lands (outcomes are dropped immediately after, so the parent holds
  O(in-flight scenarios) shard summaries, never O(grid)),
* :class:`ShardedRunner` -- the single-scenario facade: run one replicated
  scenario across the shared pool and get its folded result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..workloads.scenarios import (
    Scenario,
    ScenarioResult,
    ShardOutcome,
    measure_sharded,
    plan_shards,
    resolve_shards,
    run_shard,
)

if TYPE_CHECKING:  # pragma: no cover
    from .core import SweepRunner

#: One shard task: (scenario index, scenario, shard index, replication block).
ShardTask = tuple[int, Scenario, int, tuple]


def shard_plan_for(scenario: Scenario, trace_level: str) -> Optional[list[tuple]]:
    """The scenario's shard plan, or ``None`` when it runs as a single task.

    A scenario splits only when it is replicated, observed at metrics level
    (full traces do not merge) and its resolved shard count exceeds one; a
    replicated scenario whose plan resolves to a single shard still runs as
    one task (the worker folds its replications in process).
    """
    if scenario.replications <= 1 or trace_level != "metrics":
        return None
    if resolve_shards(scenario) <= 1:
        return None
    return plan_shards(scenario)


def expand_shards(index: int, scenario: Scenario, plan: Sequence[tuple]) -> list[ShardTask]:
    """The shard tasks of one scenario, in shard order."""
    return [(index, scenario, shard_index, tuple(block)) for shard_index, block in enumerate(plan)]


def run_shard_chunk(chunk: list[ShardTask]) -> list[tuple[int, ShardOutcome]]:
    """Worker task: run a batch of shard tasks, one folded outcome each."""
    return [(index, run_shard(scenario, shard_index, block)) for index, scenario, shard_index, block in chunk]


class ShardFold:
    """Parent-side accumulator folding shard outcomes into scenario results.

    ``add`` collects outcomes per scenario index (shards arrive in completion
    order) and returns the folded result exactly once -- when the last
    expected shard lands -- after which the scenario's outcomes are dropped.
    The fold sorts by shard index and merges through the same algebra the
    shards used internally, so the emitted result is independent of
    completion order and of the shard plan itself.
    """

    def __init__(self) -> None:
        self._outcomes: dict[int, list[ShardOutcome]] = {}
        self._expected: dict[int, int] = {}
        self._checks: dict[int, Optional[bool]] = {}
        self._scenarios: dict[int, Scenario] = {}

    def expect(self, index: int, scenario: Scenario, shard_count: int, check_guarantees: Optional[bool]) -> None:
        """Register a scenario whose ``shard_count`` outcomes will be added."""
        self._expected[index] = shard_count
        self._checks[index] = check_guarantees
        self._scenarios[index] = scenario
        self._outcomes[index] = []

    def pending(self) -> int:
        """Scenarios still waiting for at least one shard."""
        return len(self._expected)

    def outcomes_held(self) -> int:
        """Shard outcomes currently buffered (memory introspection for tests)."""
        return sum(len(outcomes) for outcomes in self._outcomes.values())

    def add(self, index: int, outcome: ShardOutcome) -> Optional[ScenarioResult]:
        """Fold one shard outcome in; return the final result when complete."""
        outcomes = self._outcomes[index]
        outcomes.append(outcome)
        if len(outcomes) < self._expected[index]:
            return None
        scenario = self._scenarios.pop(index)
        check = self._checks.pop(index)
        del self._expected[index]
        del self._outcomes[index]
        return measure_sharded(scenario, outcomes, check_guarantees=check)


class ShardedRunner:
    """Single-scenario facade over the sharded backend.

    Wraps a :class:`~repro.runner.core.SweepRunner` (the process-wide default
    when none is given) and runs one replicated scenario across its
    lazily-spawned worker pool, returning the folded result.  Sweeps do not
    need this class -- ``run_sweep``/``stream_sweep`` shard replicated
    scenarios transparently -- but it is the convenient entry point for
    "one configuration, many replications, all my cores" workloads.
    """

    def __init__(self, runner: Optional["SweepRunner"] = None) -> None:
        if runner is None:
            from .config import get_runner

            runner = get_runner()
        self.runner = runner

    def run(self, scenario: Scenario, check_guarantees: Optional[bool] = None) -> ScenarioResult:
        """Run ``scenario``'s replications across the pool and fold the result."""
        if scenario.replications <= 1:
            raise ValueError("ShardedRunner.run needs a replicated scenario (replications > 1)")
        return self.runner.run(scenario, check_guarantees=check_guarantees, trace_level="metrics")

    def __repr__(self) -> str:
        return f"ShardedRunner(runner={self.runner!r})"
