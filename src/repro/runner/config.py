"""The process-wide default sweep runner.

The experiment modules, :func:`repro.workloads.sweeps.run_sweep`, the CLI and
the report generator all execute sweeps through one shared
:class:`~repro.runner.core.SweepRunner` so that a single ``--jobs 8`` (or
``REPRO_JOBS=8``) parallelizes every sweep in the process.  Library users who
need an isolated configuration construct their own runner and pass it
explicitly.

Environment defaults (used until :func:`configure` is called):

* ``REPRO_JOBS`` -- worker processes (``0`` means one per CPU; default ``1``),
* ``REPRO_CACHE`` -- set to ``0``/``false``/``no``/``off`` to disable the
  result cache (default: enabled),
* ``REPRO_CACHE_DIR`` -- cache location (default ``~/.cache/repro-sweeps``).

The sharded backend's auto shard plan (``Scenario.shards=None``) resolves to
one shard per core; ``REPRO_SHARDS`` overrides that resolution (see
:func:`repro.workloads.scenarios.auto_shard_count`).  It is read per sweep,
not captured here, because the shard plan is part of each scenario's cache
key.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .cache import ResultCache
from .core import SweepRunner

_FALSY = {"0", "false", "no", "off", ""}

_default_runner: Optional[SweepRunner] = None


def _env_jobs() -> int:
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None


def _env_cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _FALSY


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Union[str, Path, None] = None,
) -> SweepRunner:
    """Install (and return) the process-wide default runner.

    Arguments left as ``None`` fall back to the environment defaults above,
    except that an explicitly passed ``cache_dir`` implies caching (it would
    otherwise be silently ignored under ``REPRO_CACHE=0``).
    """
    global _default_runner
    if jobs is None:
        jobs = _env_jobs()
    if use_cache is None:
        use_cache = True if cache_dir is not None else _env_cache_enabled()
    cache = ResultCache(cache_dir) if use_cache else None
    if _default_runner is not None:
        _default_runner.close()
    _default_runner = SweepRunner(jobs=jobs, cache=cache)
    return _default_runner


def get_runner() -> SweepRunner:
    """The current default runner (built from the environment on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = configure()
    return _default_runner


def reset_runner() -> None:
    """Forget the configured default (next :func:`get_runner` re-reads the env)."""
    global _default_runner
    if _default_runner is not None:
        _default_runner.close()
    _default_runner = None
