"""The process-wide default sweep runner.

The experiment modules, :func:`repro.workloads.sweeps.run_sweep`, the CLI and
the report generator all execute sweeps through one shared
:class:`~repro.runner.core.SweepRunner` so that a single ``--jobs 8`` (or
``REPRO_JOBS=8``) parallelizes every sweep in the process.  Library users who
need an isolated configuration construct their own runner and pass it
explicitly.

Executor lifecycle is owned here too: :func:`configure` and
:func:`reset_runner` close the previous runner before installing (or
forgetting) a default, and ``SweepRunner.close`` tears down whichever
execution backend it spawned -- so swapping configurations, or resetting
between tests, reaps local pool processes and protocol worker subprocesses
alike (no leaked children).

Environment defaults (used until :func:`configure` is called):

* ``REPRO_JOBS`` -- worker processes (``0`` means one per CPU; default ``1``),
* ``REPRO_EXECUTOR`` -- execution backend: ``pool`` (default, in-process
  multiprocessing), ``subprocess`` (local protocol workers with
  fault-tolerant scheduling) or ``ssh`` (protocol workers on
  ``REPRO_SSH_HOSTS``),
* ``REPRO_AUTOSCALE`` -- autoscaling policy for the protocol backends:
  ``1``/``on`` enables it with the default bounds (floor 1, ceiling
  ``jobs``), a single integer sets the ceiling (``REPRO_AUTOSCALE=8``), and
  ``min:max`` sets both bounds (``REPRO_AUTOSCALE=2:8``).  Unset or falsy
  leaves the fleet at its fixed size.  Rejected (loudly) with the ``pool``
  backend, which cannot scale,
* ``REPRO_CACHE`` -- set to ``0``/``false``/``no``/``off`` to disable the
  result cache (default: enabled),
* ``REPRO_CACHE_DIR`` -- cache location (default ``~/.cache/repro-sweeps``).

The sharded backend's auto shard plan (``Scenario.shards=None``) resolves to
one shard per core; ``REPRO_SHARDS`` overrides that resolution (see
:func:`repro.workloads.scenarios.auto_shard_count`).  It is read per sweep,
not captured here, because the shard plan is part of each scenario's cache
key.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .cache import ResultCache
from .core import SweepRunner
from .exec import EXECUTOR_SPECS, Executor, ExecutorSpec

_FALSY = {"0", "false", "no", "off", ""}

_default_runner: Optional[SweepRunner] = None


def _env_jobs() -> int:
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None


def _env_executor() -> str:
    raw = os.environ.get("REPRO_EXECUTOR", "").strip().lower()
    if not raw:
        return "pool"
    if raw not in EXECUTOR_SPECS:
        raise ValueError(f"REPRO_EXECUTOR must be one of {EXECUTOR_SPECS}, got {raw!r}")
    return raw


def _env_cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in _FALSY


def _env_autoscale() -> dict:
    """Fleet options from ``REPRO_AUTOSCALE`` (empty dict when unset/falsy)."""
    raw = os.environ.get("REPRO_AUTOSCALE", "").strip().lower()
    if not raw or raw in _FALSY:
        return {}
    if raw in {"1", "true", "yes", "on"}:
        return {"autoscale": True}
    try:
        if ":" in raw:
            low, _, high = raw.partition(":")
            return {"autoscale": True, "min_workers": int(low), "max_workers": int(high)}
        return {"autoscale": True, "max_workers": int(raw)}
    except ValueError:
        raise ValueError(
            f"REPRO_AUTOSCALE must be a flag, an integer ceiling, or min:max bounds, got {raw!r}"
        ) from None


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Union[str, Path, None] = None,
    executor: ExecutorSpec = None,
    workers: Optional[int] = None,
    autoscale: Optional[bool] = None,
    min_workers: Optional[int] = None,
    max_workers: Optional[int] = None,
) -> SweepRunner:
    """Install (and return) the process-wide default runner.

    Arguments left as ``None`` fall back to the environment defaults above,
    except that an explicitly passed ``cache_dir`` implies caching (it would
    otherwise be silently ignored under ``REPRO_CACHE=0``).  ``executor``
    selects the execution backend (``REPRO_EXECUTOR`` otherwise); ``workers``
    is the backend-flavoured spelling of ``jobs`` (the CLI's ``--executor
    subprocess --workers 4``) and overrides it when both are given.
    ``autoscale``/``min_workers``/``max_workers`` set the protocol backends'
    elasticity policy (``REPRO_AUTOSCALE`` otherwise; giving scale bounds
    implies ``autoscale=True``).  The previously installed runner is closed
    first, reaping its workers.
    """
    global _default_runner
    if jobs is None:
        jobs = _env_jobs()
    if workers is not None:
        jobs = workers
    if executor is None:
        executor = _env_executor()
    elif isinstance(executor, str) and executor not in EXECUTOR_SPECS:
        raise ValueError(f"executor must be one of {EXECUTOR_SPECS}, got {executor!r}")
    elif not isinstance(executor, (str, Executor)):
        raise TypeError(f"executor must be a spec name or Executor instance, got {executor!r}")
    if autoscale is None and min_workers is None and max_workers is None:
        options = _env_autoscale()
    else:
        options = {}
        if autoscale is not None:
            options["autoscale"] = autoscale
        if min_workers is not None:
            options["min_workers"] = min_workers
        if max_workers is not None:
            options["max_workers"] = max_workers
    if use_cache is None:
        use_cache = True if cache_dir is not None else _env_cache_enabled()
    cache = ResultCache(cache_dir) if use_cache else None
    if _default_runner is not None:
        _default_runner.close()
    _default_runner = SweepRunner(jobs=jobs, cache=cache, executor=executor, executor_options=options or None)
    return _default_runner


def get_runner() -> SweepRunner:
    """The current default runner (built from the environment on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = configure()
    return _default_runner


def reset_runner() -> None:
    """Forget the configured default (next :func:`get_runner` re-reads the env).

    Closes the runner first, so any execution backend it spawned -- the
    local pool or protocol worker subprocesses -- is reaped before the
    default is dropped.
    """
    global _default_runner
    if _default_runner is not None:
        _default_runner.close()
    _default_runner = None
