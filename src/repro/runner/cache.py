"""On-disk cache of scenario results.

A cache entry is one pickled :class:`~repro.workloads.scenarios.ScenarioResult`
stored under a key that captures everything the result depends on:

* the full declarative scenario description (including its parameters and
  seed), serialized canonically,
* the *resolved* ``check_guarantees`` flag (it changes whether the result
  carries a guarantee report),
* a code-version salt: a digest of every source file that can influence a
  simulation outcome, so editing the simulator, the algorithms or the metrics
  invalidates all previously cached results automatically.

Keys are therefore stable across Python invocations and machines (no use of
the randomized builtin ``hash``), which is what makes warm-cache report
regeneration possible.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .. import obs
from ..analysis.serialize import scenario_to_dict
from ..sim.kernel import resolve_kernel
from ..workloads.scenarios import Scenario, ScenarioResult, resolve_adaptive, resolve_shards

#: Bump when the on-disk entry format changes (pickled object layout, key schema).
#: 2: ScenarioResult gained ``trace_level`` (and an optional trace); keys carry
#: the trace level.
#: 3: ScenarioResult records the effective horizon (``effective_horizon``,
#: ``stopped_early``); scenarios carry adaptive-horizon fields, keyed by their
#: *resolved* values so the default and its explicit spelling share entries.
#: 4: scenarios carry the replication axis (``replications``, ``shards``,
#: ``abort_unreachable``) and results carry shard provenance (``shard_count``,
#: ``shard_horizons``).  Keys carry the *resolved* shard plan: the measured
#: values are shard-invariant, but the stored provenance is not, so the
#: ``None``-auto default and an explicit equal shard count share one entry
#: while different plans get their own.
#: 5: scenarios carry the sampling message trace (``sample_messages``) and
#: results carry the retained ``message_samples``.  The executor backend is
#: deliberately NOT part of the key: results are invariant to where they
#: were computed, so a warm cache serves every backend.
#: 6: scenarios carry the simulation kernel (``kernel``); keys carry the
#: *resolved* selection (field -> ``REPRO_KERNEL`` env -> ``"auto"``).  The
#: kernels are float-identical by contract, but that parity is enforced by
#: tests and the bench gate, not assumed by the cache -- a result recorded
#: under one engine is never served for a request pinning the other (and
#: fallback notes in the summary depend on the selection).
#: 7: ScenarioResult carries per-sweep kernel provenance
#: (``kernel_provenance``); the vector whitelist widened to echo, uniform
#: delays and the forge_flood attack, changing which runs the vector engine
#: serves under ``"auto"``.
#: 8: the vector whitelist widened again -- the ``random_*`` attack
#: strategies, drifting (``random``-mode) clocks and ``min`` delays --
#: changing which runs ``"auto"`` resolves to the vector engine (results
#: stay float-identical; only provenance and notes depend on the engine).
SCHEMA_VERSION = 8

#: Source files that cannot influence a simulation result and are therefore
#: excluded from the code-version salt (editing them must not invalidate the
#: cache).  ``worker.py`` is the remote-executor entry loop: like the runner
#: package it decides where scenarios run, never what they compute, and the
#: ``obs`` telemetry package only watches -- it never touches simulated time
#: or any seeded RNG stream, so its edits cannot change a result either.
_SALT_EXCLUDED_PARTS = ("runner", "experiments", "obs")
_SALT_EXCLUDED_FILES = ("cli.py", "__main__.py", "worker.py")

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Digest of every source file that determines simulation results.

    Computed once per process over the ``repro`` package sources (excluding
    the runner itself, the experiment table definitions and the CLI, none of
    which affect what :func:`~repro.workloads.scenarios.run_scenario` returns
    for a given scenario).
    """
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256(f"schema:{SCHEMA_VERSION}".encode())
        # Pickled entries are not guaranteed portable across interpreters.
        digest.update(f"python:{sys.version_info[0]}.{sys.version_info[1]}".encode())
        for path in sorted(package_root.rglob("*.py")):
            relative = path.relative_to(package_root)
            if relative.parts and relative.parts[0] in _SALT_EXCLUDED_PARTS:
                continue
            if relative.name in _SALT_EXCLUDED_FILES:
                continue
            digest.update(str(relative).encode())
            digest.update(path.read_bytes())
        _code_salt = digest.hexdigest()
    return _code_salt


def cache_key(
    scenario: Scenario,
    check_guarantees: bool,
    trace_level: str = "full",
    salt: Optional[str] = None,
) -> str:
    """Stable content hash of ``(scenario, check_guarantees, trace_level, salt)``.

    The scenario's display ``name`` is cosmetic (it never influences the
    simulation), so differently-labelled but otherwise identical scenarios
    share one cache entry; the runner re-attaches the requested scenario on
    a hit.  ``trace_level`` is part of the key because it changes what the
    stored result contains (a full trace versus streamed scalars only).
    The adaptive-horizon fields are keyed by their *resolved* values: the
    ``None`` default and its per-trace-level resolution share one entry, and
    ``grace`` only keys adaptive runs (historical runs ignore it).  The shard
    plan is likewise keyed *resolved* (``shards=None`` and an explicit equal
    count share one entry); it is part of the key because the stored result's
    provenance (``shard_count``, ``shard_horizons``) records it, even though
    the measured values are shard-invariant by construction.  The simulation
    kernel is keyed *resolved* too (``kernel=None`` and the matching
    ``REPRO_KERNEL`` spelling share one entry), because the selection decides
    which engine recorded the stored result and whether it carries fallback
    notes -- parity between the engines is enforced elsewhere, not assumed
    here.
    """
    description = scenario_to_dict(scenario)
    description.pop("name", None)
    adaptive = resolve_adaptive(scenario, trace_level)
    description["adaptive_horizon"] = adaptive
    description["grace"] = scenario.grace if adaptive else 0.0
    description["shards"] = resolve_shards(scenario)
    description["kernel"] = resolve_kernel(scenario)
    payload = {
        "scenario": description,
        "check_guarantees": bool(check_guarantees),
        "trace_level": trace_level,
        "salt": salt if salt is not None else code_salt(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def default_cache_dir() -> Path:
    """The cache directory used when none is configured.

    ``REPRO_CACHE_DIR`` wins; otherwise results go to ``~/.cache/repro-sweeps``
    (or ``$XDG_CACHE_HOME/repro-sweeps`` when set).
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-sweeps"


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}


class ResultCache:
    """Pickle-per-entry result cache rooted at ``directory``.

    Entries are sharded into 256 subdirectories by key prefix and written
    atomically (temp file + rename), so concurrent sweep runs can share a
    cache directory safely.  Unreadable or corrupt entries count as misses
    and are deleted.
    """

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r})"

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def _count(self, what: str, key: str) -> None:
        """Bump a :class:`CacheStats` field and mirror it into telemetry.

        The ``enabled()`` guard keeps the disabled path allocation-free: no
        event-detail dict is built unless a tracer is installed.
        """
        setattr(self.stats, what, getattr(self.stats, what) + 1)
        obs.inc(f"cache.{what}")
        if obs.enabled():
            singular = {"hits": "hit", "misses": "miss", "stores": "store"}[what]
            obs.event(f"cache.{singular}", {"key": key, "backend": "disk"})

    def get(self, key: str) -> Optional[ScenarioResult]:
        """Return the cached result for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self._count("misses", key)
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            # A corrupt or stale entry (e.g. interrupted write, renamed class):
            # drop it and recompute.
            path.unlink(missing_ok=True)
            self._count("misses", key)
            return None
        self._count("hits", key)
        return result

    def put(self, key: str, result: ScenarioResult) -> None:
        """Store ``result`` under ``key`` atomically.

        Best-effort: an unwritable or full cache directory must not kill the
        sweep that produced the result, so storage errors are swallowed (the
        entry simply is not cached).
        """
        path = self._path(key)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return
        self._count("stores", key)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; return how many were removed."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*/*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
