"""Parallel sweep execution with on-disk result caching.

Every experiment in the reproduction is a sweep over independent, seeded
scenarios, so the grid points can be computed in any order and on any number
of worker processes without changing the results.  This subsystem provides:

* :class:`~repro.runner.core.SweepRunner` -- executes a list of scenarios
  either serially (exact result ordering, deterministic callback order) or
  across worker processes (``jobs > 1``), with chunked batching to amortize
  pickling overhead,
* :class:`~repro.runner.cache.ResultCache` -- an on-disk cache keyed by a
  stable hash of the scenario description, the resolved ``check_guarantees``
  flag and a code-version salt, so repeated sweeps and report regeneration
  skip already-computed grid points,
* :mod:`~repro.runner.sharded` -- the sharded execution backend: replicated
  scenarios split along a deterministic shard plan into worker tasks that
  share the sweep pool, and the per-shard summaries fold through the exact
  merge algebra of :class:`repro.sim.recorder.OnlineMetricsSummary`, so
  sharding never changes a measured value,
* :mod:`~repro.runner.exec` -- the pluggable execution backends behind the
  sweep: the historical in-process pool (``pool``), long-lived protocol
  worker subprocesses with fault-tolerant scheduling (``subprocess``), and
  the same wire protocol over ``ssh``.  Scenarios are pure functions of
  their description, so backend choice never changes a measured value,
* :mod:`~repro.runner.config` -- the process-wide default runner that
  :func:`repro.workloads.sweeps.run_sweep`, the experiment modules, the CLI
  and the report generator all share (configured via
  ``--jobs``/``--executor``/``--no-cache`` or the ``REPRO_JOBS``/
  ``REPRO_EXECUTOR``/``REPRO_CACHE``/``REPRO_CACHE_DIR``/``REPRO_SHARDS``
  environment variables).
"""

from .cache import CacheStats, ResultCache, cache_key, code_salt, default_cache_dir
from .config import configure, get_runner, reset_runner
from .core import SweepRunner, resolve_check_guarantees
from .exec import (
    Executor,
    ExecutorError,
    ExecutorFailure,
    LocalPoolExecutor,
    RemoteTaskError,
    SSHExecutor,
    SubprocessWorkerExecutor,
    make_executor,
)
from .sharded import ShardedRunner, ShardFold

__all__ = [
    "SweepRunner",
    "ShardedRunner",
    "ShardFold",
    "Executor",
    "ExecutorError",
    "ExecutorFailure",
    "RemoteTaskError",
    "LocalPoolExecutor",
    "SubprocessWorkerExecutor",
    "SSHExecutor",
    "make_executor",
    "ResultCache",
    "CacheStats",
    "cache_key",
    "code_salt",
    "default_cache_dir",
    "configure",
    "get_runner",
    "reset_runner",
    "resolve_check_guarantees",
]
