"""The sweep runner: serial or multi-process execution of scenario lists.

Scenarios are fully declarative and seeded, so each grid point is a pure
function of its :class:`~repro.workloads.scenarios.Scenario` -- independent of
execution order, host process and sibling scenarios.  That makes the sweep
embarrassingly parallel: the runner ships batches of scenarios to worker
processes and reassembles the results in input order, producing exactly the
table a serial run would.

Guarantees:

* Results are always returned in input order, bit-identical between
  ``jobs=1`` and ``jobs=N`` for the same scenarios (each scenario carries its
  own seed and the simulation never reads global RNG state).
* With ``jobs=1`` the progress ``callback`` fires in input order, exactly
  like the historical ``run_sweep`` loop; with ``jobs>1`` it fires in
  completion order (still once per scenario, cache hits included).
* Batching (``chunk_size``) amortizes per-task pickling and scheduling
  overhead; the default targets a few chunks per worker so stragglers do not
  serialize the tail of the sweep.
"""

from __future__ import annotations

import dataclasses
import math
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Optional, Sequence, Union

from ..workloads.scenarios import ST_ALGORITHMS, TRACE_LEVELS, Scenario, ScenarioResult, run_scenario
from .cache import ResultCache, cache_key, code_salt

#: ``check_guarantees`` as accepted by :meth:`SweepRunner.run_sweep`: one flag
#: for the whole sweep, or one per scenario.
CheckSpec = Union[None, bool, Sequence[Optional[bool]]]

#: ``trace_level`` as accepted by :meth:`SweepRunner.run_sweep`: one level for
#: the whole sweep, or one per scenario.
TraceSpec = Union[str, Sequence[str]]

#: Maximum scenarios per worker task; beyond this, batching stops paying for
#: itself and only hurts load balance.
MAX_CHUNK = 32


def resolve_check_guarantees(scenario: Scenario, check_guarantees: Optional[bool]) -> bool:
    """The effective guarantee-checking flag for one scenario.

    Mirrors the defaulting inside
    :func:`~repro.workloads.scenarios.run_scenario`: guarantees are verified
    exactly when the scenario runs a Srikanth-Toueg algorithm, and (absent an
    explicit flag) only within its resilience bound.  The resolved flag is
    what the result cache keys on, so ``None`` and its resolved value share
    one cache entry.
    """
    st_scenario = scenario.algorithm in ST_ALGORITHMS
    if check_guarantees is None:
        check_guarantees = scenario.actual_faults <= scenario.params.f
    return st_scenario and bool(check_guarantees)


def _normalize_checks(scenarios: Sequence[Scenario], check_guarantees: CheckSpec) -> list[bool]:
    if check_guarantees is None or isinstance(check_guarantees, bool):
        return [resolve_check_guarantees(s, check_guarantees) for s in scenarios]
    checks = list(check_guarantees)
    if len(checks) != len(scenarios):
        raise ValueError(f"check_guarantees has {len(checks)} entries for {len(scenarios)} scenarios")
    return [resolve_check_guarantees(s, c) for s, c in zip(scenarios, checks)]


def _normalize_trace_levels(scenarios: Sequence[Scenario], trace_level: TraceSpec) -> list[str]:
    if isinstance(trace_level, str):
        levels = [trace_level] * len(scenarios)
    else:
        levels = list(trace_level)
        if len(levels) != len(scenarios):
            raise ValueError(f"trace_level has {len(levels)} entries for {len(scenarios)} scenarios")
    for level in levels:
        if level not in TRACE_LEVELS:
            raise ValueError(f"unknown trace_level {level!r}; expected one of {TRACE_LEVELS}")
    return levels


def _run_chunk(chunk: list[tuple[int, Scenario, bool, str]]) -> list[tuple[int, ScenarioResult]]:
    """Worker task: run a batch of (index, scenario, check, trace_level) tuples."""
    return [
        (index, run_scenario(scenario, check_guarantees=check, trace_level=level))
        for index, scenario, check, level in chunk
    ]


class SweepRunner:
    """Executes scenario sweeps serially or across worker processes.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` (the default) runs in-process with
        exact historical ordering; ``0`` or ``None`` means "one per CPU".
    cache:
        A :class:`~repro.runner.cache.ResultCache`, or ``None`` to disable
        caching.
    chunk_size:
        Scenarios per worker task; ``None`` picks a size that gives every
        worker several chunks (bounded by :data:`MAX_CHUNK`).
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.jobs = jobs
        self.cache = cache
        self.chunk_size = chunk_size

    # -- execution ---------------------------------------------------------

    def run(
        self,
        scenario: Scenario,
        check_guarantees: Optional[bool] = None,
        trace_level: str = "full",
    ) -> ScenarioResult:
        """Run (or fetch from cache) a single scenario."""
        return self.run_sweep([scenario], check_guarantees=check_guarantees, trace_level=trace_level)[0]

    def run_sweep(
        self,
        scenarios: Iterable[Scenario],
        check_guarantees: CheckSpec = None,
        callback: Optional[Callable[[ScenarioResult], None]] = None,
        trace_level: TraceSpec = "full",
    ) -> list[ScenarioResult]:
        """Run every scenario and return the results in input order."""
        scenarios = list(scenarios)
        checks = _normalize_checks(scenarios, check_guarantees)
        levels = _normalize_trace_levels(scenarios, trace_level)
        if not scenarios:
            return []
        if self.jobs <= 1 or len(scenarios) == 1:
            return self._run_serial(scenarios, checks, levels, callback)
        return self._run_parallel(scenarios, checks, levels, callback)

    def _cached(
        self, scenario: Scenario, check: bool, level: str, salt: str
    ) -> tuple[Optional[str], Optional[ScenarioResult]]:
        if self.cache is None:
            return None, None
        key = cache_key(scenario, check, trace_level=level, salt=salt)
        result = self.cache.get(key)
        if result is not None and result.scenario != scenario:
            # The key ignores the cosmetic display name; hand back the
            # scenario the caller actually asked for.
            result = dataclasses.replace(result, scenario=scenario)
        return key, result

    def _run_serial(
        self,
        scenarios: Sequence[Scenario],
        checks: Sequence[bool],
        levels: Sequence[str],
        callback: Optional[Callable[[ScenarioResult], None]],
    ) -> list[ScenarioResult]:
        salt = code_salt()
        results = []
        for scenario, check, level in zip(scenarios, checks, levels):
            key, result = self._cached(scenario, check, level, salt)
            if result is None:
                result = run_scenario(scenario, check_guarantees=check, trace_level=level)
                if key is not None:
                    self.cache.put(key, result)
            if callback is not None:
                callback(result)
            results.append(result)
        return results

    def _run_parallel(
        self,
        scenarios: Sequence[Scenario],
        checks: Sequence[bool],
        levels: Sequence[str],
        callback: Optional[Callable[[ScenarioResult], None]],
    ) -> list[ScenarioResult]:
        salt = code_salt()
        results: list[Optional[ScenarioResult]] = [None] * len(scenarios)
        keys: list[Optional[str]] = [None] * len(scenarios)
        pending: list[tuple[int, Scenario, bool, str]] = []
        # With the cache on, repeated grid points are computed once: the first
        # occurrence runs, the rest share its result (as a serial cached run
        # would, where later repeats hit the just-stored entry).
        first_for_key: dict[str, int] = {}
        duplicates: dict[int, list[int]] = {}
        for index, (scenario, check, level) in enumerate(zip(scenarios, checks, levels)):
            key, result = self._cached(scenario, check, level, salt)
            keys[index] = key
            if result is not None:
                results[index] = result
                if callback is not None:
                    callback(result)
                continue
            if key is not None:
                primary = first_for_key.setdefault(key, index)
                if primary != index:
                    duplicates.setdefault(primary, []).append(index)
                    continue
            pending.append((index, scenario, check, level))
        if not pending:
            return results  # type: ignore[return-value]

        workers = min(self.jobs, len(pending))
        chunk = self.chunk_size
        if chunk is None:
            # A few chunks per worker balances batching against stragglers.
            chunk = max(1, min(MAX_CHUNK, math.ceil(len(pending) / (workers * 4))))
        chunks = [pending[i : i + chunk] for i in range(0, len(pending), chunk)]

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_chunk, piece) for piece in chunks}
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    for index, result in future.result():
                        results[index] = result
                        key = keys[index]
                        if key is not None:
                            self.cache.put(key, result)
                        if callback is not None:
                            callback(result)
                        for dup in duplicates.get(index, ()):
                            dup_result = result
                            if scenarios[dup] != result.scenario:
                                dup_result = dataclasses.replace(result, scenario=scenarios[dup])
                            results[dup] = dup_result
                            if callback is not None:
                                callback(dup_result)
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        cache_dir = self.cache.directory if self.cache is not None else None
        return f"SweepRunner(jobs={self.jobs}, cache={str(cache_dir)!r}, chunk_size={self.chunk_size})"
