"""The sweep runner: serial or multi-process execution of scenario lists.

Scenarios are fully declarative and seeded, so each grid point is a pure
function of its :class:`~repro.workloads.scenarios.Scenario` -- independent of
execution order, host process and sibling scenarios.  That makes the sweep
embarrassingly parallel: the runner ships batches of scenarios to worker
processes and reassembles the results in input order, producing exactly the
table a serial run would.

Two consumption styles share one execution core:

* :meth:`SweepRunner.run_sweep` materializes the full result list (input
  order) -- the right tool when the caller post-processes results together.
* :meth:`SweepRunner.stream_sweep` is the incremental-consumer path: an
  ``on_result(index, result)`` reducer fires as each grid point completes and
  the runner retains nothing, so the parent process holds O(1)
  :class:`~repro.workloads.scenarios.ScenarioResult` objects regardless of
  sweep size.  Chunks are submitted in a bounded window (a few per worker),
  so neither pending futures nor completed-but-unconsumed ones can
  accumulate a sweep's worth of results.

Guarantees:

* Results are always returned in input order, bit-identical between
  ``jobs=1`` and ``jobs=N`` for the same scenarios (each scenario carries its
  own seed and the simulation never reads global RNG state).
* With ``jobs=1`` the progress ``callback``/``on_result`` fires in input
  order, exactly like the historical ``run_sweep`` loop; with ``jobs>1`` it
  fires in completion order (still once per scenario, cache hits included).
* Batching (``chunk_size``) amortizes per-task pickling and scheduling
  overhead; the default targets a few chunks per worker so stragglers do not
  serialize the tail of the sweep.
* The execution backend is persistent: it spins up lazily on the first
  parallel sweep and is reused by every later one (experiment suites run many
  sweeps back to back), until :meth:`SweepRunner.close`.
* *Where* chunks run is pluggable (:mod:`repro.runner.exec`): the default
  ``pool`` backend is the historical in-process multiprocessing pool, while
  ``subprocess`` and ``ssh`` run the same chunk tasks on protocol workers
  behind a fault-tolerant scheduler (heartbeats, bounded retries of chunks
  lost to worker crashes, work stealing).  Scenarios are pure functions of
  their declarative description, so backend choice -- and even a mid-sweep
  worker crash with retry -- never changes a result float.
* Replicated scenarios shard transparently: a grid point with
  ``Scenario.replications > 1`` is split along its resolved shard plan
  (:mod:`repro.runner.sharded`) into shard tasks that share the same pool and
  submission window as the plain grid work, and the per-shard summaries fold
  back into one result before ``on_result`` fires -- float-for-float
  identical to the serial fold, so grid parallelism and shard parallelism
  compose without a second pool or any value drift.
"""

from __future__ import annotations

import dataclasses
import math
import os
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Optional, Sequence, Union

from .. import obs
from ..sim.kernel import resolve_kernel
from ..workloads.scenarios import (
    ST_ALGORITHMS,
    TRACE_LEVELS,
    Scenario,
    ScenarioResult,
    resolve_shards,
    run_scenario,
)
from .cache import ResultCache, cache_key, code_salt
from .exec import EXECUTOR_SPECS, Executor, ExecutorFailure, ExecutorSpec, LocalPoolExecutor, make_executor
from .sharded import ShardFold, expand_shards, run_shard_chunk, shard_plan_for

#: ``check_guarantees`` as accepted by :meth:`SweepRunner.run_sweep`: one flag
#: for the whole sweep, or one per scenario.
CheckSpec = Union[None, bool, Sequence[Optional[bool]]]

#: ``trace_level`` as accepted by :meth:`SweepRunner.run_sweep`: one level for
#: the whole sweep, or one per scenario.
TraceSpec = Union[str, Sequence[str]]

#: Maximum scenarios per worker task; beyond this, batching stops paying for
#: itself and only hurts load balance.
MAX_CHUNK = 32

#: In-flight chunks per worker on the streaming path.  Bounds how many
#: results can sit in completed-but-unconsumed futures: the parent never
#: holds more than ``jobs * CHUNK_WINDOW * chunk_size`` results at once.
CHUNK_WINDOW = 2

#: An ``on_result`` reducer: receives the scenario's input index and its
#: result, in completion order.
OnResult = Callable[[int, "ScenarioResult"], None]


def resolve_check_guarantees(scenario: Scenario, check_guarantees: Optional[bool]) -> bool:
    """The effective guarantee-checking flag for one scenario.

    Mirrors the defaulting inside
    :func:`~repro.workloads.scenarios.run_scenario`: guarantees are verified
    exactly when the scenario runs a Srikanth-Toueg algorithm, and (absent an
    explicit flag) only within its resilience bound.  The resolved flag is
    what the result cache keys on, so ``None`` and its resolved value share
    one cache entry.
    """
    st_scenario = scenario.algorithm in ST_ALGORITHMS
    if check_guarantees is None:
        check_guarantees = scenario.actual_faults <= scenario.params.f
    return st_scenario and bool(check_guarantees)


def _normalize_checks(scenarios: Sequence[Scenario], check_guarantees: CheckSpec) -> list[bool]:
    if check_guarantees is None or isinstance(check_guarantees, bool):
        return [resolve_check_guarantees(s, check_guarantees) for s in scenarios]
    checks = list(check_guarantees)
    if len(checks) != len(scenarios):
        raise ValueError(f"check_guarantees has {len(checks)} entries for {len(scenarios)} scenarios")
    return [resolve_check_guarantees(s, c) for s, c in zip(scenarios, checks)]


def _normalize_trace_levels(scenarios: Sequence[Scenario], trace_level: TraceSpec) -> list[str]:
    if isinstance(trace_level, str):
        levels = [trace_level] * len(scenarios)
    else:
        levels = list(trace_level)
        if len(levels) != len(scenarios):
            raise ValueError(f"trace_level has {len(levels)} entries for {len(scenarios)} scenarios")
    for level in levels:
        if level not in TRACE_LEVELS:
            raise ValueError(f"unknown trace_level {level!r}; expected one of {TRACE_LEVELS}")
    return levels


def _run_chunk(chunk: list[tuple[int, Scenario, bool, str]]) -> list[tuple[int, ScenarioResult]]:
    """Worker task: run a batch of (index, scenario, check, trace_level) tuples."""
    return [
        (index, run_scenario(scenario, check_guarantees=check, trace_level=level))
        for index, scenario, check, level in chunk
    ]


class SweepRunner:
    """Executes scenario sweeps serially or across worker processes.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` (the default) runs in-process with
        exact historical ordering; ``0`` or ``None`` means "one per CPU".
    cache:
        A :class:`~repro.runner.cache.ResultCache`, or ``None`` to disable
        caching.
    chunk_size:
        Scenarios per worker task; ``None`` picks a size that gives every
        worker several chunks (bounded by :data:`MAX_CHUNK`).
    executor:
        The execution backend chunks run on: ``None``/``"pool"`` (the
        historical in-process pool), ``"subprocess"`` (local protocol
        workers with fault-tolerant scheduling), ``"ssh"`` (protocol workers
        on ``REPRO_SSH_HOSTS``), or a ready
        :class:`~repro.runner.exec.base.Executor` instance.  Spawned
        backends size themselves from ``jobs``; results are identical
        across backends by construction.
    executor_options:
        Fleet-policy keyword arguments forwarded to the spawned protocol
        backend (``autoscale``, ``min_workers``, ``max_workers``,
        ``respawn``, ...).  Only meaningful with the ``subprocess``/``ssh``
        specs; the pool backend rejects them, and an executor *instance*
        carries its own policy already.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        executor: ExecutorSpec = None,
        executor_options: Optional[dict] = None,
    ) -> None:
        if jobs is None or jobs == 0:
            jobs = os.cpu_count() or 1
        if jobs < 0:
            raise ValueError(f"jobs must be non-negative, got {jobs}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.jobs = jobs
        self.cache = cache
        self.chunk_size = chunk_size
        self.executor_spec = executor
        self.executor_options = dict(executor_options) if executor_options else {}
        #: Scheduler counters absorbed from spec-spawned backends this runner
        #: has already dropped (see :meth:`executor_stats`).
        self._stats_total: dict = {}
        if isinstance(executor, Executor):
            if self.executor_options:
                raise ValueError(
                    "executor_options were given alongside a ready Executor instance; "
                    "configure the instance directly instead"
                )
            self._executor: Optional[Executor] = executor
        else:
            if executor is not None and executor not in EXECUTOR_SPECS:
                raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTOR_SPECS}")
            if self.executor_options and executor in (None, "pool"):
                raise ValueError(
                    f"the pool executor does not support fleet options "
                    f"{sorted(self.executor_options)}; use executor='subprocess' or 'ssh'"
                )
            self._executor = None

    # -- execution backend -------------------------------------------------

    @property
    def distributed(self) -> bool:
        """Whether chunks run through a remote wire protocol.

        Distributed backends route even single-worker and single-scenario
        traffic through the executor (exercising the wire format is the
        point); the local pool keeps the historical serial short-circuits.
        """
        if isinstance(self.executor_spec, Executor):
            return not isinstance(self.executor_spec, LocalPoolExecutor)
        return self.executor_spec not in (None, "pool")

    @property
    def worker_capacity(self) -> int:
        """The parallelism the configured backend offers.

        ``jobs`` for spec-named backends (they size themselves from it); the
        executor's own worker count when an instance was passed -- so
        ``SweepRunner(executor=LocalPoolExecutor(4))`` parallelizes even
        though ``jobs`` kept its default.
        """
        if isinstance(self.executor_spec, Executor):
            return self.executor_spec.worker_count
        capacity = self.jobs
        max_workers = self.executor_options.get("max_workers")
        if max_workers is not None:
            # An autoscaling fleet may grow past ``jobs``; size the
            # submission window for the ceiling so backlog exists to scale on.
            capacity = max(capacity, max_workers)
        return capacity

    def _ensure_executor(self) -> Executor:
        """The persistent execution backend (created lazily, reused across sweeps)."""
        if self._executor is None:
            self._executor = make_executor(
                self.executor_spec, workers=self.jobs, **self.executor_options
            )
        return self._executor

    @property
    def executor(self) -> Executor:
        """The live execution backend, spawning it lazily if needed.

        The public seam chaos harnesses and fleet observers hook: the
        instance returned is the one sweeps submit to (until :meth:`close`
        drops a spec-spawned backend).
        """
        return self._ensure_executor()

    def executor_stats(self) -> dict:
        """Cumulative scheduler counters across every backend this runner ran.

        Spec-named backends are dropped by :meth:`close` (the next sweep
        respawns); their counters are absorbed here first, so a
        close/respawn cycle -- or an :class:`ExecutorFailure` teardown --
        never zeroes the provenance a finished sweep reports.
        """
        totals = dict(self._stats_total)
        if self._executor is not None:
            for key, value in self._executor.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def close(self) -> None:
        """Shut down the execution backend, reaping any worker processes.

        The backend respawns lazily on next use; an executor *instance*
        passed to the constructor is closed too (its own ``close`` is
        documented to allow respawn), so runner lifecycle == worker
        lifecycle either way.
        """
        if self._executor is not None:
            self._executor.close()
            if not isinstance(self.executor_spec, Executor):
                # The instance is about to be dropped: bank its counters so
                # executor_stats() stays cumulative across the respawn.
                for key, value in self._executor.stats().items():
                    self._stats_total[key] = self._stats_total.get(key, 0) + value
                self._executor = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        scenario: Scenario,
        check_guarantees: Optional[bool] = None,
        trace_level: str = "full",
    ) -> ScenarioResult:
        """Run (or fetch from cache) a single scenario."""
        return self.run_sweep([scenario], check_guarantees=check_guarantees, trace_level=trace_level)[0]

    def run_sweep(
        self,
        scenarios: Iterable[Scenario],
        check_guarantees: CheckSpec = None,
        callback: Optional[Callable[[ScenarioResult], None]] = None,
        trace_level: TraceSpec = "full",
    ) -> list[ScenarioResult]:
        """Run every scenario and return the results in input order."""
        scenarios = list(scenarios)
        results: list[Optional[ScenarioResult]] = [None] * len(scenarios)

        def collect(index: int, result: ScenarioResult) -> None:
            results[index] = result
            if callback is not None:
                callback(result)

        self.stream_sweep(scenarios, collect, check_guarantees=check_guarantees, trace_level=trace_level)
        return results  # type: ignore[return-value]

    def stream_sweep(
        self,
        scenarios: Iterable[Scenario],
        on_result: OnResult,
        check_guarantees: CheckSpec = None,
        trace_level: TraceSpec = "full",
    ) -> int:
        """Run every scenario, folding each result into ``on_result`` as it lands.

        The incremental-consumer path: ``on_result(index, result)`` fires
        exactly once per scenario -- in input order with ``jobs=1``, in
        completion order otherwise (``index`` is always the scenario's input
        position) -- and the runner retains no result itself, so a reducer
        that folds rows and drops the result keeps parent memory O(1) in the
        sweep size.  Returns the number of scenarios run.
        """
        scenarios = list(scenarios)
        checks = _normalize_checks(scenarios, check_guarantees)
        levels = _normalize_trace_levels(scenarios, trace_level)
        for scenario, level in zip(scenarios, levels):
            if scenario.replications > 1 and level != "metrics":
                raise ValueError(
                    f"scenario {scenario.name!r} has replications={scenario.replications}, "
                    f"which requires trace_level='metrics' (full traces do not merge)"
                )
        if not scenarios:
            return 0
        # A lone scenario still goes to the pool when its shard plan splits:
        # one replicated configuration can saturate every worker by itself.
        # Distributed backends never take the serial shortcut -- routing the
        # work through the wire protocol is what they are for.
        single_unsplit = len(scenarios) == 1 and shard_plan_for(scenarios[0], levels[0]) is None
        if (self.worker_capacity <= 1 or single_unsplit) and not self.distributed:
            self._execute_serial(scenarios, checks, levels, on_result)
        else:
            self._execute_parallel(scenarios, checks, levels, on_result)
        return len(scenarios)

    def _cached(
        self, scenario: Scenario, check: bool, level: str, salt: str
    ) -> tuple[Optional[str], Optional[ScenarioResult]]:
        if self.cache is None:
            return None, None
        key = cache_key(scenario, check, trace_level=level, salt=salt)
        result = self.cache.get(key)
        if result is not None and result.scenario != scenario:
            # The key ignores the cosmetic display name; hand back the
            # scenario the caller actually asked for.
            result = dataclasses.replace(result, scenario=scenario)
        return key, result

    def _execute_serial(
        self,
        scenarios: Sequence[Scenario],
        checks: Sequence[bool],
        levels: Sequence[str],
        emit: OnResult,
    ) -> None:
        salt = code_salt()
        with obs.span("runner.sweep") as sweep:
            sweep.set("mode", "serial")
            sweep.set("scenarios", len(scenarios))
            for index, (scenario, check, level) in enumerate(zip(scenarios, checks, levels)):
                key, result = self._cached(scenario, check, level, salt)
                if result is None:
                    result = run_scenario(scenario, check_guarantees=check, trace_level=level)
                    if key is not None:
                        self.cache.put(key, result)
                emit(index, result)

    def _execute_parallel(
        self,
        scenarios: Sequence[Scenario],
        checks: Sequence[bool],
        levels: Sequence[str],
        emit: OnResult,
    ) -> None:
        # The sweep span is ambient on this (the submitting) thread, so cache
        # events and the executor's per-task spans parent to it.
        with obs.span("runner.sweep") as sweep:
            sweep.set("mode", "parallel")
            sweep.set("scenarios", len(scenarios))
            self._execute_parallel_inner(scenarios, checks, levels, emit)

    def _execute_parallel_inner(
        self,
        scenarios: Sequence[Scenario],
        checks: Sequence[bool],
        levels: Sequence[str],
        emit: OnResult,
    ) -> None:
        salt = code_salt()
        keys: list[Optional[str]] = [None] * len(scenarios)
        pending: list[tuple[int, Scenario, bool, str]] = []
        shard_tasks: list = []
        folder = ShardFold()
        # With the cache on, repeated grid points are computed once: the first
        # occurrence runs, the rest share its result (as a serial cached run
        # would, where later repeats hit the just-stored entry).
        first_for_key: dict[str, int] = {}
        duplicates: dict[int, list[int]] = {}
        for index, (scenario, check, level) in enumerate(zip(scenarios, checks, levels)):
            key, result = self._cached(scenario, check, level, salt)
            keys[index] = key
            if result is not None:
                emit(index, result)
                continue
            if key is not None:
                primary = first_for_key.setdefault(key, index)
                if primary != index:
                    duplicates.setdefault(primary, []).append(index)
                    continue
            if scenario.kernel is None:
                # Pin the resolved kernel before shipping: a worker with a
                # different REPRO_KERNEL environment must not re-resolve the
                # engine selection this process's cache entry was keyed on.
                scenario = dataclasses.replace(scenario, kernel=resolve_kernel(scenario))
            plan = shard_plan_for(scenario, level)
            if plan is not None:
                # Replicated scenario: split into shard tasks that share the
                # pool (and the submission window) with the plain grid work;
                # the folder re-assembles them into one result.
                folder.expect(index, scenario, len(plan), check)
                shard_tasks.extend(expand_shards(index, scenario, plan))
            else:
                if scenario.replications > 1 and scenario.shards is None:
                    # The plan resolved to one shard *here*; pin it so a
                    # remote worker with a different core count (or
                    # REPRO_SHARDS) cannot re-resolve the provenance.
                    scenario = dataclasses.replace(scenario, shards=resolve_shards(scenario))
                pending.append((index, scenario, check, level))
        if not pending and not shard_tasks:
            return

        def finish(index: int, result: ScenarioResult) -> None:
            if result.scenario != scenarios[index]:
                # Hand back exactly the scenario the caller submitted (the
                # shipped copy may carry a pinned shard plan).
                result = dataclasses.replace(result, scenario=scenarios[index])
            key = keys[index]
            if key is not None:
                self.cache.put(key, result)
            emit(index, result)
            for dup in duplicates.get(index, ()):
                dup_result = result
                if scenarios[dup] != result.scenario:
                    dup_result = dataclasses.replace(result, scenario=scenarios[dup])
                emit(dup, dup_result)

        def consume_chunk(future) -> None:
            for index, result in future.result():
                finish(index, result)

        def consume_shards(future) -> None:
            for index, outcome in future.result():
                result = folder.add(index, outcome)
                if result is not None:
                    finish(index, result)

        executor = self._ensure_executor()

        # Submission units: plain scenarios batched into chunks, shard tasks
        # submitted individually (each is already a block of whole runs).
        # Interleaved by scenario index so streaming consumers see results in
        # roughly input order.
        chunk = self.chunk_size
        if chunk is None and pending:
            # A few chunks per worker balances batching against stragglers.
            capacity = max(1, executor.worker_count)
            per_worker = math.ceil(len(pending) / (min(capacity, len(pending)) * 4))
            chunk = max(1, min(MAX_CHUNK, per_worker))
        units: list[tuple] = []
        if pending:
            for i in range(0, len(pending), chunk):
                piece = pending[i : i + chunk]
                units.append((piece[0][0], _run_chunk, piece, consume_chunk))
        for task in shard_tasks:
            units.append((task[0], run_shard_chunk, [task], consume_shards))
        units.sort(key=lambda unit: unit[0])

        workers = max(1, min(executor.worker_count, len(units)))
        window = workers * CHUNK_WINDOW

        futures = set()
        consumers: dict = {}
        try:
            # Windowed submission: keep a few units per worker in flight and
            # drain completions before submitting more, so at no point does
            # the parent hold more than O(window * chunk) results (or shard
            # summaries) beyond the partially-folded scenarios in flight.
            for _, fn, payload, consume in units:
                future = executor.submit(fn, payload)
                futures.add(future)
                consumers[future] = consume
                if len(futures) >= window:
                    done, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        consumers.pop(future)(future)
            while futures:
                done, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    consumers.pop(future)(future)
        except (BrokenProcessPool, ExecutorFailure):
            # A dead pool worker poisons the whole local executor, and an
            # ExecutorFailure means the protocol backend exhausted its
            # retries (workers lost beyond recovery); either way, drop the
            # backend so the next sweep starts fresh instead of failing
            # forever.
            self.close()
            raise
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    def __repr__(self) -> str:
        cache_dir = self.cache.directory if self.cache is not None else None
        spec = self.executor_spec if self.executor_spec is not None else "pool"
        return (
            f"SweepRunner(jobs={self.jobs}, cache={str(cache_dir)!r}, "
            f"chunk_size={self.chunk_size}, executor={spec!r})"
        )
