"""The wire format: length-prefixed pickle frames over a byte stream.

One frame is a 4-byte big-endian length followed by that many bytes of
pickle.  Frames are tuples whose first element is a tag string; the protocol
between a parent and one worker is deliberately small:

parent -> worker::

    ("task", task_id, fn, payload)   run fn(payload), answer with the task_id
    ("task", task_id, fn, payload, ctx)
                                     same, with a telemetry context riding
                                     along: {"trace": bool, "parent": span-id
                                     or None, "metrics": bool}.  The 5-element
                                     form is only sent when telemetry is
                                     enabled, so untraced streams stay
                                     byte-identical to the 4-element format;
                                     receivers unpack length-tolerantly.
    ("probe",)                       liveness probe: answer with a pong from
                                     the main loop (not the heartbeat thread)
    ("shutdown",)                    drain and exit cleanly

worker -> parent::

    ("hello", pid)                   handshake: the worker's own pid
    ("heartbeat",)                   periodic liveness beacon while alive
    ("pong", pid)                    probe answer, proving the main loop turns
    ("result", task_id, value)       fn returned value
    ("result", task_id, value, telemetry)
                                     same, plus the telemetry collected while
                                     running the task (only when the task
                                     frame carried a ctx): {"spans": tracer
                                     export payload or None, "metrics":
                                     registry snapshot or None}
    ("error", task_id, exc, info)    fn raised: the pickled exception when it
                                     pickles, else None plus (type, message,
                                     traceback-text) for a RemoteTaskError
    ("error", task_id, exc, info, telemetry)
                                     same, plus telemetry as above

Task functions are shipped by reference (pickle serializes a module-level
function as its qualified name), so the worker side only needs the ``repro``
package importable -- the payloads themselves carry all data.  The format is
transport-agnostic: the subprocess backend runs it over stdio pipes and the
SSH backend over an ``ssh`` channel, unchanged.
"""

from __future__ import annotations

import pickle
import struct
from typing import BinaryIO, Optional

#: Frame header: payload length as an unsigned 4-byte big-endian integer.
_HEADER = struct.Struct(">I")

#: Refuse frames above this size (a corrupted header would otherwise try to
#: allocate gigabytes).  Chunk payloads are scenario lists and summary
#: objects -- kilobytes, not gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The byte stream violated the framing (truncation, oversized frame)."""


def encode_frame(frame: tuple) -> bytes:
    """Serialize ``frame`` into one length-prefixed record.

    All-or-nothing: any failure (unpicklable content, oversized frame) raises
    before a single byte exists, so callers can separate "this frame cannot
    be shipped" (the sender's problem) from "the stream is broken" (the
    peer's problem) by encoding first and writing second.
    """
    data = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(data)) + data


def write_frame(stream: BinaryIO, frame: tuple) -> None:
    """Serialize ``frame`` and write it as one length-prefixed record."""
    stream.write(encode_frame(frame))
    stream.flush()


def _read_exact(stream: BinaryIO, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        piece = stream.read(remaining)
        if not piece:
            if chunks:
                got = count - remaining
                raise ProtocolError(f"stream truncated mid-frame ({got} of {count} bytes)")
            return None
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def read_frame(stream: BinaryIO) -> Optional[tuple]:
    """Read one frame; ``None`` on a clean EOF (peer closed between frames)."""
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header announces {length} bytes (limit {MAX_FRAME_BYTES}); stream corrupt?")
    body = _read_exact(stream, length)
    if body is None:
        raise ProtocolError(f"stream truncated: frame header promised {length} bytes, got EOF")
    return pickle.loads(body)
