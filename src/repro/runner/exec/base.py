"""The :class:`Executor` seam: something that runs task functions elsewhere.

The sweep runner's execution model is deliberately tiny: it submits
``(picklable function, picklable payload)`` pairs and collects
:class:`concurrent.futures.Future` objects whose results it consumes in
completion order through ``concurrent.futures.wait``.  Everything the
reproduction computes is a pure function of its payload (scenarios carry
their own seeds; nothing reads ambient state), so *where* a task runs can
never change *what* it returns -- which is exactly the property that makes
the executor pluggable.

An :class:`Executor` is therefore just:

* :meth:`Executor.submit` -- run ``fn(payload)`` somewhere, return a future,
* :meth:`Executor.close` -- tear the backend down (reaping any worker
  processes); implementations respawn lazily on the next submit, mirroring
  the sweep runner's persistent-pool semantics,
* :attr:`Executor.worker_count` -- the effective parallelism, which the
  runner uses to size its bounded submission window.

Three backends ship in this package: :class:`~repro.runner.exec.local.
LocalPoolExecutor` (the historical in-process ``ProcessPoolExecutor``,
zero behavior change), :class:`~repro.runner.exec.remote.
SubprocessWorkerExecutor` (long-lived worker subprocesses speaking the
length-prefixed pickle protocol of :mod:`repro.runner.exec.protocol` over
stdio -- a real remote wire format exercised entirely on localhost), and
:class:`~repro.runner.exec.remote.SSHExecutor` (the same protocol tunnelled
through ``ssh host python -m repro.worker``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import Future
from typing import Callable, Union

#: Executor backends selectable by name (``SweepRunner(executor=...)``,
#: ``configure(executor=...)``, ``REPRO_EXECUTOR``, CLI ``--executor``).
EXECUTOR_SPECS = ("pool", "subprocess", "ssh")

#: What the runner accepts as an executor choice: a spec name, a ready
#: instance, or ``None`` for the default local pool.
ExecutorSpec = Union[None, str, "Executor"]


class ExecutorError(RuntimeError):
    """Base class for executor-backend failures."""


class ExecutorFailure(ExecutorError):
    """A task could not be completed by any worker.

    Raised from a task's future when its retry budget is exhausted or every
    worker that could run it has died; raised from :meth:`Executor.submit`
    when the backend has no live workers left.  The message names the task,
    the attempts made and the workers lost, so a failed sweep says *why*.
    """


class RemoteTaskError(ExecutorError):
    """A task function raised on a remote worker and the original exception
    could not be shipped back; carries the remote traceback text."""


class Executor(ABC):
    """Runs picklable task functions and returns their results via futures.

    Implementations spawn lazily on the first :meth:`submit` and survive
    :meth:`close` (the next submit respawns), so one executor instance can
    back many sweeps -- the same lifecycle the sweep runner's historical
    persistent pool had.  Futures are standard
    :class:`concurrent.futures.Future` objects, so the runner's windowed
    ``wait(FIRST_COMPLETED)`` loop works unchanged against every backend.
    """

    @abstractmethod
    def submit(self, fn: Callable, payload) -> Future:
        """Schedule ``fn(payload)`` and return a future for its result."""

    @abstractmethod
    def close(self) -> None:
        """Tear down the backend, reaping any worker processes.

        Idempotent; the executor respawns lazily on the next submit.
        """

    @property
    @abstractmethod
    def worker_count(self) -> int:
        """Effective parallelism (workers the backend runs tasks on)."""

    def worker_pids(self) -> list[int]:
        """PIDs of live local worker processes (empty when not applicable)."""
        return []

    def stats(self) -> dict:
        """Cumulative scheduler counters for this instance (may be empty).

        Backends that count (retries, workers lost, steals, respawns, ...)
        never reset the numbers -- not on :meth:`close`, not on a respawn
        cycle -- so post-sweep provenance survives mid-sweep recovery.
        """
        return {}

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def make_executor(spec: ExecutorSpec, workers: int, **options) -> Executor:
    """Build the executor ``spec`` names (or pass a ready instance through).

    ``None`` and ``"pool"`` give the historical in-process pool;
    ``"subprocess"`` spawns ``workers`` protocol workers on this machine;
    ``"ssh"`` reads its host list from ``REPRO_SSH_HOSTS`` (and raises a
    clear error when none are configured).  Extra keyword ``options`` reach
    the protocol backends' fleet policy (``autoscale``, ``min_workers``,
    ``max_workers``, ``respawn`` and friends); the local pool accepts none
    and rejects them with a clear error rather than ignoring a policy the
    caller asked for.
    """
    if isinstance(spec, Executor):
        if options:
            raise ValueError(
                "executor options were given alongside a ready Executor instance; "
                "configure the instance directly instead"
            )
        return spec
    if spec is None or spec == "pool":
        if options:
            raise ValueError(
                f"the pool executor does not support fleet options {sorted(options)}; "
                f"use --executor subprocess or ssh for elasticity"
            )
        from .local import LocalPoolExecutor

        return LocalPoolExecutor(workers)
    if spec == "subprocess":
        from .remote import SubprocessWorkerExecutor

        return SubprocessWorkerExecutor(workers, **options)
    if spec == "ssh":
        from .remote import SSHExecutor

        return SSHExecutor(workers=workers, **options)
    raise ValueError(f"unknown executor {spec!r}; expected one of {EXECUTOR_SPECS} or an Executor instance")
