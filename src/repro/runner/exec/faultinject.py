"""Fault injection: misbehaving tasks and a deterministic chaos harness.

Two layers live here, both test-and-experiment infrastructure (none of it
runs on production execution paths):

* **Picklable fault-injection tasks** -- the fault-injection suites
  (``tests/test_executors.py``, ``tests/test_fleet.py``) and experiments
  E14/E15 need task functions that misbehave in controlled ways *inside a
  worker process* (crash it, wedge it, stall it), and task functions must be
  importable by qualified name on the worker side, so they live here rather
  than in the test modules.  Coordination uses sentinel files: a path the
  parent chooses is an atomic cross-process latch (``O_CREAT | O_EXCL``),
  which keeps "fail exactly once, then succeed on retry" deterministic
  without any shared state beyond the filesystem.

* **A scripted chaos layer** -- :class:`ChaosSchedule` (a seed-keyed list of
  "after N completed chunks, do X" events, parsed from specs like
  ``"kill@1,wedge@3"``) and :class:`ChaosController` (wraps an executor's
  ``submit`` to count chunk completions and fires each due event against a
  deterministically chosen victim worker: ``kill`` SIGKILLs it, ``wedge``
  SIGSTOPs it so only the heartbeat deadline can see it, ``partition``
  severs its control pipe).  Progress-keyed firing makes the chaos
  *schedule* machine-independent even though wall-clock timings are not --
  and because every task is a pure function of its payload, a sweep under
  any schedule must return float-for-float what the quiet sweep returns,
  which is exactly what the churn-invariance suite asserts.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from typing import Optional, Sequence


def echo_task(payload):
    """Return the payload unchanged (the executor smoke-test task)."""
    return payload


def square_task(payload):
    """Return ``payload ** 2`` (distinguishes results from payloads)."""
    return payload**2


def sleep_task(payload):
    """Sleep ``payload`` seconds, then return it."""
    time.sleep(payload)
    return payload


def raise_task(payload):
    """Raise ``ValueError(payload)`` -- a deterministic *task* failure (the
    worker survives; the error must propagate without retry)."""
    raise ValueError(payload)


def unpicklable_result_task(payload):
    """Return a closure -- a result that cannot be shipped home.  The worker
    must report a serialization error, not die."""
    return lambda: payload  # pragma: no cover - never called, never pickled


def exit_task(payload):
    """Kill the worker process immediately (crashes on *every* attempt)."""
    os._exit(int(payload) if payload else 1)


def _acquire_latch(path: str) -> bool:
    """Atomically create ``path``; True for exactly one caller across processes."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.write(fd, str(os.getpid()).encode())
    os.close(fd)
    return True


def crash_once_task(payload):
    """Kill the worker on the first execution (latch file), succeed on retry."""
    if _acquire_latch(str(payload)):
        os._exit(1)
    return "recovered"


def hang_once_task(payload):
    """First execution: write the worker pid to ``payload`` and hang until
    killed.  Retry: return ``"recovered"``.  Lets a test kill a worker that
    is *provably mid-task* and assert the chunk completes elsewhere."""
    if _acquire_latch(str(payload)):
        while True:
            time.sleep(0.05)
    return "recovered"


def freeze_once_task(payload):
    """First execution: SIGSTOP the worker (alive but silent -- heartbeats
    stop, pipes stay open), so only the heartbeat deadline can detect it.
    Retry: return ``"recovered"``."""
    if _acquire_latch(str(payload)):
        os.kill(os.getpid(), signal.SIGSTOP)
        # Unreachable unless the process is resumed instead of killed.
        time.sleep(3600)
    return "recovered"


def hang_until_file_task(payload):
    """Block until the file named by ``payload`` exists, then return it.

    A controllable straggler: the parent decides when the task may finish,
    which makes work-stealing scenarios deterministic.
    """
    path = str(payload)
    while not os.path.exists(path):
        time.sleep(0.02)
    return path


# -- the scripted chaos layer -------------------------------------------------

#: Chaos actions a schedule may fire.  ``kill`` is instant death (SIGKILL,
#: pipe EOF seen immediately); ``wedge`` is alive-but-silent (SIGSTOP: pipes
#: stay open, heartbeats stop, only the heartbeat deadline can detect it);
#: ``partition`` severs the parent->worker control pipe, the closest stdio
#: analogue of a network partition.
CHAOS_ACTIONS = ("kill", "wedge", "partition")


class ChaosEvent:
    """One scripted disruption: after ``after_results`` chunks, do ``action``."""

    __slots__ = ("after_results", "action")

    def __init__(self, after_results: int, action: str) -> None:
        if after_results < 1:
            raise ValueError(f"after_results must be positive, got {after_results}")
        if action not in CHAOS_ACTIONS:
            raise ValueError(f"unknown chaos action {action!r}; expected one of {CHAOS_ACTIONS}")
        self.after_results = after_results
        self.action = action

    def __repr__(self) -> str:
        return f"{self.action}@{self.after_results}"


class ChaosSchedule:
    """A deterministic, seed-keyed schedule of chaos events.

    Events are keyed to *progress* (completed chunk count), not wall-clock
    time, so the same schedule describes the same disruption pattern on a
    fast laptop and a loaded CI runner.  The ``seed`` keys victim selection
    inside :class:`ChaosController`.
    """

    def __init__(self, events: Sequence[ChaosEvent], seed: int = 0) -> None:
        self.events = sorted(events, key=lambda e: e.after_results)
        self.seed = seed

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "ChaosSchedule":
        """Parse ``"kill@1,wedge@3,partition@5"`` into a schedule.

        Each comma-separated entry is ``action@count``: fire ``action`` once
        the executor has completed ``count`` chunks.  This is the format the
        CLI's ``--chaos`` flag accepts.
        """
        events = []
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            action, sep, count = entry.partition("@")
            if not sep:
                raise ValueError(f"chaos entry {entry!r} is not of the form action@count")
            events.append(ChaosEvent(int(count), action.strip()))
        if not events:
            raise ValueError(f"chaos spec {spec!r} contains no events")
        return cls(events, seed=seed)

    @classmethod
    def kill_every_worker(
        cls, workers: int, start: int = 1, stride: int = 1, seed: int = 0
    ) -> "ChaosSchedule":
        """A kill per initial worker, spaced ``stride`` completed chunks apart.

        The controller prefers victims it has never hit, so with respawn on
        this schedule guarantees every member of the *initial* fleet dies at
        least once -- the acceptance scenario for churn invariance.
        """
        events = [ChaosEvent(start + i * stride, "kill") for i in range(workers)]
        return cls(events, seed=seed)

    def __repr__(self) -> str:
        return f"ChaosSchedule({','.join(map(repr, self.events))}, seed={self.seed})"


class ChaosController:
    """Fires a :class:`ChaosSchedule` against a live protocol executor.

    Used as a context manager around a sweep::

        with ChaosController(executor, ChaosSchedule.parse("kill@1,kill@2")):
            results = runner.run_sweep(...)

    On entry it shadows ``executor.submit`` so every future it hands out
    carries a done-callback; each completion advances a progress counter and
    fires the events that have come due.  Victims are chosen by a
    ``random.Random(schedule.seed)`` over *sorted* candidate pids -- busy
    workers it has never hit first, then any never-hit live worker, then any
    live worker -- so a schedule with as many kills as workers provably
    murders the whole initial fleet, deterministically for a given seed and
    completion order.  ``fired`` logs ``(action, after_results, pid)``
    tuples; a ``pid`` of ``None`` records an event that found no live victim.
    """

    def __init__(self, executor, schedule: ChaosSchedule) -> None:
        self.executor = executor
        self.schedule = schedule
        self.fired: list[tuple[str, int, Optional[int]]] = []
        self._pending = list(schedule.events)
        self._completed = 0
        self._rng = random.Random(schedule.seed)
        self._hit: set[int] = set()
        self._lock = threading.Lock()
        self._orig_submit = executor.submit

    # Shadowing the bound method with an instance attribute (rather than
    # wrapping the executor) keeps the runner's `isinstance`/identity checks
    # and its windowed wait loop oblivious to the chaos layer.
    def __enter__(self) -> "ChaosController":
        self.executor.submit = self._submit
        return self

    def __exit__(self, *_exc) -> None:
        try:
            del self.executor.submit
        except AttributeError:
            pass

    def _submit(self, fn, payload):
        future = self._orig_submit(fn, payload)
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, _future) -> None:
        with self._lock:
            self._completed += 1
            due = []
            while self._pending and self._pending[0].after_results <= self._completed:
                due.append(self._pending.pop(0))
        for event in due:
            self._fire(event)

    def _pick_victim(self) -> Optional[int]:
        busy = set(self.executor.busy_worker_pids())
        live = set(self.executor.worker_pids())
        for pool in (sorted(busy - self._hit), sorted(live - self._hit), sorted(live)):
            if pool:
                pid = self._rng.choice(pool)
                self._hit.add(pid)
                return pid
        return None

    def _fire(self, event: ChaosEvent) -> None:
        pid = self._pick_victim()
        with self._lock:
            self.fired.append((event.action, event.after_results, pid))
        if pid is None:
            return
        try:
            if event.action == "kill":
                os.kill(pid, signal.SIGKILL)
            elif event.action == "wedge":
                os.kill(pid, signal.SIGSTOP)
            elif event.action == "partition":
                partition = getattr(self.executor, "partition_worker", None)
                if partition is None or not partition(pid):
                    os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass  # the victim beat us to dying; the schedule still advanced

    @property
    def victims(self) -> set[int]:
        """Distinct worker pids this controller has disrupted so far."""
        with self._lock:
            return set(self._hit)
