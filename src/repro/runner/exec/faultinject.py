"""Picklable fault-injection tasks for exercising executor fault tolerance.

The fault-injection suite (``tests/test_executors.py``) and experiment E14
need task functions that misbehave in controlled ways *inside a worker
process* -- crash it, wedge it, stall it -- and task functions must be
importable by qualified name on the worker side, so they live here rather
than in the test modules.  Coordination uses sentinel files: a path the
parent chooses is an atomic cross-process latch (``O_CREAT | O_EXCL``), which
keeps "fail exactly once, then succeed on retry" deterministic without any
shared state beyond the filesystem.

None of these functions are used by the production execution paths.
"""

from __future__ import annotations

import os
import signal
import time


def echo_task(payload):
    """Return the payload unchanged (the executor smoke-test task)."""
    return payload


def square_task(payload):
    """Return ``payload ** 2`` (distinguishes results from payloads)."""
    return payload**2


def sleep_task(payload):
    """Sleep ``payload`` seconds, then return it."""
    time.sleep(payload)
    return payload


def raise_task(payload):
    """Raise ``ValueError(payload)`` -- a deterministic *task* failure (the
    worker survives; the error must propagate without retry)."""
    raise ValueError(payload)


def unpicklable_result_task(payload):
    """Return a closure -- a result that cannot be shipped home.  The worker
    must report a serialization error, not die."""
    return lambda: payload  # pragma: no cover - never called, never pickled


def exit_task(payload):
    """Kill the worker process immediately (crashes on *every* attempt)."""
    os._exit(int(payload) if payload else 1)


def _acquire_latch(path: str) -> bool:
    """Atomically create ``path``; True for exactly one caller across processes."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.write(fd, str(os.getpid()).encode())
    os.close(fd)
    return True


def crash_once_task(payload):
    """Kill the worker on the first execution (latch file), succeed on retry."""
    if _acquire_latch(str(payload)):
        os._exit(1)
    return "recovered"


def hang_once_task(payload):
    """First execution: write the worker pid to ``payload`` and hang until
    killed.  Retry: return ``"recovered"``.  Lets a test kill a worker that
    is *provably mid-task* and assert the chunk completes elsewhere."""
    if _acquire_latch(str(payload)):
        while True:
            time.sleep(0.05)
    return "recovered"


def freeze_once_task(payload):
    """First execution: SIGSTOP the worker (alive but silent -- heartbeats
    stop, pipes stay open), so only the heartbeat deadline can detect it.
    Retry: return ``"recovered"``."""
    if _acquire_latch(str(payload)):
        os.kill(os.getpid(), signal.SIGSTOP)
        # Unreachable unless the process is resumed instead of killed.
        time.sleep(3600)
    return "recovered"


def hang_until_file_task(payload):
    """Block until the file named by ``payload`` exists, then return it.

    A controllable straggler: the parent decides when the task may finish,
    which makes work-stealing scenarios deterministic.
    """
    path = str(payload)
    while not os.path.exists(path):
        time.sleep(0.02)
    return path
