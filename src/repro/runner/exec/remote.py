"""Remote protocol executors: a self-healing, elastic worker fleet.

Both backends here run the length-prefixed pickle protocol of
:mod:`repro.runner.exec.protocol` against long-lived ``repro.worker``
processes; they differ only in how a worker is spawned
(:class:`SubprocessWorkerExecutor`: ``python -m repro.worker`` on this
machine, :class:`SSHExecutor`: the same through ``ssh host ...``).  The
shared scheduler in :class:`ProtocolExecutor` provides the fault tolerance
the local pool never needed:

* **liveness detection** -- a per-worker reader thread sees the pipe EOF the
  instant a worker dies, and a fleet thread enforces a heartbeat deadline
  (workers beat from a daemon thread, so a *wedged* worker -- alive but
  silent -- is detected and killed, not just a dead one).  A worker silent
  for half the deadline is marked *suspect* and sent a ``probe`` frame; any
  frame it produces clears the suspicion.
* **bounded retries with worker exclusion** -- a chunk that was in flight on
  a lost worker is requeued on the surviving workers, never on the same
  worker *incarnation* that already failed it (each task carries its own
  excluded-incarnation set, so a respawned replacement in the same slot is
  eligible again), and after ``max_attempts`` losses its future fails with a
  clear :class:`~repro.runner.exec.base.ExecutorFailure`.
* **work-stealing rebalancing** -- tasks are assigned to the least-loaded
  eligible worker's queue at submission, and a worker that drains its queue
  takes the oldest parked task or steals the newest eligible task from the
  longest backlog, so an uneven drain self-balances.
* **respawn** (``respawn=True``, the default) -- a lost worker's *slot* is
  refilled after a capped exponential backoff with jitter.  Tasks that have
  no eligible live worker are *parked* instead of failed and dispatch to the
  replacement the moment it completes its handshake, so a fleet that loses
  every worker recovers instead of degrading monotonically.  A slot that
  loses :attr:`crash_loop_threshold` workers within
  :attr:`crash_loop_window` seconds is **quarantined**: it stops thrashing
  and is re-probed on a growing backoff schedule -- the spawn-deadline
  handshake doubles as the liveness probe, so an unreachable SSH host
  rejoins the rotation mid-sweep the first time a probe spawn says hello.
* **autoscaling** (``autoscale=True``) -- a policy loop sizes the fleet
  between ``min_workers`` and ``max_workers``: it grows one slot per tick
  while the backlog exceeds ``scale_backlog_factor`` x the live capacity,
  and retires a worker that has been idle past ``idle_grace`` seconds.

The per-slot lifecycle is a small state machine (documented in
``docs/architecture.md``)::

    spawning -> live <-> suspect
       ^         |
       |         v
    (rejoin)   lost --K losses in T--> quarantined --probe ok--> (rejoin)
                                       retired  (autoscale reap; terminal
                                                until a scale-up revives it)

Tasks that *raise* on a live worker are not retried: every task in this
system is a deterministic pure function of its payload, so a task error
would simply repeat -- it propagates to the future exactly as the local
pool would propagate it.  Only worker *loss* triggers retry, and because
tasks are pure, a retried chunk returns float-for-float what the first
attempt would have -- elasticity and recovery are pure throughput, never a
result risk.
"""

from __future__ import annotations

import itertools
import os
import random
import shlex
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from pathlib import Path
from typing import Callable, Optional, Sequence

from ... import obs
from .base import Executor, ExecutorError, ExecutorFailure, RemoteTaskError
from .protocol import encode_frame, read_frame, write_frame

#: Default seconds between worker heartbeat frames.
HEARTBEAT_INTERVAL = 1.0
#: Default multiple of the heartbeat interval after which a silent worker is
#: declared wedged and killed.  Generous: heartbeats come from a dedicated
#: worker thread, so even a busy worker beats on schedule.
HEARTBEAT_TIMEOUT_FACTOR = 30.0
#: Default bound on how many workers one task may be lost on before its
#: future fails.
MAX_ATTEMPTS = 3
#: Minimum silence tolerated from a worker that has not completed its
#: handshake yet: interpreter start-up and package import must not trip a
#: tight heartbeat deadline on a loaded machine.
SPAWN_DEADLINE = 30.0
#: Default base delay before a lost worker's slot is respawned; doubles per
#: recent loss on that slot up to :data:`RESPAWN_BACKOFF_CAP`, plus jitter.
RESPAWN_BACKOFF = 0.25
RESPAWN_BACKOFF_CAP = 15.0
#: A slot that loses this many workers within :data:`CRASH_LOOP_WINDOW`
#: seconds is quarantined instead of respawned again.
CRASH_LOOP_THRESHOLD = 3
CRASH_LOOP_WINDOW = 30.0
#: First re-probe delay for a quarantined slot; doubles per failed probe up
#: to :data:`QUARANTINE_BACKOFF_CAP`.
QUARANTINE_BACKOFF = 5.0
QUARANTINE_BACKOFF_CAP = 120.0
#: Autoscale policy defaults: grow while ``backlog > factor x live``, retire
#: a worker idle longer than the grace.
SCALE_BACKLOG_FACTOR = 2.0
IDLE_GRACE = 10.0


class _Task:
    """One submitted unit: a picklable call plus its retry bookkeeping."""

    __slots__ = (
        "task_id",
        "fn",
        "payload",
        "future",
        "attempts",
        "excluded",
        "started",
        "ctx",
        "span",
        "attempt_span",
        "submitted",
    )

    def __init__(self, task_id: int, fn: Callable, payload) -> None:
        self.task_id = task_id
        self.fn = fn
        self.payload = payload
        self.future: Future = Future()
        #: Worker incarnations (wids) this task was lost on -- never
        #: rescheduled there.  A respawned replacement has a fresh wid, so
        #: requeued chunks are eligible on it.
        self.excluded: set[int] = set()
        #: How many worker incarnations this task was dispatched to and lost.
        self.attempts = 0
        #: Whether the future already transitioned to RUNNING (first
        #: dispatch); a retry redispatch must not transition it again.
        self.started = False
        #: Telemetry: the trace context shipped in this task's frames (None
        #: keeps the 4-element wire format), the parent-side ``exec.task``
        #: span covering submit->complete, the per-dispatch ``exec.attempt``
        #: span, and the submit timestamp for the queue-wait histogram
        #: (zeroed once observed at first dispatch).
        self.ctx: Optional[dict] = None
        self.span = None
        self.attempt_span = None
        self.submitted = 0.0

    @property
    def label(self) -> str:
        name = getattr(self.fn, "__name__", str(self.fn))
        return f"#{self.task_id} ({name})"


class _Worker:
    """Parent-side handle of one protocol worker *incarnation*."""

    __slots__ = (
        "wid",
        "slot",
        "proc",
        "reader",
        "write_lock",
        "alive",
        "current",
        "queue",
        "last_seen",
        "remote_pid",
        "born_late",
        "idle_since",
        "span",
        "probe_sent",
    )

    def __init__(self, wid: int, slot: "_Slot", proc: subprocess.Popen, born_late: bool) -> None:
        self.wid = wid
        self.slot = slot
        self.proc = proc
        self.reader: Optional[threading.Thread] = None
        self.write_lock = threading.Lock()
        self.alive = True
        self.current: Optional[_Task] = None
        self.queue: deque[_Task] = deque()
        self.last_seen = time.monotonic()
        self.remote_pid: Optional[int] = None
        #: Whether this incarnation joined after the initial fleet spawn
        #: (respawn, quarantine probe, or scale-up).  Late joiners receive
        #: work only after their handshake, so a probe spawn against an
        #: unreachable host never burns a task's retry budget.
        self.born_late = born_late
        self.idle_since: Optional[float] = None
        #: Telemetry: the ``fleet.worker`` incarnation span (when tracing is
        #: on) and the send time of an outstanding liveness probe, consumed
        #: by the pong handler into the ``fleet.probe_rtt_s`` histogram.
        self.span = None
        self.probe_sent: Optional[float] = None

    def load(self) -> int:
        return len(self.queue) + (1 if self.current is not None else 0)


class _Slot:
    """One position in the fleet, hosting successive worker incarnations."""

    __slots__ = ("index", "state", "worker", "loss_times", "probe_failures", "next_attempt")

    def __init__(self, index: int) -> None:
        self.index = index
        #: One of: spawning, live, suspect, lost, quarantined, retired.
        self.state = "lost"
        self.worker: Optional[_Worker] = None
        #: Monotonic timestamps of recent worker losses (crash-loop window).
        self.loss_times: deque[float] = deque()
        #: Consecutive failed quarantine probes (drives the probe backoff).
        self.probe_failures = 0
        #: When the fleet thread may respawn / re-probe this slot.
        self.next_attempt: Optional[float] = None


class ProtocolExecutor(Executor):
    """Self-healing elastic scheduler over spawn-command-defined workers.

    Workers spawn lazily on the first submit and persist across sweeps;
    :meth:`close` reaps every process (shutdown frame, then escalating to
    kill) and resets the executor so the next submit respawns -- the same
    lifecycle the local pool backend has.  Scheduler counters
    (:meth:`stats`) are cumulative for the lifetime of the instance: they
    survive :meth:`close` and every respawn cycle, so post-sweep provenance
    is never zeroed by mid-sweep recovery.
    """

    def __init__(
        self,
        workers: int,
        max_attempts: int = MAX_ATTEMPTS,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_timeout: Optional[float] = None,
        respawn: bool = True,
        respawn_backoff: float = RESPAWN_BACKOFF,
        respawn_backoff_cap: float = RESPAWN_BACKOFF_CAP,
        crash_loop_threshold: int = CRASH_LOOP_THRESHOLD,
        crash_loop_window: float = CRASH_LOOP_WINDOW,
        quarantine_backoff: float = QUARANTINE_BACKOFF,
        quarantine_backoff_cap: float = QUARANTINE_BACKOFF_CAP,
        autoscale: Optional[bool] = None,
        min_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        scale_backlog_factor: float = SCALE_BACKLOG_FACTOR,
        idle_grace: float = IDLE_GRACE,
        spawn_deadline: float = SPAWN_DEADLINE,
        monitor_period: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        if autoscale is None:
            # Scale bounds imply the policy: asking for a min/max *is* asking
            # for elasticity.
            autoscale = min_workers is not None or max_workers is not None
        if autoscale:
            min_workers = 1 if min_workers is None else min_workers
            max_workers = max(workers, min_workers) if max_workers is None else max_workers
            if min_workers < 1:
                raise ValueError(f"min_workers must be positive, got {min_workers}")
            if max_workers < min_workers:
                raise ValueError(
                    f"max_workers ({max_workers}) must be at least min_workers ({min_workers})"
                )
        else:
            min_workers = max_workers = workers
        self.workers = workers
        self.max_attempts = max_attempts
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval > 0:
            heartbeat_timeout = HEARTBEAT_TIMEOUT_FACTOR * heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.respawn = respawn
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_cap = respawn_backoff_cap
        self.crash_loop_threshold = crash_loop_threshold
        self.crash_loop_window = crash_loop_window
        self.quarantine_backoff = quarantine_backoff
        self.quarantine_backoff_cap = quarantine_backoff_cap
        self.autoscale = autoscale
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.scale_backlog_factor = scale_backlog_factor
        self.idle_grace = idle_grace
        self.spawn_deadline = spawn_deadline
        self.monitor_period = monitor_period
        self._lock = threading.Lock()
        self._slots: list[_Slot] = []
        self._parked: deque[_Task] = deque()
        self._started = False
        self._task_ids = itertools.count()
        self._wids = itertools.count()
        self._fleet_thread: Optional[threading.Thread] = None
        self._fleet_stop = threading.Event()
        #: Backoff jitter only de-synchronizes respawn stampedes; it needs no
        #: reproducibility, but a fixed seed keeps runs comparable.
        self._jitter = random.Random(0x5EEDF1EE7)
        self._stats = {
            "tasks": 0,
            "retries": 0,
            "workers_lost": 0,
            "steals": 0,
            "respawns": 0,
            "quarantines": 0,
            "joins": 0,
            "scale_ups": 0,
            "scale_downs": 0,
        }

    # -- spawning ----------------------------------------------------------

    def _spawn_command(self, index: int) -> list[str]:
        raise NotImplementedError

    def _spawn_env(self) -> Optional[dict]:
        return None

    def _spawn_worker(self, slot: _Slot, born_late: bool) -> _Worker:
        proc = subprocess.Popen(
            self._spawn_command(slot.index),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # workers log to the parent's stderr
            env=self._spawn_env(),
        )
        worker = _Worker(next(self._wids), slot, proc, born_late)
        if obs.enabled():
            # Incarnation spans are timeline roots: a worker outlives any one
            # sweep, so parenting it under a sweep span would break nesting.
            worker.span = obs.tracer().begin("fleet.worker")
            worker.span.parent_id = None
            worker.span.set("slot", slot.index)
            worker.span.set("wid", worker.wid)
            worker.span.set("born_late", born_late)
        worker.reader = threading.Thread(
            target=self._read_loop,
            args=(worker,),
            name=f"repro-exec-reader-{slot.index}.{worker.wid}",
            daemon=True,
        )
        worker.reader.start()
        return worker

    def _initial_fleet_size(self) -> int:
        # An autoscaling fleet starts at its floor and earns its workers from
        # backlog pressure; a fixed fleet spawns at full strength.
        return self.min_workers if self.autoscale else self.workers

    def _ensure_started_locked(self) -> None:
        if self._started:
            return
        self._started = True
        self._fleet_stop = threading.Event()
        self._slots = [_Slot(index) for index in range(self._initial_fleet_size())]
        for slot in self._slots:
            slot.worker = self._spawn_worker(slot, born_late=False)
            slot.state = "spawning"
        self._fleet_thread = threading.Thread(
            target=self._fleet_loop, args=(self._fleet_stop,), name="repro-exec-fleet", daemon=True
        )
        self._fleet_thread.start()

    # -- submission and scheduling -----------------------------------------

    @property
    def worker_count(self) -> int:
        """The capacity ceiling callers should size submission windows by."""
        return self.max_workers if self.autoscale else self.workers

    def submit(self, fn: Callable, payload) -> Future:
        task = _Task(next(self._task_ids), fn, payload)
        ctx = obs.wire_context()
        if ctx is not None:
            task.submitted = time.monotonic()
            if ctx["trace"]:
                # The parent-side task span covers submit -> complete; its
                # ambient parent is whatever span the submitting thread holds
                # (the sweep span), and it becomes the root the worker-side
                # span tree hangs from via the shipped context.
                task.span = obs.tracer().begin("exec.task")
                task.span.set("task_id", task.task_id)
                ctx = dict(ctx, parent=task.span.span_id)
            task.ctx = ctx
        failure: Optional[str] = None
        assignments: Sequence[tuple[_Worker, _Task]] = ()
        with self._lock:
            self._ensure_started_locked()
            self._stats["tasks"] += 1
            failure = self._requeue_locked(task)
            if failure is None:
                assignments = self._dispatch_locked()
        if failure is not None:
            self._fail(task, failure)
            return task.future
        self._send_assignments(assignments)
        return task.future

    def _dispatchable_locked(self) -> list[_Worker]:
        """Workers that may be assigned tasks right now.

        Late joiners (respawns, probes, scale-ups) only become dispatchable
        after their handshake -- a probe spawn against a dead host must not
        hold tasks hostage until the spawn deadline.
        """
        workers = []
        for slot in self._slots:
            worker = slot.worker
            if worker is None or not worker.alive or slot.state == "retired":
                continue
            if worker.born_late and worker.remote_pid is None:
                continue
            workers.append(worker)
        return workers

    def _eligible_locked(self, task: _Task) -> list[_Worker]:
        return [w for w in self._dispatchable_locked() if w.wid not in task.excluded]

    def _requeue_locked(self, task: _Task) -> Optional[str]:
        """Queue ``task`` on the least-loaded eligible worker.

        With respawn enabled a task with no eligible worker is *parked* (it
        dispatches when a replacement joins); otherwise the failure message
        to put on its future is returned.
        """
        eligible = self._eligible_locked(task)
        if eligible:
            target = min(eligible, key=lambda w: (w.load(), w.slot.index))
            target.queue.append(task)
            return None
        if self.respawn and self._started:
            self._parked.append(task)
            return None
        return (
            f"cannot run task {task.label}: no live workers "
            f"({self._stats['workers_lost']} lost, respawn disabled); "
            f"close() resets the backend"
        )

    def _unpark_locked(self, worker: _Worker) -> Optional[_Task]:
        for task in self._parked:
            if worker.wid not in task.excluded:
                self._parked.remove(task)
                return task
        return None

    def _steal_locked(self, thief: _Worker) -> Optional[_Task]:
        for victim in sorted(self._slots, key=lambda s: len(s.worker.queue) if s.worker else 0, reverse=True):
            if victim.worker is None or victim.worker is thief or not victim.worker.alive:
                continue
            # Steal the newest eligible backlog entry (classic work stealing:
            # the victim keeps the work it is about to reach).
            for task in reversed(victim.worker.queue):
                if thief.wid not in task.excluded:
                    victim.worker.queue.remove(task)
                    self._stats["steals"] += 1
                    return task
        return None

    def _dispatch_locked(self) -> list[tuple[_Worker, _Task]]:
        """Pair idle workers with runnable tasks; caller sends outside the lock."""
        assignments: list[tuple[_Worker, _Task]] = []
        now = time.monotonic()
        for worker in self._dispatchable_locked():
            while worker.current is None:
                task = worker.queue.popleft() if worker.queue else None
                if task is None:
                    task = self._unpark_locked(worker) or self._steal_locked(worker)
                if task is None:
                    break
                if not task.started:
                    if not task.future.set_running_or_notify_cancel():
                        continue  # cancelled while queued; try the next task
                    task.started = True
                worker.current = task
                assignments.append((worker, task))
            if worker.current is None and not worker.queue:
                if worker.idle_since is None:
                    worker.idle_since = now
            else:
                worker.idle_since = None
        return assignments

    def _send_assignments(self, assignments: Sequence[tuple[_Worker, _Task]]) -> None:
        for worker, task in assignments:
            try:
                if task.ctx is None:
                    frame = encode_frame(("task", task.task_id, task.fn, task.payload))
                else:
                    frame = encode_frame(("task", task.task_id, task.fn, task.payload, task.ctx))
            except Exception as exc:
                # The *task* cannot be shipped (unpicklable payload, frame
                # over the size limit) -- that is the submitter's error, not
                # the worker's: surface it on the future, free the worker and
                # keep dispatching.  Matches the local pool, which fails the
                # future on a pickling error without killing anything.
                with self._lock:
                    if worker.current is task:
                        worker.current = None
                    redispatch = self._dispatch_locked()
                if task.span is not None:
                    task.span.finish("error")
                try:
                    task.future.set_exception(exc)
                except InvalidStateError:
                    pass
                self._send_assignments(redispatch)
                continue
            if task.ctx is not None:
                if task.submitted:
                    # Queue wait: submit -> first dispatch (retries excluded).
                    obs.observe("fleet.queue_wait_s", time.monotonic() - task.submitted)
                    task.submitted = 0.0
                if task.span is not None and obs.enabled():
                    task.attempt_span = obs.tracer().begin("exec.attempt", parent=task.span.span_id)
                    task.attempt_span.set("slot", worker.slot.index)
                    task.attempt_span.set("wid", worker.wid)
            try:
                with worker.write_lock:
                    worker.proc.stdin.write(frame)
                    worker.proc.stdin.flush()
            except Exception:
                # The pipe died under us; the loss handling requeues the task
                # and accounts the lost worker.
                self._lose_worker(worker, "write to worker failed")

    # -- completion and loss ------------------------------------------------

    def _ingest_telemetry(self, telemetry: dict) -> None:
        """Fold a worker's shipped spans and metrics into this process's."""
        spans = telemetry.get("spans")
        if spans is not None and obs.enabled():
            obs.tracer().ingest(spans)
        metrics = telemetry.get("metrics")
        if metrics is not None and obs.metrics_enabled():
            obs.registry().absorb(metrics)

    def _complete(self, task: _Task, frame: tuple) -> None:
        ok = frame[0] == "result"
        telemetry = frame[3] if ok and len(frame) > 3 else (frame[4] if not ok and len(frame) > 4 else None)
        if telemetry is not None:
            self._ingest_telemetry(telemetry)
        status = "ok" if ok else "error"
        if task.attempt_span is not None:
            task.attempt_span.finish(status)
            task.attempt_span = None
        if task.span is not None:
            task.span.finish(status)
        try:
            if ok:
                task.future.set_result(frame[2])
            else:
                exc = frame[2]
                name, message, trace = frame[3]
                if exc is None:
                    exc = RemoteTaskError(f"task {task.label} raised {name}: {message}\n{trace}")
                elif trace:
                    # The worker-side traceback would otherwise be lost the
                    # moment the exception pickles: attach it so a remote
                    # failure is debuggable without re-running serially.
                    if hasattr(exc, "add_note"):
                        exc.add_note(f"remote worker traceback ({task.label}):\n{trace}")
                    else:  # Python 3.10: no PEP 678 notes
                        exc.remote_traceback = trace
                task.future.set_exception(exc)
        except InvalidStateError:
            pass  # cancelled in flight; nobody is waiting for this result

    def _fail(self, task: _Task, message: str) -> None:
        """Fail a task's future.  Never call while holding the scheduler lock:
        ``set_exception`` runs done-callbacks synchronously, and a callback
        (the chaos harness, a waiting sweep) may re-enter the executor."""
        if task.attempt_span is not None:
            task.attempt_span.finish("lost")
            task.attempt_span = None
        if task.span is not None:
            task.span.finish("error")
        try:
            task.future.set_exception(ExecutorFailure(message))
        except InvalidStateError:
            pass

    def _read_loop(self, worker: _Worker) -> None:
        stream = worker.proc.stdout
        reason = "worker process exited"
        while True:
            try:
                frame = read_frame(stream)
            except Exception as exc:
                # Corrupt or truncated stream (e.g. something polluted the
                # remote stdout): keep the diagnostic -- 'exited' and 'stream
                # desynced' need very different fixes on a real deployment.
                reason = f"worker stream failed: {type(exc).__name__}: {exc}"
                frame = None
            if frame is None:
                break
            tag = frame[0]
            task = None
            assignments: list = []
            probe_rtt: Optional[float] = None
            with self._lock:
                worker.last_seen = time.monotonic()
                slot = worker.slot
                if worker.alive and slot.state == "suspect":
                    slot.state = "live"  # any frame clears the suspicion
                if worker.probe_sent is not None and tag != "heartbeat":
                    # Any main-loop frame answers the probe; the heartbeat
                    # thread keeps beating even on a wedged worker, so it
                    # proves nothing about the loop we probed.
                    probe_rtt = time.monotonic() - worker.probe_sent
                    worker.probe_sent = None
                if tag == "hello":
                    worker.remote_pid = frame[1]
                    if worker.span is not None:
                        worker.span.set("remote_pid", frame[1])
                        worker.span.event("hello")
                    if worker.alive and slot.state == "spawning":
                        slot.state = "live"
                        slot.probe_failures = 0
                        if worker.born_late:
                            self._stats["joins"] += 1
                    # The handshake makes a late joiner dispatchable: hand it
                    # parked work, or let it steal from the longest backlog.
                    assignments = self._dispatch_locked()
                elif tag in ("result", "error"):
                    task = worker.current
                    if task is not None and task.task_id == frame[1]:
                        worker.current = None
                        assignments = self._dispatch_locked()
                    else:
                        task = None  # stale frame for a task this worker no longer owns
            if probe_rtt is not None:
                obs.observe("fleet.probe_rtt_s", probe_rtt)
            if task is not None:
                self._complete(task, frame)
            if assignments:
                self._send_assignments(assignments)
        self._lose_worker(worker, reason)

    def _loss_backoff_locked(self, slot: _Slot, now: float) -> None:
        """Record a loss on ``slot`` and schedule its respawn / quarantine."""
        slot.loss_times.append(now)
        while slot.loss_times and now - slot.loss_times[0] > self.crash_loop_window:
            slot.loss_times.popleft()
        recent = len(slot.loss_times)
        if recent >= self.crash_loop_threshold:
            if slot.state != "quarantined":
                self._stats["quarantines"] += 1
            slot.state = "quarantined"
            slot.probe_failures += 1
            delay = min(
                self.quarantine_backoff_cap,
                self.quarantine_backoff * (2.0 ** (slot.probe_failures - 1)),
            )
        else:
            slot.state = "lost"
            delay = min(self.respawn_backoff_cap, self.respawn_backoff * (2.0 ** (recent - 1)))
        slot.next_attempt = now + delay + self._jitter.uniform(0.0, delay / 2.0)

    def _lose_worker(self, worker: _Worker, reason: str) -> None:
        failures: list[tuple[_Task, str]] = []
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            slot = worker.slot
            retired = slot.state == "retired"
            if worker.span is not None:
                # A retirement is an expected exit; anything else is a loss.
                worker.span.finish("ok" if retired else "lost")
            if slot.worker is worker:
                slot.worker = None
            in_flight = worker.current
            worker.current = None
            if in_flight is not None and in_flight.attempt_span is not None:
                # The attempt died with the worker: the orphaned span closes
                # with a definite ``lost`` status instead of dangling open.
                in_flight.attempt_span.finish("lost")
                in_flight.attempt_span = None
            orphans = list(worker.queue)
            worker.queue.clear()
            if not retired:
                self._stats["workers_lost"] += 1
                if self.respawn and self._started:
                    self._loss_backoff_locked(slot, time.monotonic())
                else:
                    slot.state = "lost"
                    slot.next_attempt = None
            if in_flight is not None:
                in_flight.attempts += 1
                in_flight.excluded.add(worker.wid)
                if in_flight.attempts >= self.max_attempts:
                    failures.append(
                        (
                            in_flight,
                            f"task {in_flight.label} was lost with {in_flight.attempts} worker(s) "
                            f"(last: slot {slot.index}, {reason}); "
                            f"retry budget of {self.max_attempts} attempts exhausted",
                        )
                    )
                else:
                    message = self._requeue_locked(in_flight)
                    if message is None:
                        self._stats["retries"] += 1
                    else:
                        failures.append(
                            (
                                in_flight,
                                f"task {in_flight.label} was in flight on slot {slot.index} "
                                f"({reason}) and no surviving worker can take it "
                                f"({self._stats['workers_lost']} workers lost)",
                            )
                        )
            for task in orphans:
                message = self._requeue_locked(task)
                if message is not None:
                    failures.append(
                        (
                            task,
                            f"no surviving worker can run queued task {task.label} "
                            f"after slot {slot.index} lost its worker ({reason})",
                        )
                    )
            assignments = self._dispatch_locked()
        for task, message in failures:
            self._fail(task, message)
        self._send_assignments(assignments)
        try:
            worker.proc.kill()
        except OSError:
            pass
        worker.proc.wait()

    # -- the fleet thread: health, respawn, autoscale ------------------------

    def _fleet_period(self) -> float:
        if self.monitor_period is not None:
            return self.monitor_period
        candidates = [0.25]
        if self.heartbeat_timeout is not None and self.heartbeat_interval > 0:
            candidates.append(self.heartbeat_timeout / 4.0)
        if self.respawn:
            candidates.append(max(self.respawn_backoff / 2.0, 0.02))
        if self.autoscale:
            candidates.append(max(self.idle_grace / 4.0, 0.02))
        return max(0.02, min(candidates))

    def _fleet_loop(self, stop: threading.Event) -> None:
        period = self._fleet_period()
        while not stop.wait(period):
            self._check_heartbeats()
            if self.respawn:
                self._respawn_due(stop)
            if self.autoscale:
                self._autoscale_tick(stop)

    def _check_heartbeats(self) -> None:
        if self.heartbeat_timeout is None or self.heartbeat_interval <= 0:
            return
        now = time.monotonic()
        stale: list[_Worker] = []
        probes: list[_Worker] = []
        with self._lock:
            for slot in self._slots:
                worker = slot.worker
                if worker is None or not worker.alive:
                    continue
                # Workers that have not completed their handshake are still
                # paying interpreter start-up; only the post-hello silence
                # deadline is tight.
                deadline = (
                    self.heartbeat_timeout
                    if worker.remote_pid is not None
                    else max(self.heartbeat_timeout, self.spawn_deadline)
                )
                silence = now - worker.last_seen
                if silence > deadline:
                    stale.append(worker)
                elif worker.remote_pid is not None and silence > deadline / 2.0 and slot.state == "live":
                    slot.state = "suspect"
                    if worker.span is not None:
                        worker.span.event("suspect")
                    probes.append(worker)
        for worker in probes:
            # An actively-probed suspect either answers (any frame clears the
            # state) or stays silent until the full deadline kills it.
            worker.probe_sent = time.monotonic()
            try:
                with worker.write_lock:
                    write_frame(worker.proc.stdin, ("probe",))
            except Exception:
                self._lose_worker(worker, "write to suspect worker failed")
        for worker in stale:
            # Kill the wedged process; its reader thread sees EOF and the
            # normal loss path (retry, exclusion, respawn) takes over.
            try:
                worker.proc.kill()
            except OSError:
                pass

    def _respawn_due(self, stop: threading.Event) -> None:
        now = time.monotonic()
        with self._lock:
            if not self._started:
                return
            due = [
                slot
                for slot in self._slots
                if slot.worker is None
                and slot.state in ("lost", "quarantined")
                and slot.next_attempt is not None
                and slot.next_attempt <= now
            ]
            for slot in due:
                slot.next_attempt = None  # claimed by this tick
        for slot in due:
            if stop.is_set():
                return
            self._attach_replacement(slot, counted_as="respawns")

    def _attach_replacement(self, slot: _Slot, counted_as: str) -> None:
        """Spawn a late-joining worker into ``slot`` (respawn, probe, scale-up)."""
        try:
            worker = self._spawn_worker(slot, born_late=True)
        except Exception:
            # The spawn itself failed (fork/exec error): treat it like an
            # instant loss so the backoff/quarantine machinery applies.
            with self._lock:
                self._loss_backoff_locked(slot, time.monotonic())
            return
        reap = False
        with self._lock:
            if not self._started or slot.state == "retired":
                reap = True
            else:
                slot.worker = worker
                slot.state = "spawning"
                self._stats[counted_as] += 1
        if reap:
            worker.alive = False
            try:
                worker.proc.kill()
            except OSError:
                pass
            worker.proc.wait()

    def _autoscale_tick(self, stop: threading.Event) -> None:
        now = time.monotonic()
        grow_slot: Optional[_Slot] = None
        shutdown_worker: Optional[_Worker] = None
        with self._lock:
            if not self._started:
                return
            active = [s for s in self._slots if s.state != "retired"]
            live = self._dispatchable_locked()
            backlog = len(self._parked) + sum(len(w.queue) for w in live)
            if backlog > self.scale_backlog_factor * max(1, len(live)) and len(active) < self.max_workers:
                # Revive a retired slot if one exists, else open a new one.
                for slot in self._slots:
                    if slot.state == "retired":
                        grow_slot = slot
                        break
                else:
                    grow_slot = _Slot(len(self._slots))
                    self._slots.append(grow_slot)
                grow_slot.state = "lost"
                grow_slot.loss_times.clear()
                grow_slot.probe_failures = 0
                grow_slot.next_attempt = None
            elif len(live) > self.min_workers:
                for worker in live:
                    if (
                        worker.current is None
                        and not worker.queue
                        and worker.idle_since is not None
                        and now - worker.idle_since > self.idle_grace
                        and worker.slot.state == "live"
                    ):
                        # Retire before shutting down so the coming EOF reads
                        # as an expected exit, not a loss to respawn.
                        worker.slot.state = "retired"
                        worker.slot.next_attempt = None
                        self._stats["scale_downs"] += 1
                        shutdown_worker = worker
                        break
        if grow_slot is not None and not stop.is_set():
            with self._lock:
                self._stats["scale_ups"] += 1
            self._attach_replacement(grow_slot, counted_as="joins")
            with self._lock:
                # _attach_replacement counts the handshake via born_late;
                # undo the double-credit (joins is bumped again on hello).
                self._stats["joins"] -= 1
        if shutdown_worker is not None:
            try:
                with shutdown_worker.write_lock:
                    write_frame(shutdown_worker.proc.stdin, ("shutdown",))
            except Exception:
                self._lose_worker(shutdown_worker, "write to retiring worker failed")

    # -- manual elasticity ---------------------------------------------------

    def grow(self, count: int = 1) -> None:
        """Open ``count`` new fleet slots and spawn late-joining workers.

        The manual form of a scale-up: the new workers handshake and
        immediately take parked work or steal from the longest backlog.
        ``max_workers`` is raised if needed, so a grown fleet stays grown.
        """
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        slots = []
        with self._lock:
            self._ensure_started_locked()
            for _ in range(count):
                slot = _Slot(len(self._slots))
                self._slots.append(slot)
                slots.append(slot)
            active = sum(1 for s in self._slots if s.state != "retired")
            self.max_workers = max(self.max_workers, active)
            if not self.autoscale:
                self.workers = max(self.workers, active)
        for slot in slots:
            self._attach_replacement(slot, counted_as="joins")
            with self._lock:
                self._stats["joins"] -= 1  # credited on hello instead

    # -- lifecycle and introspection ----------------------------------------

    def close(self) -> None:
        # Stop the fleet thread first, outside the lock: a tick in progress
        # may be spawning, and joining it here guarantees no new worker is
        # born after the teardown below collects the living ones.
        self._fleet_stop.set()
        fleet = self._fleet_thread
        if fleet is not None:
            fleet.join(timeout=10)
        with self._lock:
            slots = self._slots
            self._slots = []
            self._started = False
            self._fleet_thread = None
            workers = [slot.worker for slot in slots if slot.worker is not None]
            leftovers: list[_Task] = list(self._parked)
            self._parked.clear()
            for worker in workers:
                worker.alive = False
                if worker.span is not None:
                    worker.span.finish("ok")
                if worker.current is not None:
                    leftovers.append(worker.current)
                    worker.current = None
                leftovers.extend(worker.queue)
                worker.queue.clear()
        for task in leftovers:
            self._fail(task, f"executor closed with task {task.label} outstanding")
        for worker in workers:
            if worker.proc.poll() is None:
                try:
                    with worker.write_lock:
                        write_frame(worker.proc.stdin, ("shutdown",))
                except Exception:
                    pass
            try:
                worker.proc.stdin.close()
            except OSError:
                pass
        for worker in workers:
            try:
                worker.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
        for worker in workers:
            if worker.reader is not None:
                worker.reader.join(timeout=5)

    def _live_workers_locked(self) -> list[_Worker]:
        return [
            slot.worker
            for slot in self._slots
            if slot.worker is not None and slot.worker.alive
        ]

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [w.proc.pid for w in self._live_workers_locked()]

    def busy_worker_pids(self) -> list[int]:
        """PIDs of live workers currently running a task (crash-injection hook)."""
        with self._lock:
            return [w.proc.pid for w in self._live_workers_locked() if w.current is not None]

    def live_worker_count(self) -> int:
        """How many worker processes are alive right now (fleet observability)."""
        with self._lock:
            return len(self._live_workers_locked())

    def slot_states(self) -> list[str]:
        """The per-slot lifecycle states (see the module docstring's machine)."""
        with self._lock:
            return [slot.state for slot in self._slots]

    def partition_worker(self, pid: int) -> bool:
        """Chaos hook: sever the control channel to the worker with ``pid``.

        Closing the parent side of the worker's stdin simulates a network
        partition on a transport the scheduler can observe: the worker sees
        EOF and exits, the parent sees the pipe close, and the ordinary loss
        path (requeue, respawn) takes over.  Returns whether a live worker
        with that pid was found.
        """
        with self._lock:
            target = next((w for w in self._live_workers_locked() if w.proc.pid == pid), None)
        if target is None:
            return False
        try:
            with target.write_lock:
                target.proc.stdin.close()
        except OSError:
            pass
        return True

    def stats(self) -> dict:
        """Cumulative scheduler counters for the lifetime of this instance.

        Never reset -- not by :meth:`close`, not by a respawn cycle -- so the
        numbers a sweep reports as provenance include everything that
        happened on the way, mid-sweep recovery included.
        """
        with self._lock:
            return dict(self._stats)

    def __repr__(self) -> str:
        with self._lock:
            alive = len(self._live_workers_locked())
        return f"{type(self).__name__}(workers={self.workers}, alive={alive}, stats={self.stats()})"


def _package_search_path() -> str:
    """The directory that makes ``import repro`` work in a spawned worker."""
    return str(Path(__file__).resolve().parents[3])


class SubprocessWorkerExecutor(ProtocolExecutor):
    """N long-lived local worker subprocesses speaking the stdio protocol.

    The full remote wire format -- framing, heartbeats, retry scheduling,
    respawn and autoscaling -- exercised entirely on localhost, so
    distribution bugs surface in CI rather than on a cluster.  Workers
    inherit the parent's environment plus a ``PYTHONPATH`` entry for this
    package, and run tasks one at a time.
    """

    def _spawn_command(self, index: int) -> list[str]:
        return [sys.executable, "-m", "repro.worker", "--heartbeat", str(self.heartbeat_interval)]

    def _spawn_env(self) -> dict:
        env = dict(os.environ)
        search = _package_search_path()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = search + (os.pathsep + existing if existing else "")
        return env


class SSHConfigError(ExecutorError):
    """The SSH backend was requested without any configured hosts."""


def ssh_hosts_from_env() -> list[str]:
    """The ``REPRO_SSH_HOSTS`` host list; raises :class:`SSHConfigError` when unset.

    Shared by :class:`SSHExecutor` and the CLI's early validation, so a
    misconfigured ``--executor ssh`` fails with one clear sentence before
    any sweep starts.
    """
    raw = os.environ.get("REPRO_SSH_HOSTS", "")
    hosts = [h.strip() for h in raw.split(",") if h.strip()]
    if not hosts:
        raise SSHConfigError(
            "the ssh executor needs hosts: pass hosts=[...] or set REPRO_SSH_HOSTS=host1,host2"
        )
    return hosts


class SSHExecutor(ProtocolExecutor):
    """Protocol workers spawned as ``ssh host python -m repro.worker``.

    Hosts come from the constructor or the ``REPRO_SSH_HOSTS`` environment
    variable (comma-separated; repeat a host for more than one worker on
    it).  ``workers`` controls how many of the configured hosts are used:
    the list is cycled when more workers than hosts are requested and
    truncated when fewer (the runner passes its ``jobs``, so ``--executor
    ssh --workers 4`` uses four host entries); an autoscaling fleet whose
    ``max_workers`` exceeds the host list cycles it again, stacking extra
    workers onto the existing hosts.  ``REPRO_SSH_PYTHON`` selects
    the remote interpreter (default ``python3``) and
    ``REPRO_SSH_PYTHONPATH``, when set, is exported on the remote side so a
    checkout-only deployment works without installation.
    The ``repro`` package (same version) must be importable on every host;
    because the wire format is identical to the subprocess backend, anything
    proven on localhost holds across machines.

    Host health falls out of the fleet machinery: an unreachable host's
    slot crash-loops into quarantine (the ssh spawn dies or times out at
    the spawn deadline), is re-probed on a growing backoff, and rejoins
    the rotation the first time a probe spawn completes the handshake.

    CI has no hosts configured, so requesting this backend there raises
    :class:`SSHConfigError` -- tests skip on that signal.
    """

    def __init__(
        self,
        hosts: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        python: Optional[str] = None,
        **kwargs,
    ) -> None:
        if hosts is None:
            hosts = ssh_hosts_from_env()
        hosts = list(hosts)
        if not hosts:
            raise SSHConfigError(
                "the ssh executor needs hosts: pass hosts=[...] or set REPRO_SSH_HOSTS=host1,host2"
            )
        if workers is not None:
            # One worker per host entry: cycle the list for extra capacity,
            # truncate it when fewer workers than hosts were asked for.
            hosts = [hosts[i % len(hosts)] for i in range(workers)]
        self.hosts = hosts
        self.python = python or os.environ.get("REPRO_SSH_PYTHON", "python3")
        super().__init__(len(hosts), **kwargs)

    def _spawn_command(self, index: int) -> list[str]:
        remote = f"{shlex.quote(self.python)} -m repro.worker --heartbeat {self.heartbeat_interval}"
        remote_path = os.environ.get("REPRO_SSH_PYTHONPATH")
        if remote_path:
            remote = f"env PYTHONPATH={shlex.quote(remote_path)} {remote}"
        # Autoscaled slots beyond the configured host list cycle it again.
        return ["ssh", "-o", "BatchMode=yes", self.hosts[index % len(self.hosts)], remote]
