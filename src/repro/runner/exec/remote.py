"""Remote protocol executors: worker processes + a fault-tolerant scheduler.

Both backends here run the length-prefixed pickle protocol of
:mod:`repro.runner.exec.protocol` against long-lived ``repro.worker``
processes; they differ only in how a worker is spawned
(:class:`SubprocessWorkerExecutor`: ``python -m repro.worker`` on this
machine, :class:`SSHExecutor`: the same through ``ssh host ...``).  The
shared scheduler in :class:`ProtocolExecutor` provides the fault tolerance
the local pool never needed:

* **liveness detection** -- a per-worker reader thread sees the pipe EOF the
  instant a worker dies, and a monitor thread enforces a heartbeat deadline
  (workers beat from a daemon thread, so a *wedged* worker -- alive but
  silent -- is detected and killed, not just a dead one);
* **bounded retries with worker exclusion** -- a chunk that was in flight on
  a lost worker is requeued on the surviving workers, never on one that
  already failed it (each task carries its own excluded-worker set), and
  after ``max_attempts`` losses (or when no eligible worker survives) its
  future fails with a clear :class:`~repro.runner.exec.base.ExecutorFailure`;
* **work-stealing rebalancing** -- tasks are assigned to the least-loaded
  eligible worker's queue at submission, and a worker that drains its queue
  steals the newest eligible task from the longest backlog, so an uneven
  drain (stragglers, retries piling onto survivors) self-balances.

Tasks that *raise* on a live worker are not retried: every task in this
system is a deterministic pure function of its payload, so a task error
would simply repeat -- it propagates to the future exactly as the local
pool would propagate it.  Only worker *loss* triggers retry, and because
tasks are pure, a retried chunk returns float-for-float what the first
attempt would have.
"""

from __future__ import annotations

import itertools
import os
import shlex
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from pathlib import Path
from typing import Callable, Optional, Sequence

from .base import Executor, ExecutorError, ExecutorFailure, RemoteTaskError
from .protocol import encode_frame, read_frame, write_frame

#: Default seconds between worker heartbeat frames.
HEARTBEAT_INTERVAL = 1.0
#: Default multiple of the heartbeat interval after which a silent worker is
#: declared wedged and killed.  Generous: heartbeats come from a dedicated
#: worker thread, so even a busy worker beats on schedule.
HEARTBEAT_TIMEOUT_FACTOR = 30.0
#: Default bound on how many workers one task may be lost on before its
#: future fails.
MAX_ATTEMPTS = 3
#: Minimum silence tolerated from a worker that has not completed its
#: handshake yet: interpreter start-up and package import must not trip a
#: tight heartbeat deadline on a loaded machine.
SPAWN_DEADLINE = 30.0


class _Task:
    """One submitted unit: a picklable call plus its retry bookkeeping."""

    __slots__ = ("task_id", "fn", "payload", "future", "attempts", "excluded", "started")

    def __init__(self, task_id: int, fn: Callable, payload) -> None:
        self.task_id = task_id
        self.fn = fn
        self.payload = payload
        self.future: Future = Future()
        #: Workers this task was lost on (never rescheduled there).
        self.excluded: set[int] = set()
        #: Workers this task was dispatched to and lost with.
        self.attempts = 0
        #: Whether the future already transitioned to RUNNING (first
        #: dispatch); a retry redispatch must not transition it again.
        self.started = False

    @property
    def label(self) -> str:
        name = getattr(self.fn, "__name__", str(self.fn))
        return f"#{self.task_id} ({name})"


class _Worker:
    """Parent-side handle of one protocol worker process."""

    __slots__ = ("index", "proc", "reader", "write_lock", "alive", "current", "queue", "last_seen", "remote_pid")

    def __init__(self, index: int, proc: subprocess.Popen) -> None:
        self.index = index
        self.proc = proc
        self.reader: Optional[threading.Thread] = None
        self.write_lock = threading.Lock()
        self.alive = True
        self.current: Optional[_Task] = None
        self.queue: deque[_Task] = deque()
        self.last_seen = time.monotonic()
        self.remote_pid: Optional[int] = None

    def load(self) -> int:
        return len(self.queue) + (1 if self.current is not None else 0)


class ProtocolExecutor(Executor):
    """Shared scheduler over spawn-command-defined protocol workers.

    Workers spawn lazily on the first submit and persist across sweeps;
    :meth:`close` reaps every process (shutdown frame, then escalating to
    kill) and resets the executor so the next submit respawns -- the same
    lifecycle the local pool backend has.
    """

    def __init__(
        self,
        workers: int,
        max_attempts: int = MAX_ATTEMPTS,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        heartbeat_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        self.workers = workers
        self.max_attempts = max_attempts
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_timeout is None and heartbeat_interval > 0:
            heartbeat_timeout = HEARTBEAT_TIMEOUT_FACTOR * heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._started = False
        self._task_ids = itertools.count()
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._stats = {"tasks": 0, "retries": 0, "workers_lost": 0, "steals": 0}

    # -- spawning ----------------------------------------------------------

    def _spawn_command(self, index: int) -> list[str]:
        raise NotImplementedError

    def _spawn_env(self) -> Optional[dict]:
        return None

    def _spawn_worker(self, index: int) -> _Worker:
        proc = subprocess.Popen(
            self._spawn_command(index),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # workers log to the parent's stderr
            env=self._spawn_env(),
        )
        worker = _Worker(index, proc)
        worker.reader = threading.Thread(
            target=self._read_loop, args=(worker,), name=f"repro-exec-reader-{index}", daemon=True
        )
        worker.reader.start()
        return worker

    def _ensure_started_locked(self) -> None:
        if self._started:
            return
        self._started = True
        self._monitor_stop = threading.Event()
        self._workers = [self._spawn_worker(index) for index in range(self.workers)]
        if self.heartbeat_timeout is not None and self.heartbeat_interval > 0:
            self._monitor_thread = threading.Thread(
                target=self._monitor_loop, args=(self._monitor_stop,), name="repro-exec-monitor", daemon=True
            )
            self._monitor_thread.start()

    # -- submission and scheduling -----------------------------------------

    @property
    def worker_count(self) -> int:
        return self.workers

    def submit(self, fn: Callable, payload) -> Future:
        task = _Task(next(self._task_ids), fn, payload)
        with self._lock:
            self._ensure_started_locked()
            self._stats["tasks"] += 1
            if not self._eligible_locked(task):
                self._fail_locked(
                    task,
                    f"cannot run task {task.label}: no live workers "
                    f"({self._stats['workers_lost']} lost); close() resets the backend",
                )
                return task.future
            self._enqueue_locked(task)
            assignments = self._dispatch_locked()
        self._send_assignments(assignments)
        return task.future

    def _eligible_locked(self, task: _Task) -> list[_Worker]:
        return [w for w in self._workers if w.alive and w.index not in task.excluded]

    def _enqueue_locked(self, task: _Task) -> None:
        target = min(self._eligible_locked(task), key=lambda w: (w.load(), w.index))
        target.queue.append(task)

    def _steal_locked(self, thief: _Worker) -> Optional[_Task]:
        for victim in sorted(self._workers, key=lambda w: len(w.queue), reverse=True):
            if victim is thief or not victim.alive or not victim.queue:
                continue
            # Steal the newest eligible backlog entry (classic work stealing:
            # the victim keeps the work it is about to reach).
            for task in reversed(victim.queue):
                if thief.index not in task.excluded:
                    victim.queue.remove(task)
                    self._stats["steals"] += 1
                    return task
        return None

    def _dispatch_locked(self) -> list[tuple[_Worker, _Task]]:
        """Pair idle workers with runnable tasks; caller sends outside the lock."""
        assignments: list[tuple[_Worker, _Task]] = []
        for worker in self._workers:
            while worker.alive and worker.current is None:
                task = worker.queue.popleft() if worker.queue else self._steal_locked(worker)
                if task is None:
                    break
                if not task.started:
                    if not task.future.set_running_or_notify_cancel():
                        continue  # cancelled while queued; try the next task
                    task.started = True
                worker.current = task
                assignments.append((worker, task))
        return assignments

    def _send_assignments(self, assignments: Sequence[tuple[_Worker, _Task]]) -> None:
        for worker, task in assignments:
            try:
                frame = encode_frame(("task", task.task_id, task.fn, task.payload))
            except Exception as exc:
                # The *task* cannot be shipped (unpicklable payload, frame
                # over the size limit) -- that is the submitter's error, not
                # the worker's: surface it on the future, free the worker and
                # keep dispatching.  Matches the local pool, which fails the
                # future on a pickling error without killing anything.
                with self._lock:
                    if worker.current is task:
                        worker.current = None
                    redispatch = self._dispatch_locked()
                try:
                    task.future.set_exception(exc)
                except InvalidStateError:
                    pass
                self._send_assignments(redispatch)
                continue
            try:
                with worker.write_lock:
                    worker.proc.stdin.write(frame)
                    worker.proc.stdin.flush()
            except Exception:
                # The pipe died under us; the loss handling requeues the task
                # and accounts the lost worker.
                self._lose_worker(worker, "write to worker failed")

    # -- completion and loss ------------------------------------------------

    @staticmethod
    def _complete(task: _Task, frame: tuple) -> None:
        try:
            if frame[0] == "result":
                task.future.set_result(frame[2])
            else:
                exc = frame[2]
                if exc is None:
                    name, message, trace = frame[3]
                    exc = RemoteTaskError(f"task {task.label} raised {name}: {message}\n{trace}")
                task.future.set_exception(exc)
        except InvalidStateError:
            pass  # cancelled in flight; nobody is waiting for this result

    def _fail_locked(self, task: _Task, message: str) -> None:
        try:
            task.future.set_exception(ExecutorFailure(message))
        except InvalidStateError:
            pass

    def _read_loop(self, worker: _Worker) -> None:
        stream = worker.proc.stdout
        reason = "worker process exited"
        while True:
            try:
                frame = read_frame(stream)
            except Exception as exc:
                # Corrupt or truncated stream (e.g. something polluted the
                # remote stdout): keep the diagnostic -- 'exited' and 'stream
                # desynced' need very different fixes on a real deployment.
                reason = f"worker stream failed: {type(exc).__name__}: {exc}"
                frame = None
            if frame is None:
                break
            tag = frame[0]
            with self._lock:
                worker.last_seen = time.monotonic()
                if tag == "hello":
                    worker.remote_pid = frame[1]
                task = None
                assignments: list = []
                if tag in ("result", "error"):
                    task = worker.current
                    if task is not None and task.task_id == frame[1]:
                        worker.current = None
                        assignments = self._dispatch_locked()
                    else:
                        task = None  # stale frame for a task this worker no longer owns
            if task is not None:
                self._complete(task, frame)
            if assignments:
                self._send_assignments(assignments)
        self._lose_worker(worker, reason)

    def _lose_worker(self, worker: _Worker, reason: str) -> None:
        failures: list[tuple[_Task, str]] = []
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            self._stats["workers_lost"] += 1
            in_flight = worker.current
            worker.current = None
            orphans = list(worker.queue)
            worker.queue.clear()
            if in_flight is not None:
                in_flight.attempts += 1
                in_flight.excluded.add(worker.index)
                if in_flight.attempts >= self.max_attempts:
                    failures.append(
                        (
                            in_flight,
                            f"task {in_flight.label} was lost with {in_flight.attempts} worker(s) "
                            f"(last: worker {worker.index}, {reason}); "
                            f"retry budget of {self.max_attempts} attempts exhausted",
                        )
                    )
                elif not self._eligible_locked(in_flight):
                    failures.append(
                        (
                            in_flight,
                            f"task {in_flight.label} was in flight on worker {worker.index} ({reason}) "
                            f"and no surviving worker can take it "
                            f"({self._stats['workers_lost']} of {self.workers} workers lost)",
                        )
                    )
                else:
                    self._stats["retries"] += 1
                    self._enqueue_locked(in_flight)
            for task in orphans:
                if self._eligible_locked(task):
                    self._enqueue_locked(task)
                else:
                    failures.append(
                        (
                            task,
                            f"no surviving worker can run queued task {task.label} "
                            f"after worker {worker.index} died ({reason})",
                        )
                    )
            assignments = self._dispatch_locked()
        for task, message in failures:
            with self._lock:
                self._fail_locked(task, message)
        self._send_assignments(assignments)
        try:
            worker.proc.kill()
        except OSError:
            pass
        worker.proc.wait()

    def _monitor_loop(self, stop: threading.Event) -> None:
        period = max(0.05, (self.heartbeat_timeout or 1.0) / 4.0)
        # Workers that have not completed their handshake are still paying
        # interpreter start-up; only the post-hello silence deadline is tight.
        spawn_deadline = max(self.heartbeat_timeout, SPAWN_DEADLINE)
        while not stop.wait(period):
            now = time.monotonic()
            with self._lock:
                stale = [
                    w
                    for w in self._workers
                    if w.alive
                    and now - w.last_seen > (self.heartbeat_timeout if w.remote_pid is not None else spawn_deadline)
                ]
            for worker in stale:
                # Kill the wedged process; its reader thread sees EOF and the
                # normal loss path (retry, exclusion, accounting) takes over.
                try:
                    worker.proc.kill()
                except OSError:
                    pass

    # -- lifecycle and introspection ----------------------------------------

    def close(self) -> None:
        with self._lock:
            workers = self._workers
            self._workers = []
            self._started = False
            monitor = self._monitor_thread
            self._monitor_thread = None
            self._monitor_stop.set()
            leftovers: list[_Task] = []
            for worker in workers:
                worker.alive = False
                if worker.current is not None:
                    leftovers.append(worker.current)
                    worker.current = None
                leftovers.extend(worker.queue)
                worker.queue.clear()
            for task in leftovers:
                self._fail_locked(task, f"executor closed with task {task.label} outstanding")
        for worker in workers:
            if worker.proc.poll() is None:
                try:
                    with worker.write_lock:
                        write_frame(worker.proc.stdin, ("shutdown",))
                except Exception:
                    pass
            try:
                worker.proc.stdin.close()
            except OSError:
                pass
        for worker in workers:
            try:
                worker.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                worker.proc.kill()
                worker.proc.wait()
        for worker in workers:
            if worker.reader is not None:
                worker.reader.join(timeout=5)
        if monitor is not None:
            monitor.join(timeout=5)

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [w.proc.pid for w in self._workers if w.alive]

    def busy_worker_pids(self) -> list[int]:
        """PIDs of live workers currently running a task (crash-injection hook)."""
        with self._lock:
            return [w.proc.pid for w in self._workers if w.alive and w.current is not None]

    def stats(self) -> dict:
        with self._lock:
            return dict(self._stats)

    def __repr__(self) -> str:
        with self._lock:
            alive = sum(1 for w in self._workers if w.alive)
        return f"{type(self).__name__}(workers={self.workers}, alive={alive}, stats={self.stats()})"


def _package_search_path() -> str:
    """The directory that makes ``import repro`` work in a spawned worker."""
    return str(Path(__file__).resolve().parents[3])


class SubprocessWorkerExecutor(ProtocolExecutor):
    """N long-lived local worker subprocesses speaking the stdio protocol.

    The full remote wire format -- framing, heartbeats, retry scheduling --
    exercised entirely on localhost, so distribution bugs surface in CI
    rather than on a cluster.  Workers inherit the parent's environment plus
    a ``PYTHONPATH`` entry for this package, and run tasks one at a time.
    """

    def _spawn_command(self, index: int) -> list[str]:
        return [sys.executable, "-m", "repro.worker", "--heartbeat", str(self.heartbeat_interval)]

    def _spawn_env(self) -> dict:
        env = dict(os.environ)
        search = _package_search_path()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = search + (os.pathsep + existing if existing else "")
        return env


class SSHConfigError(ExecutorError):
    """The SSH backend was requested without any configured hosts."""


class SSHExecutor(ProtocolExecutor):
    """Protocol workers spawned as ``ssh host python -m repro.worker``.

    Hosts come from the constructor or the ``REPRO_SSH_HOSTS`` environment
    variable (comma-separated; repeat a host for more than one worker on
    it).  ``workers`` controls how many of the configured hosts are used:
    the list is cycled when more workers than hosts are requested and
    truncated when fewer (the runner passes its ``jobs``, so ``--executor
    ssh --workers 4`` uses four host entries).  ``REPRO_SSH_PYTHON`` selects
    the remote interpreter (default ``python3``) and
    ``REPRO_SSH_PYTHONPATH``, when set, is exported on the remote side so a
    checkout-only deployment works without installation.
    The ``repro`` package (same version) must be importable on every host;
    because the wire format is identical to the subprocess backend, anything
    proven on localhost holds across machines.

    CI has no hosts configured, so requesting this backend there raises
    :class:`SSHConfigError` -- tests skip on that signal.
    """

    def __init__(
        self,
        hosts: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
        python: Optional[str] = None,
        **kwargs,
    ) -> None:
        if hosts is None:
            raw = os.environ.get("REPRO_SSH_HOSTS", "")
            hosts = [h.strip() for h in raw.split(",") if h.strip()]
        hosts = list(hosts)
        if not hosts:
            raise SSHConfigError(
                "the ssh executor needs hosts: pass hosts=[...] or set REPRO_SSH_HOSTS=host1,host2"
            )
        if workers is not None:
            # One worker per host entry: cycle the list for extra capacity,
            # truncate it when fewer workers than hosts were asked for.
            hosts = [hosts[i % len(hosts)] for i in range(workers)]
        self.hosts = hosts
        self.python = python or os.environ.get("REPRO_SSH_PYTHON", "python3")
        super().__init__(len(hosts), **kwargs)

    def _spawn_command(self, index: int) -> list[str]:
        remote = f"{shlex.quote(self.python)} -m repro.worker --heartbeat {self.heartbeat_interval}"
        remote_path = os.environ.get("REPRO_SSH_PYTHONPATH")
        if remote_path:
            remote = f"env PYTHONPATH={shlex.quote(remote_path)} {remote}"
        return ["ssh", "-o", "BatchMode=yes", self.hosts[index], remote]
