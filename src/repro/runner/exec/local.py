"""The local backend: today's persistent multiprocessing pool behind the seam.

This is the default executor and a strict behavior-preserving wrapper: the
sweep runner used to own a lazily-spawned persistent
:class:`~concurrent.futures.ProcessPoolExecutor`; now the pool lives here and
the runner only sees the :class:`~repro.runner.exec.base.Executor` surface.
Scheduling, chunk batching, windowed submission and
:class:`~concurrent.futures.process.BrokenProcessPool` propagation are all
exactly what they were.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Optional

from .base import Executor


class LocalPoolExecutor(Executor):
    """Run tasks on a lazily-spawned, persistent local process pool."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def worker_count(self) -> int:
        return self.workers

    def submit(self, fn: Callable, payload) -> Future:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool.submit(fn, payload)

    def worker_pids(self) -> list[int]:
        if self._pool is None:
            return []
        # ProcessPoolExecutor spawns lazily too; _processes is its live map.
        return sorted(self._pool._processes or ())  # noqa: SLF001

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        state = "live" if self._pool is not None else "idle"
        return f"LocalPoolExecutor(workers={self.workers}, {state})"
