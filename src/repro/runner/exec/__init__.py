"""Pluggable executor backends for the sweep runner.

The execution seam (:class:`~repro.runner.exec.base.Executor`) abstracts
"something that runs picklable task functions and returns futures".  Three
backends ship:

========================  ====================================================
``pool`` (default)        :class:`~repro.runner.exec.local.LocalPoolExecutor`
                          -- the historical persistent in-process
                          multiprocessing pool, zero behavior change.
``subprocess``            :class:`~repro.runner.exec.remote.
                          SubprocessWorkerExecutor` -- N long-lived worker
                          subprocesses speaking the length-prefixed pickle
                          protocol over stdio, scheduled fault-tolerantly
                          (heartbeats, bounded retries with worker
                          exclusion, work stealing).
``ssh``                   :class:`~repro.runner.exec.remote.SSHExecutor` --
                          the same protocol over ``ssh host python -m
                          repro.worker``; configured via ``REPRO_SSH_HOSTS``.
========================  ====================================================

The protocol backends are a self-healing elastic fleet: lost workers
respawn with backoff, crash-looping slots are quarantined and re-probed,
late joiners steal from the longest backlog, and an optional autoscaling
policy sizes the fleet between ``min_workers`` and ``max_workers`` (see the
``repro.runner.exec.remote`` module docstring for the slot state machine).

Because every task in this system is a pure function of its payload, backend
choice can never change a measured value -- only where and how reliably the
work runs.  ``tests/test_executors.py``, ``tests/test_fleet.py`` and
experiments E14/E15 assert that invariance float-for-float, including across
injected worker crashes and continuous fleet churn.
"""

from .base import (
    EXECUTOR_SPECS,
    Executor,
    ExecutorError,
    ExecutorFailure,
    ExecutorSpec,
    RemoteTaskError,
    make_executor,
)
from .faultinject import ChaosController, ChaosEvent, ChaosSchedule
from .local import LocalPoolExecutor
from .protocol import ProtocolError, read_frame, write_frame
from .remote import (
    ProtocolExecutor,
    SSHConfigError,
    SSHExecutor,
    SubprocessWorkerExecutor,
    ssh_hosts_from_env,
)

__all__ = [
    "EXECUTOR_SPECS",
    "Executor",
    "ExecutorSpec",
    "ExecutorError",
    "ExecutorFailure",
    "RemoteTaskError",
    "make_executor",
    "LocalPoolExecutor",
    "ProtocolExecutor",
    "SubprocessWorkerExecutor",
    "SSHExecutor",
    "SSHConfigError",
    "ssh_hosts_from_env",
    "ChaosController",
    "ChaosEvent",
    "ChaosSchedule",
    "ProtocolError",
    "read_frame",
    "write_frame",
]
