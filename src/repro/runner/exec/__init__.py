"""Pluggable executor backends for the sweep runner.

The execution seam (:class:`~repro.runner.exec.base.Executor`) abstracts
"something that runs picklable task functions and returns futures".  Three
backends ship:

========================  ====================================================
``pool`` (default)        :class:`~repro.runner.exec.local.LocalPoolExecutor`
                          -- the historical persistent in-process
                          multiprocessing pool, zero behavior change.
``subprocess``            :class:`~repro.runner.exec.remote.
                          SubprocessWorkerExecutor` -- N long-lived worker
                          subprocesses speaking the length-prefixed pickle
                          protocol over stdio, scheduled fault-tolerantly
                          (heartbeats, bounded retries with worker
                          exclusion, work stealing).
``ssh``                   :class:`~repro.runner.exec.remote.SSHExecutor` --
                          the same protocol over ``ssh host python -m
                          repro.worker``; configured via ``REPRO_SSH_HOSTS``.
========================  ====================================================

Because every task in this system is a pure function of its payload, backend
choice can never change a measured value -- only where and how reliably the
work runs.  ``tests/test_executors.py`` and experiment E14 assert that
invariance float-for-float, including across injected worker crashes.
"""

from .base import (
    EXECUTOR_SPECS,
    Executor,
    ExecutorError,
    ExecutorFailure,
    ExecutorSpec,
    RemoteTaskError,
    make_executor,
)
from .local import LocalPoolExecutor
from .protocol import ProtocolError, read_frame, write_frame
from .remote import ProtocolExecutor, SSHConfigError, SSHExecutor, SubprocessWorkerExecutor

__all__ = [
    "EXECUTOR_SPECS",
    "Executor",
    "ExecutorSpec",
    "ExecutorError",
    "ExecutorFailure",
    "RemoteTaskError",
    "make_executor",
    "LocalPoolExecutor",
    "ProtocolExecutor",
    "SubprocessWorkerExecutor",
    "SSHExecutor",
    "SSHConfigError",
    "ProtocolError",
    "read_frame",
    "write_frame",
]
