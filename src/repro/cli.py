"""Command-line interface.

The CLI exposes the library's main entry points without writing any Python:

* ``repro bounds``       -- print the analytic guarantees for a parameterisation,
* ``repro run``          -- run one scenario (optionally many sharded
  replications of it) and print the measured guarantees,
* ``repro kernel``       -- explain which simulation kernel serves a scenario
  (resolved selection, static eligibility verdict with the reason, and with
  ``--run`` the per-lane provenance breakdown of an actual run),
* ``repro experiment``   -- regenerate one (or all) of the reproduced tables E1..E15,
* ``repro stats``        -- run one scenario with the metrics registry on and dump
  every counter/gauge/histogram Prometheus-style,
* ``repro list-attacks`` -- list the registered Byzantine strategies,
* ``repro list-experiments`` -- list the reproduced experiments.

Invoke as ``python -m repro <command> ...``.  ``repro run`` grows the
telemetry exports: ``--trace-out trace.json`` writes a Chrome-trace-viewer
timeline of the run (parent and worker spans rebased onto one clock) and
``--events-out spans.jsonl`` the same spans as a JSONL stream.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import obs
from .analysis.report import Table, render_tables
from .analysis.serialize import result_to_json
from .core.bounds import AUTH, ECHO, theoretical_bounds
from .core.params import params_for
from .experiments import EXPERIMENTS
from .faults.strategies import available_attacks
from .runner.config import configure as configure_runner
from .runner.config import get_runner
from .runner.exec import SSHConfigError, ssh_hosts_from_env
from .workloads.scenarios import ALL_ALGORITHMS, CLOCK_MODES, DELAY_MODES, TRACE_LEVELS, Scenario


def _nonnegative_int(raw: str) -> int:
    value = int(raw)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {value}")
    return value


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be at least 1, got {value}")
    return value


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_nonnegative_int,
        default=None,
        help="worker processes for scenario sweeps (0 = one per CPU; default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--executor",
        choices=["pool", "subprocess", "ssh"],
        default=None,
        help="execution backend: 'pool' (in-process multiprocessing, default), 'subprocess' "
        "(local protocol workers with fault-tolerant scheduling), 'ssh' (protocol workers "
        "on REPRO_SSH_HOSTS); default: REPRO_EXECUTOR or pool -- results are identical "
        "across backends",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="worker count for the chosen executor backend (overrides --jobs)",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help="let the subprocess/ssh fleet autoscale between --min-workers and --max-workers "
        "(spawn while the backlog exceeds the live capacity, reap idle workers); "
        "default: REPRO_AUTOSCALE",
    )
    parser.add_argument(
        "--min-workers",
        type=_positive_int,
        default=None,
        dest="min_workers",
        help="autoscale floor (implies --autoscale; default 1)",
    )
    parser.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        dest="max_workers",
        help="autoscale ceiling (implies --autoscale; default: the worker count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        dest="no_cache",
        help="recompute every scenario instead of reusing the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="result cache location (default: REPRO_CACHE_DIR or ~/.cache/repro-sweeps)",
    )


def _configure_runner(args: argparse.Namespace) -> None:
    runner = configure_runner(
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        cache_dir=args.cache_dir,
        executor=args.executor,
        workers=args.workers,
        autoscale=True if args.autoscale else None,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
    )
    if runner.executor_spec == "ssh":
        # Validate eagerly: a missing host list should be one clear sentence
        # and exit code 2 (main() maps SSHConfigError), not a traceback from
        # the middle of a sweep.
        ssh_hosts_from_env()


def _fleet_summary(stats: dict) -> Optional[str]:
    """One provenance line from an executor's cumulative scheduler counters."""
    if not stats:
        return None
    order = (
        "tasks",
        "retries",
        "workers_lost",
        "steals",
        "respawns",
        "quarantines",
        "joins",
        "scale_ups",
        "scale_downs",
    )
    parts = [f"{stats[key]} {key.replace('_', ' ')}" for key in order if stats.get(key)]
    return ", ".join(parts) if parts else "idle"


def _add_param_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=7, help="number of processes (default 7)")
    parser.add_argument("--f", type=int, default=None, help="fault bound (default: maximum tolerable)")
    parser.add_argument("--rho", type=float, default=1e-4, help="hardware clock drift bound (default 1e-4)")
    parser.add_argument("--tdel", type=float, default=0.01, help="maximum message delay in seconds (default 0.01)")
    parser.add_argument("--tmin", type=float, default=0.0, help="minimum message delay (default 0)")
    parser.add_argument("--period", type=float, default=1.0, help="resynchronization period (default 1.0)")
    parser.add_argument("--alpha", type=float, default=None, help="adjustment constant (default (1+rho)*tdel)")


def _params_from_args(args: argparse.Namespace, authenticated: bool):
    return params_for(
        n=args.n,
        f=args.f,
        authenticated=authenticated,
        rho=args.rho,
        tdel=args.tdel,
        tmin=args.tmin,
        period=args.period,
        alpha=args.alpha,
        initial_offset_spread=args.tdel / 2,
    )


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    """The full scenario description, shared by ``run`` and ``stats``."""
    parser.add_argument("--algorithm", choices=list(ALL_ALGORITHMS), default="auth")
    parser.add_argument("--attack", default="eager", help="adversary strategy (see list-attacks); default eager")
    parser.add_argument("--actual-faults", type=int, default=None, dest="actual_faults",
                        help="how many processes actually misbehave (default: f)")
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--clock-mode", choices=list(CLOCK_MODES), default="extreme", dest="clock_mode")
    parser.add_argument("--delay-mode", choices=list(DELAY_MODES), default="targeted", dest="delay_mode")
    parser.add_argument("--startup", action="store_true", help="start from scratch via the start-up protocol")
    parser.add_argument("--boot-spread", type=float, default=0.0, dest="boot_spread")
    parser.add_argument("--joiners", type=int, default=0, help="number of late joiners")
    parser.add_argument("--join-time", type=float, default=0.0, dest="join_time")
    parser.add_argument("--monotonic", action="store_true", help="suppress backward clock corrections")
    parser.add_argument(
        "--trace-level",
        choices=list(TRACE_LEVELS),
        default="full",
        dest="trace_level",
        help="observation depth: 'full' records the whole trace, 'metrics' streams scalar metrics in O(n) memory",
    )
    parser.add_argument(
        "--adaptive-horizon",
        choices=["auto", "on", "off"],
        default="auto",
        dest="adaptive_horizon",
        help="halt as soon as the target round completes instead of polling the round per event "
        "(auto: adaptive for metrics runs, historical for full traces)",
    )
    parser.add_argument(
        "--grace",
        type=float,
        default=0.0,
        help="real time to keep simulating past target-round completion on adaptive runs (default 0)",
    )
    parser.add_argument(
        "--abort-unreachable",
        action="store_true",
        dest="abort_unreachable",
        help="end the run the moment the target round becomes unreachable (an honest crash "
        "capped the completable rounds) instead of burning the full budget; changes the "
        "measured end time of infeasible runs only",
    )
    parser.add_argument(
        "--replications",
        type=_positive_int,
        default=1,
        help="independent replications of the scenario (seeds seed..seed+R-1); the result is "
        "the exact merge of the per-replication summaries (worst case over runs)",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="shard tasks the replications split into across the worker pool "
        "(default: one per core, REPRO_SHARDS overrides; never changes measured values)",
    )
    parser.add_argument(
        "--sample-messages",
        type=_positive_int,
        default=None,
        dest="sample_messages",
        help="retain every K-th network message as a lightweight sample in the result "
        "(message-level provenance; forces --trace-level metrics)",
    )
    parser.add_argument(
        "--kernel",
        choices=["auto", "event", "vector"],
        default=None,
        help="simulation kernel: 'event' (pure-Python event loop), 'vector' (batched NumPy "
        "round evaluator; metrics-level runs only, falls back with a recorded note when "
        "ineligible), 'auto' (vector exactly when eligible); default: REPRO_KERNEL or auto "
        "-- measured values are float-identical across kernels",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--chaos",
        default=None,
        help="scripted chaos schedule fired against the worker fleet while the scenario runs, "
        "e.g. 'kill@1,wedge@3' (after N completed chunks, kill/wedge/partition a worker); "
        "needs --executor subprocess or ssh -- results are float-identical regardless",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        dest="chaos_seed",
        help="seed for the chaos schedule's victim selection (default 0)",
    )


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    """Build the declarative scenario a ``run``/``stats`` invocation describes."""
    authenticated = args.algorithm == "auth"
    params = _params_from_args(args, authenticated=authenticated)
    scenario = Scenario(
        params=params,
        algorithm=args.algorithm,
        attack=args.attack,
        actual_faults=args.actual_faults,
        rounds=args.rounds,
        clock_mode=args.clock_mode,
        delay_mode=args.delay_mode,
        use_startup=args.startup,
        boot_spread=args.boot_spread,
        joiner_count=args.joiners,
        join_time=args.join_time,
        monotonic=args.monotonic,
        grace=args.grace,
        abort_unreachable=args.abort_unreachable,
        replications=args.replications,
        shards=args.shards,
        sample_messages=args.sample_messages,
        kernel=args.kernel,
        seed=args.seed,
    )
    if args.adaptive_horizon != "auto":
        scenario.adaptive_horizon = args.adaptive_horizon == "on"
    return scenario


def _resolve_trace_level(args: argparse.Namespace) -> str:
    """The effective trace level, with the forcing notes ``run`` always printed."""
    trace_level = args.trace_level
    if args.replications > 1 and trace_level == "full":
        # Replicated runs merge streamed summaries; full traces do not merge.
        trace_level = "metrics"
        print("note: --replications forces --trace-level metrics", file=sys.stderr)
    if args.sample_messages is not None and trace_level == "full":
        # Full traces keep every message already; sampling is a metrics feature.
        trace_level = "metrics"
        print("note: --sample-messages forces --trace-level metrics", file=sys.stderr)
    return trace_level


def _run_with_chaos(args: argparse.Namespace, runner, scenario: Scenario, trace_level: str):
    """Run via the shared runner, under the scripted chaos schedule when given.

    Returns the result, or ``None`` when ``--chaos`` was requested on a
    non-distributed backend (the caller exits 2).
    """
    if not args.chaos:
        return runner.run(scenario, trace_level=trace_level)
    if not runner.distributed:
        print(
            "error: --chaos drives the fleet scheduler; use --executor subprocess or ssh",
            file=sys.stderr,
        )
        return None
    from .runner.exec import ChaosController, ChaosSchedule

    schedule = ChaosSchedule.parse(args.chaos, seed=args.chaos_seed)
    with ChaosController(runner.executor, schedule) as chaos:
        result = runner.run(scenario, trace_level=trace_level)
    fired = ", ".join(f"{action}@{after}->pid {pid}" for action, after, pid in chaos.fired)
    print(f"chaos: {fired or 'no events fired'}", file=sys.stderr)
    return result


def _render_provenance(provenance) -> str:
    """The one kernel-provenance line ``run`` and ``kernel --run`` both print.

    Also folds the record into the metrics registry when one is installed --
    under the ``provenance.*`` namespace, distinct from the live worker-side
    ``kernel.*`` counters -- so ``repro stats`` reports the same breakdown
    this renders.
    """
    if obs.metrics_enabled():
        obs.registry().absorb_kernel_provenance(provenance, prefix="provenance")
    return provenance.describe()


def _export_telemetry(args: argparse.Namespace, runner) -> None:
    """Write the ``--trace-out`` / ``--events-out`` exports for a traced run."""
    from .obs.export import write_chrome_trace, write_jsonl

    # Reap the fleet first so worker incarnation spans close cleanly instead
    # of being flagged "open" in the export.
    runner.close()
    payload = obs.tracer().export_payload()
    if args.trace_out is not None:
        count = write_chrome_trace(args.trace_out, payload["spans"])
        print(f"trace: {count} spans -> {args.trace_out}", file=sys.stderr)
    if args.events_out is not None:
        count = write_jsonl(args.events_out, payload["spans"])
        print(f"events: {count} spans -> {args.events_out}", file=sys.stderr)


def _cmd_bounds(args: argparse.Namespace) -> int:
    algorithm = ECHO if args.algorithm == "echo" else AUTH
    params = _params_from_args(args, authenticated=algorithm == AUTH)
    bounds = theoretical_bounds(params, algorithm)
    table = Table(title=f"Analytic guarantees ({algorithm}, {params.describe()})", headers=["quantity", "value"])
    for key, value in bounds.as_dict().items():
        table.add_row(key, value)
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    exporting = args.trace_out is not None or args.events_out is not None
    if not exporting:
        return _run_and_report(args, exporting=False)
    # Telemetry watches wall-clock scheduling only; the measured result is
    # float-identical either way (pinned by tests and the bench gate).  The
    # disable() makes enabling command-scoped, so in-process callers (the
    # test suite drives main() directly) never leak an installed tracer.
    obs.enable()
    try:
        return _run_and_report(args, exporting=True)
    finally:
        obs.disable()


def _run_and_report(args: argparse.Namespace, exporting: bool) -> int:
    _configure_runner(args)
    scenario = _scenario_from_args(args)
    trace_level = _resolve_trace_level(args)
    runner = get_runner()
    result = _run_with_chaos(args, runner, scenario, trace_level)
    if result is None:
        return 2
    fleet = _fleet_summary(runner.executor_stats())
    if exporting:
        _export_telemetry(args, runner)
    if args.json:
        if fleet is not None:
            print(f"fleet: {fleet}", file=sys.stderr)
        include_trace = args.include_trace and result.trace is not None
        print(result_to_json(result, include_trace=include_trace))
        return 0 if result.guarantees_hold else 1
    table = Table(title=f"Scenario {scenario.name}", headers=["quantity", "value"])
    if fleet is not None:
        table.add_row("fleet", fleet)
    if scenario.replications > 1:
        table.add_row("replications", scenario.replications)
        table.add_row("shard tasks", result.shard_count)
        table.add_row("effective horizon (max, s)", result.effective_horizon)
    if result.message_samples is not None:
        table.add_row("message samples retained", len(result.message_samples))
    if result.kernel_provenance is not None:
        table.add_row("kernel", _render_provenance(result.kernel_provenance).removeprefix("kernel "))
    table.add_row("completed round", result.completed_round)
    table.add_row("precision (worst skew, s)", result.precision)
    table.add_row("acceptance spread (s)", result.acceptance_spread)
    table.add_row("messages per round", result.messages_per_round)
    if result.accuracy is not None:
        table.add_row("fastest long-run rate", result.accuracy.fastest_long_run_rate)
        table.add_row("worst |C(t)-t| (s)", result.accuracy.worst_offset_from_real_time)
    print(table.render())
    if result.guarantees is not None:
        print()
        print(result.guarantees.describe())
    return 0 if result.guarantees_hold else 1


def _cmd_kernel(args: argparse.Namespace) -> int:
    """Explain the kernel policy for one scenario without grepping notes.

    Prints the resolved selection (field -> ``REPRO_KERNEL`` env -> auto),
    the static eligibility verdict with the whitelist-derived reason, and --
    when ``--run`` is given -- the per-lane :class:`KernelProvenance`
    breakdown of an actual metrics-level run.
    """
    from .sim.kernel import kernel_ineligibility, resolve_kernel

    authenticated = args.algorithm == "auth"
    params = _params_from_args(args, authenticated=authenticated)
    scenario = Scenario(
        params=params,
        algorithm=args.algorithm,
        attack=args.attack,
        actual_faults=args.actual_faults,
        rounds=args.rounds,
        clock_mode=args.clock_mode,
        delay_mode=args.delay_mode,
        replications=args.replications,
        shards=args.shards,
        kernel=args.kernel,
        seed=args.seed,
    )
    resolved = resolve_kernel(scenario)
    reason = kernel_ineligibility(scenario, "metrics")
    table = Table(title=f"Kernel policy for {scenario.name}", headers=["quantity", "value"])
    table.add_row("resolved kernel", resolved)
    table.add_row("static verdict", "eligible" if reason is None else "ineligible")
    if reason is not None:
        table.add_row("reason", reason)
    if resolved == "event":
        table.add_row("serves", "event loop (selected)")
    elif reason is None:
        table.add_row("serves", "vector kernel (may fall back per lane)")
    elif resolved == "vector":
        table.add_row("serves", "event loop, with a recorded fallback note")
    else:
        table.add_row("serves", "event loop")
    print(table.render())
    if not args.run:
        return 0
    _configure_runner(args)
    result = get_runner().run(scenario, trace_level="metrics")
    print()
    if result.kernel_provenance is None:
        print("run provenance: not recorded")
    else:
        print(f"run provenance: {_render_provenance(result.kernel_provenance)}")
    return 0 if result.guarantees_hold else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run one scenario with the metrics registry on and dump it Prometheus-style.

    Spans stay off (``trace=False``): this command is about the counters.  The
    registry accumulates live worker-side counters (``kernel.*``, ``cache.*``,
    ``fleet.queue_wait_s``/``probe_rtt_s`` histograms) during the run, then the
    edge folds in the cumulative fleet scheduler counters and the run's kernel
    provenance before rendering one Prometheus text exposition on stdout.
    """
    obs.enable(trace=False, metrics=True)
    try:
        return _stats_run(args)
    finally:
        obs.disable()


def _stats_run(args: argparse.Namespace) -> int:
    from .obs.export import render_prometheus

    _configure_runner(args)
    scenario = _scenario_from_args(args)
    trace_level = _resolve_trace_level(args)
    runner = get_runner()
    result = _run_with_chaos(args, runner, scenario, trace_level)
    if result is None:
        return 2
    registry = obs.registry()
    registry.absorb_fleet_stats(runner.executor_stats())
    if result.kernel_provenance is not None:
        _render_provenance(result.kernel_provenance)
    # The cache counters tick live in _count(); force the series to exist even
    # when caching is disabled so the exposition always reports them.
    for name in ("cache.hits", "cache.misses", "cache.stores"):
        registry.inc(name, 0)
    sys.stdout.write(render_prometheus(registry.snapshot()))
    return 0 if result.guarantees_hold else 1


def _experiment_provenance_line(parts: list) -> Optional[str]:
    """Fold the kernel provenance of one experiment's results into one line."""
    if not parts:
        return None
    from .workloads.scenarios import merge_kernel_provenance

    by_resolved: dict = {}
    for part in parts:
        by_resolved.setdefault(part.resolved, []).append(part)
    return "; ".join(
        merge_kernel_provenance(resolved, group).describe()
        for resolved, group in sorted(by_resolved.items())
    )


def _cache_delta_line(before: Optional[dict], after: Optional[dict]) -> Optional[str]:
    """One line of cache activity between two :class:`CacheStats` snapshots."""
    if before is None or after is None:
        return None
    delta = {key: after[key] - before.get(key, 0) for key in after}
    if not any(delta.values()):
        return None
    return ", ".join(f"{delta[key]} {key}" for key in ("hits", "misses", "stores"))


def _cmd_experiment(args: argparse.Namespace) -> int:
    _configure_runner(args)
    ids = list(EXPERIMENTS) if args.id == "all" else [args.id.upper()]
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    from .experiments import common as experiments_common

    if args.stream:
        def report(done: int, total: int, result) -> None:
            print(f"  [{done}/{total}] {result.scenario.name}", file=sys.stderr)

        experiments_common.set_progress(report)
    provenance_parts: list = []

    def observe(result) -> None:
        if getattr(result, "kernel_provenance", None) is not None:
            provenance_parts.append(result.kernel_provenance)

    experiments_common.set_observer(observe)
    runner = get_runner()
    failed: list[str] = []
    try:
        for exp_id in ids:
            experiment = EXPERIMENTS[exp_id]
            provenance_parts.clear()
            cache_before = runner.cache.stats.as_dict() if runner.cache is not None else None
            try:
                tables = experiment.run(quick=args.quick)
            except Exception as exc:
                # Table generation failing must fail the invocation (it used
                # to exit 0): report, keep going so an `all` run still shows
                # which other experiments reproduce, and exit nonzero below.
                print(f"[{exp_id}] FAILED: {exc!r}", file=sys.stderr)
                failed.append(exp_id)
                continue
            if not tables:
                print(f"[{exp_id}] FAILED: produced no tables", file=sys.stderr)
                failed.append(exp_id)
                continue
            print(f"[{exp_id}] {experiment.claim}")
            provenance = _experiment_provenance_line(provenance_parts)
            if provenance is not None:
                print(f"[{exp_id}] {provenance}")
            cache_after = runner.cache.stats.as_dict() if runner.cache is not None else None
            cache_line = _cache_delta_line(cache_before, cache_after)
            if cache_line is not None:
                print(f"[{exp_id}] cache: {cache_line}", file=sys.stderr)
            print(render_tables(tables))
            print()
    finally:
        experiments_common.set_observer(None)
        if args.stream:
            experiments_common.set_progress(None)
    fleet = _fleet_summary(runner.executor_stats())
    if fleet is not None:
        print(f"fleet: {fleet}", file=sys.stderr)
    if failed:
        print(f"experiment(s) failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_list_attacks(_args: argparse.Namespace) -> int:
    for name in available_attacks():
        print(name)
    return 0


def _cmd_list_experiments(_args: argparse.Namespace) -> int:
    for exp_id, experiment in EXPERIMENTS.items():
        print(f"{exp_id}: {experiment.claim}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Srikanth-Toueg optimal clock synchronization: bounds, simulations and experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bounds = sub.add_parser("bounds", help="print the analytic guarantees for a parameterisation")
    _add_param_arguments(bounds)
    bounds.add_argument("--algorithm", choices=["auth", "echo"], default="auth")
    bounds.set_defaults(func=_cmd_bounds)

    run = sub.add_parser("run", help="run one scenario and print the measured guarantees")
    _add_param_arguments(run)
    _add_runner_arguments(run)
    _add_scenario_arguments(run)
    run.add_argument("--json", action="store_true", help="emit the result as JSON")
    run.add_argument("--include-trace", action="store_true", dest="include_trace",
                     help="include the full trace in the JSON output")
    run.add_argument(
        "--trace-out",
        default=None,
        dest="trace_out",
        help="enable span tracing for this run and write a Chrome-trace-viewer timeline "
        "(chrome://tracing / Perfetto) to this path; never changes measured values",
    )
    run.add_argument(
        "--events-out",
        default=None,
        dest="events_out",
        help="enable span tracing for this run and write every span as one JSON line to this path",
    )
    run.set_defaults(func=_cmd_run)

    kernel = sub.add_parser(
        "kernel",
        help="explain which simulation kernel serves a scenario (and why)",
    )
    _add_param_arguments(kernel)
    kernel.add_argument("--algorithm", choices=list(ALL_ALGORITHMS), default="auth")
    kernel.add_argument("--attack", default="eager", help="adversary strategy (see list-attacks); default eager")
    kernel.add_argument("--actual-faults", type=int, default=None, dest="actual_faults",
                        help="how many processes actually misbehave (default: f)")
    kernel.add_argument("--rounds", type=int, default=10)
    kernel.add_argument("--clock-mode", choices=list(CLOCK_MODES), default="extreme", dest="clock_mode")
    kernel.add_argument("--delay-mode", choices=list(DELAY_MODES), default="targeted", dest="delay_mode")
    kernel.add_argument(
        "--kernel",
        choices=["auto", "event", "vector"],
        default=None,
        help="selection to explain (default: REPRO_KERNEL or auto)",
    )
    kernel.add_argument("--seed", type=int, default=0)
    kernel.add_argument(
        "--replications",
        type=_positive_int,
        default=1,
        help="replications for --run (each is one provenance lane)",
    )
    kernel.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="shard tasks for --run (default: one per core)",
    )
    kernel.add_argument(
        "--run",
        action="store_true",
        help="also run the scenario (metrics level) and print the per-lane provenance breakdown",
    )
    _add_runner_arguments(kernel)
    kernel.set_defaults(func=_cmd_kernel)

    stats = sub.add_parser(
        "stats",
        help="run one scenario with the metrics registry on and dump it Prometheus-style",
    )
    _add_param_arguments(stats)
    _add_runner_arguments(stats)
    _add_scenario_arguments(stats)
    stats.set_defaults(func=_cmd_stats)

    experiment = sub.add_parser("experiment", help="regenerate one (or all) reproduced tables E1..E15")
    experiment.add_argument("id", help="experiment id (E1..E15) or 'all'")
    experiment.add_argument("--quick", action="store_true", help="smaller grids (used by the test suite)")
    experiment.add_argument(
        "--stream",
        action="store_true",
        help="report grid points on stderr as they complete (streamed sweeps only)",
    )
    _add_runner_arguments(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    sub.add_parser("list-attacks", help="list registered Byzantine strategies").set_defaults(func=_cmd_list_attacks)
    sub.add_parser("list-experiments", help="list reproduced experiments").set_defaults(func=_cmd_list_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SSHConfigError as exc:
        # Misconfiguration, not a failed experiment: one clear sentence and
        # the usage-error exit code, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
