"""Unified telemetry: span tracing, mergeable metrics, exporters.

This package is the one observability surface for the whole stack --
sweep runner, executor fleet, shard fold, vector/event kernels, result
cache.  It is **off by default**: the module-level :func:`span`,
:func:`event`, :func:`inc`, :func:`gauge_max` and :func:`observe` helpers
are no-ops that allocate nothing until :func:`enable` installs a
:class:`~repro.obs.trace.Tracer` and/or a
:class:`~repro.obs.metrics.MetricsRegistry`.  Telemetry never reads
simulated time and never consumes a seeded RNG stream, so a traced run is
float-identical to an untraced run (pinned in tests, gated in
``scripts/bench.py``).

Typical use::

    from repro import obs

    obs.enable()
    result = run_scenario(scenario)
    obs.tracer().export_payload()   # spans for the exporters
    obs.registry().snapshot()       # metrics for `repro stats`
    obs.disable()

Instrumented call sites follow two rules: attach attributes via
``sp.set(key, value)`` (a no-op on the shared null span) rather than
computing kwargs, and guard any dict-building ``event(...)`` detail behind
:func:`enabled` so the disabled path performs no allocation at all.
"""

from __future__ import annotations

from typing import Optional

from .metrics import HISTOGRAM_BOUNDS, MetricsRegistry, empty_snapshot, merge_snapshots
from .trace import NULL_SPAN, SPAN_STATUSES, Span, Tracer

__all__ = [
    "HISTOGRAM_BOUNDS",
    "MetricsRegistry",
    "NULL_SPAN",
    "SPAN_STATUSES",
    "Span",
    "Tracer",
    "empty_snapshot",
    "merge_snapshots",
    "enable",
    "disable",
    "enabled",
    "metrics_enabled",
    "tracer",
    "registry",
    "install",
    "span",
    "event",
    "inc",
    "gauge_max",
    "observe",
    "wire_context",
]

_tracer: Optional[Tracer] = None
_registry: Optional[MetricsRegistry] = None


def enable(trace: bool = True, metrics: bool = True) -> None:
    """Install a fresh tracer and/or metrics registry for this process."""
    global _tracer, _registry
    if trace:
        _tracer = Tracer()
    if metrics:
        _registry = MetricsRegistry()


def disable() -> None:
    """Uninstall telemetry; the module helpers revert to allocation-free no-ops."""
    global _tracer, _registry
    _tracer = None
    _registry = None


def install(tracer: Optional[Tracer], registry: Optional[MetricsRegistry]) -> tuple:
    """Swap in specific instances (worker-side per-task); returns the previous pair."""
    global _tracer, _registry
    previous = (_tracer, _registry)
    _tracer = tracer
    _registry = registry
    return previous


def enabled() -> bool:
    """True when span tracing is on (guard for event-detail allocation)."""
    return _tracer is not None


def metrics_enabled() -> bool:
    """True when the metrics registry is on."""
    return _registry is not None


def tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None``."""
    return _tracer


def registry() -> Optional[MetricsRegistry]:
    """The installed metrics registry, or ``None``."""
    return _registry


def span(name: str, parent: Optional[str] = None):
    """Start a span (ambient parent by default); the shared null span when off."""
    if _tracer is None:
        return NULL_SPAN
    return _tracer.begin(name, parent=parent)


def event(name: str, detail=None) -> None:
    """Attach a point event to the ambient span, if tracing is on."""
    if _tracer is None:
        return
    stack = getattr(_tracer._tls, "stack", None)
    if stack:
        stack[-1].event(name, detail)


def inc(name: str, value: int = 1) -> None:
    """Increment a counter, if the registry is on."""
    if _registry is not None:
        _registry.inc(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise a high-water-mark gauge, if the registry is on."""
    if _registry is not None:
        _registry.gauge_max(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation, if the registry is on."""
    if _registry is not None:
        _registry.observe(name, value)


def wire_context(parent: Optional[str] = None) -> Optional[dict]:
    """The trace context shipped inside executor task frames, or ``None`` when off.

    ``None`` keeps task frames byte-identical to the untraced wire format;
    workers only collect telemetry when a context rides the frame.
    """
    if _tracer is None and _registry is None:
        return None
    if parent is None and _tracer is not None:
        parent = _tracer.current_id()
    return {
        "trace": _tracer is not None,
        "parent": parent,
        "metrics": _registry is not None,
    }
