"""Span tracing: explicit start/stop intervals on the real execution seams.

A :class:`Span` is one named interval -- ``time.monotonic()`` start and end,
a parent span id, key/value attributes and timestamped point events -- and a
:class:`Tracer` is one process's collection of them plus the thread-local
"current span" stack that gives new spans their parent ambiently.  The design
constraints (see ``docs/observability.md``) are non-negotiable:

* **Off by default, near-zero overhead off.**  Nothing in this module runs
  unless a tracer is installed (:func:`repro.obs.enable`).  The disabled path
  through :func:`repro.obs.span` returns the shared :data:`NULL_SPAN`
  singleton -- no ``Span`` object, no dict, no list is allocated.
* **Never touches simulated time or seeded randomness.**  Spans read
  ``time.monotonic()`` (and ``time.time()`` once, for cross-process
  rebasing); span identities come from ``uuid4`` (``os.urandom``-backed),
  never from any ``random.Random`` stream a simulation seeds.  A traced run
  is float-identical to an untraced run by construction.
* **Cross-process by value.**  A worker's spans ship home as plain dicts
  (:meth:`Tracer.export_payload`) inside result frames and are re-based onto
  the parent's clock by :meth:`Tracer.ingest`, so one sweep reconstructs one
  coherent timeline spanning parent, pool, subprocess and ssh workers.
  Monotonic clocks are not comparable across processes; each tracer records
  ``clock_offset = time.time() - time.monotonic()`` at birth and ingest
  shifts foreign timestamps by the offset difference.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from typing import Optional

#: Span statuses with defined meaning: ``ok`` (finished cleanly), ``error``
#: (the traced block raised), ``lost`` (the worker executing the span died
#: before reporting), ``open`` (never finished; closed at export time).
SPAN_STATUSES = ("ok", "error", "lost", "open")


class Span:
    """One named interval with a parent, attributes and point events.

    Entering a span as a context manager pushes it onto its tracer's
    thread-local stack (so nested spans parent to it) and exiting pops and
    finishes it -- status ``error`` when the block raised, ``ok`` otherwise.
    Spans for asynchronous work (submit now, complete on another thread) are
    created with :meth:`Tracer.begin` and closed manually with
    :meth:`finish`; they never touch the ambient stack.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "status", "attrs", "events", "_tracer")

    def __init__(self, tracer: "Tracer", span_id: str, parent_id: Optional[str], name: str, start: float) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.status: Optional[str] = None
        #: Allocated lazily on first :meth:`set` / :meth:`event`; most spans
        #: carry a couple of attributes or none at all.
        self.attrs: Optional[dict] = None
        self.events: Optional[list] = None
        self._tracer = tracer

    def set(self, key: str, value) -> None:
        """Attach one key/value attribute (last write wins)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def event(self, name: str, detail=None) -> None:
        """Record a timestamped point event inside this span."""
        if self.events is None:
            self.events = []
        self.events.append((time.monotonic(), name, detail))

    def finish(self, status: str = "ok") -> None:
        """Close the span; idempotent (the first finish wins)."""
        if self.end is None:
            self.end = time.monotonic()
            self.status = status

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        self._tracer._pop(self)
        self.finish("error" if exc_type is not None else "ok")
        return False

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, status={self.status})"


class _NullSpan:
    """The do-nothing span returned whenever tracing is disabled.

    One shared instance; every method is a no-op and the context-manager
    protocol returns ``self``, so instrumented code reads identically on the
    enabled and disabled paths while the disabled path allocates nothing.
    """

    __slots__ = ()
    span_id = None
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, key: str, value) -> None:
        """No-op."""

    def event(self, name: str, detail=None) -> None:
        """No-op."""

    def finish(self, status: str = "ok") -> None:
        """No-op."""


#: The shared disabled-path span (see :class:`_NullSpan`).
NULL_SPAN = _NullSpan()


class _Activation:
    """Context manager that makes ``span`` the ambient parent on this thread.

    Unlike entering the span itself, leaving an activation never finishes the
    span -- it is the tool for long-lived spans (a sweep, a worker's task
    root) that must parent work on the current thread while being closed
    elsewhere.
    """

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self):
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *_exc) -> bool:
        self._tracer._pop(self._span)
        return False


class Tracer:
    """One process's span collection and ambient-context bookkeeping.

    Span ids are ``"<origin>:<n>"`` where ``origin`` is eight hex characters
    drawn from ``uuid4`` at construction -- collision-free across processes
    without consuming any seeded RNG stream -- and ``n`` is a per-tracer
    counter.  All mutation is lock-protected: the executor's reader and
    fleet threads create and finish spans concurrently with the main thread.
    """

    def __init__(self) -> None:
        self.origin = uuid.uuid4().hex[:8]
        #: Wall-clock minus monotonic at birth: the rebasing anchor that lets
        #: :meth:`ingest` shift a foreign process's monotonic timestamps onto
        #: this tracer's monotonic axis.
        self.clock_offset = time.time() - time.monotonic()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._counter = itertools.count()
        self._tls = threading.local()

    # -- ambient context ---------------------------------------------------

    def _push(self, span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span)

    def _pop(self, span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # pragma: no cover - unbalanced exit
            stack.remove(span)

    def current_id(self) -> Optional[str]:
        """The ambient parent span id on this thread, or ``None``."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1].span_id if stack else None

    def activate(self, span) -> _Activation:
        """Make ``span`` the ambient parent on this thread without owning its end."""
        return _Activation(self, span)

    # -- span creation -----------------------------------------------------

    def begin(self, name: str, parent: Optional[str] = None) -> Span:
        """Start a span (parent defaults to the thread's ambient span)."""
        if parent is None:
            parent = self.current_id()
        span = Span(self, f"{self.origin}:{next(self._counter)}", parent, name, time.monotonic())
        with self._lock:
            self._spans.append(span)
        return span

    def span(self, name: str, parent: Optional[str] = None) -> Span:
        """Alias of :meth:`begin` for ``with tracer.span(...)`` call sites."""
        return self.begin(name, parent=parent)

    # -- collection and transport ------------------------------------------

    def all_spans(self) -> list[Span]:
        """A snapshot of every span this tracer has recorded (local + ingested)."""
        with self._lock:
            return list(self._spans)

    def close_open(self, status: str = "open") -> int:
        """Finish every still-open span with ``status``; returns how many."""
        closed = 0
        for span in self.all_spans():
            if span.end is None:
                span.finish(status)
                closed += 1
        return closed

    def span_dict(self, span: Span) -> dict:
        """One span as a plain JSON-able dict (the wire and JSONL shape)."""
        return {
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "status": span.status,
            "attrs": dict(span.attrs) if span.attrs else None,
            "events": [list(event) for event in span.events] if span.events else None,
        }

    def export_payload(self) -> dict:
        """The cross-process shape: every span plus this tracer's clock anchor.

        Open spans are closed with status ``open`` first (a worker exports
        after its task root finished, so anything still open is a leak worth
        seeing, not corrupting).
        """
        self.close_open()
        return {
            "clock_offset": self.clock_offset,
            "spans": [self.span_dict(span) for span in self.all_spans()],
        }

    def ingest(self, payload: dict) -> int:
        """Absorb a foreign tracer's :meth:`export_payload`, rebasing its clock.

        The foreign monotonic timestamps are shifted by the difference of the
        two tracers' ``clock_offset`` anchors, so ingested spans land on this
        tracer's monotonic axis and one export renders parent and worker
        spans on a single coherent timeline.  Returns the number of spans
        ingested; foreign span ids keep their origin prefix, so parent links
        into this process's spans (shipped out via the task context) resolve
        unchanged.
        """
        shift = payload["clock_offset"] - self.clock_offset
        ingested = []
        for entry in payload["spans"]:
            span = Span(self, entry["id"], entry["parent"], entry["name"], entry["start"] + shift)
            span.end = None if entry["end"] is None else entry["end"] + shift
            span.status = entry["status"]
            if entry.get("attrs"):
                span.attrs = dict(entry["attrs"])
            if entry.get("events"):
                span.events = [(t + shift, name, detail) for t, name, detail in entry["events"]]
            ingested.append(span)
        with self._lock:
            self._spans.extend(ingested)
        return len(ingested)
