"""Exporters: Chrome trace viewer JSON, JSONL event stream, Prometheus text.

All exporters consume the plain-dict shapes defined next door --
:meth:`~repro.obs.trace.Tracer.span_dict` entries and
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts -- so they work
equally on live tracers and on payloads shipped across process boundaries.

Schemas (also documented in ``docs/observability.md``):

* **Chrome trace** (``repro run --trace-out``): the Trace Event Format's
  JSON object form, ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.
  Each span becomes one ``ph="X"`` complete event with microsecond
  ``ts``/``dur``; the ``pid`` is a small per-origin index (one lane per
  process in the viewer), ``tid`` is 1, and ``args`` carries the span id,
  parent id, status, attributes and point events so nothing is lost in the
  visual form.
* **JSONL** (``repro run --events-out``): one span dict per line, the
  future ``repro serve`` wire format -- append-only, stream-parsable.
* **Prometheus text** (``repro stats``): ``repro_``-prefixed names with
  dots mangled to underscores, ``# TYPE`` comments, and the standard
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` expansion for histograms.
"""

from __future__ import annotations

import json

from .metrics import HISTOGRAM_BOUNDS

#: Seconds of slack allowed when checking that a child span nests inside its
#: parent's interval.  Cross-process spans are rebased through wall-clock
#: anchors (``time.time()``) sampled at different instants, so sub-second
#: disagreement is expected noise, not corruption.
NESTING_EPSILON_S = 0.5


def _span_sort_key(entry: dict) -> tuple:
    return (entry["start"], entry["id"])


def chrome_trace_events(spans: list) -> list:
    """Span dicts -> Chrome Trace Event Format ``ph="X"`` complete events."""
    origins: dict = {}
    events = []
    for entry in sorted(spans, key=_span_sort_key):
        origin = entry["id"].split(":", 1)[0]
        pid = origins.setdefault(origin, len(origins) + 1)
        end = entry["end"] if entry["end"] is not None else entry["start"]
        args = {
            "id": entry["id"],
            "parent": entry["parent"],
            "status": entry["status"],
        }
        if entry.get("attrs"):
            args["attrs"] = entry["attrs"]
        if entry.get("events"):
            args["events"] = [
                {"ts_us": round(t * 1e6), "name": name, "detail": detail} for t, name, detail in entry["events"]
            ]
        events.append(
            {
                "name": entry["name"],
                "ph": "X",
                "ts": round(entry["start"] * 1e6),
                "dur": round((end - entry["start"]) * 1e6),
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    return events


def write_chrome_trace(path, spans: list) -> int:
    """Write ``spans`` (span dicts) to ``path`` as a Chrome trace; returns the span count."""
    payload = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return len(payload["traceEvents"])


def write_jsonl(path, spans: list) -> int:
    """Write ``spans`` (span dicts) to ``path`` as one JSON object per line."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for entry in sorted(spans, key=_span_sort_key):
            handle.write(json.dumps(entry) + "\n")
            count += 1
    return count


def validate_trace_file(path) -> dict:
    """Check a Chrome trace written by :func:`write_chrome_trace` is coherent.

    Raises ``ValueError`` on malformed JSON, duplicate span ids, parent
    references that do not resolve within the file, or a child interval
    that escapes its parent's by more than :data:`NESTING_EPSILON_S`.
    Returns a summary dict: span count, distinct origins (id prefixes,
    i.e. participating processes), and how many spans have parents.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace file {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(f"trace file {path} has no traceEvents array")
    intervals: dict = {}
    parents: dict = {}
    for event in payload["traceEvents"]:
        span_id = event["args"]["id"]
        if span_id in intervals:
            raise ValueError(f"duplicate span id {span_id}")
        intervals[span_id] = (event["ts"], event["ts"] + event["dur"])
        parents[span_id] = event["args"]["parent"]
    epsilon_us = NESTING_EPSILON_S * 1e6
    linked = 0
    for span_id, parent_id in parents.items():
        if parent_id is None:
            continue
        if parent_id not in intervals:
            raise ValueError(f"span {span_id} references unknown parent {parent_id}")
        linked += 1
        child_start, child_end = intervals[span_id]
        parent_start, parent_end = intervals[parent_id]
        if child_start < parent_start - epsilon_us or child_end > parent_end + epsilon_us:
            raise ValueError(
                f"span {span_id} [{child_start}, {child_end}]us escapes parent "
                f"{parent_id} [{parent_start}, {parent_end}]us"
            )
    origins = {span_id.split(":", 1)[0] for span_id in intervals}
    return {"spans": len(intervals), "origins": len(origins), "linked": linked}


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def render_prometheus(snapshot: dict) -> str:
    """Render a metrics snapshot as Prometheus text exposition format."""
    lines = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(HISTOGRAM_BOUNDS, hist["buckets"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += hist["buckets"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {hist['sum']:g}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
