"""The mergeable metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` per process (or per worker task); snapshots are
plain dicts that merge through the same kind of exact associative algebra as
:class:`~repro.sim.recorder.OnlineMetricsSummary` -- worker-side registries
fold into the parent's exactly like shard summaries do:

* **counters** add,
* **gauges** combine by ``max`` (they record high-water marks),
* **histograms** share the fixed bucket bounds :data:`HISTOGRAM_BOUNDS`, so
  merging is element-wise bucket addition plus exact ``count``/``sum`` sums
  and ``min``/``max`` combines.

Every combining operation is associative and commutative with
:func:`empty_snapshot` as the identity, so any grouping of the same worker
snapshots -- per task, per worker, or one flat fold -- produces the same
parent registry (``tests/test_obs_metrics.py`` pins this the way
``tests/test_shard_merge.py`` pins the summary algebra).

Naming convention: dotted lowercase ``<subsystem>.<quantity>`` names
(``cache.hits``, ``fleet.tasks``, ``kernel.vector_lanes``,
``fleet.queue_wait_s``); timing histograms end in ``_s`` (seconds).  The
registry also absorbs the pre-existing scattered counters --
:class:`~repro.runner.cache.CacheStats`, the executor scheduler's stats
dict, :class:`~repro.workloads.scenarios.KernelProvenance` lane counts --
via the ``absorb_*`` helpers, making it the one queryable surface
(``repro stats`` renders it Prometheus-style).
"""

from __future__ import annotations

import threading
from typing import Optional

#: Fixed exponential histogram bucket upper bounds (seconds): 0.5 ms doubling
#: to ~262 s.  Fixed and shared so histograms merge by bucket-count addition
#: with no re-binning; observations above the last bound land in the
#: overflow bucket (``+Inf``).
HISTOGRAM_BOUNDS = tuple(0.0005 * (2.0**i) for i in range(20))


def empty_snapshot() -> dict:
    """The merge identity: a snapshot with no metrics at all."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def _merge_histogram(into: dict, part: dict) -> None:
    into["buckets"] = [a + b for a, b in zip(into["buckets"], part["buckets"])]
    into["count"] += part["count"]
    into["sum"] += part["sum"]
    into["min"] = part["min"] if into["min"] is None else min(into["min"], part["min"])
    into["max"] = part["max"] if into["max"] is None else max(into["max"], part["max"])


def merge_snapshots(*snapshots: dict) -> dict:
    """Pure fold of registry snapshots (associative, commutative, exact).

    Returns a new snapshot; the inputs are not mutated.  Counter values add,
    gauges combine by ``max``, histograms add bucket-wise -- all operations
    on exact ints (or float sums whose addition order is fixed by the
    argument order, which every grouping of the same parts preserves because
    bucket counts and integer sums dominate the payload).
    """
    merged = empty_snapshot()
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = max(merged["gauges"].get(name, value), value)
        for name, part in snapshot.get("histograms", {}).items():
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = {
                    "buckets": list(part["buckets"]),
                    "count": part["count"],
                    "sum": part["sum"],
                    "min": part["min"],
                    "max": part["max"],
                }
            else:
                _merge_histogram(into, part)
    return merged


class MetricsRegistry:
    """A thread-safe bag of counters, gauges and fixed-bucket histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the high-water-mark gauge ``name`` to at least ``value``."""
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = {
                    "buckets": [0] * (len(HISTOGRAM_BOUNDS) + 1),
                    "count": 0,
                    "sum": 0.0,
                    "min": None,
                    "max": None,
                }
            index = len(HISTOGRAM_BOUNDS)
            for i, bound in enumerate(HISTOGRAM_BOUNDS):
                if value <= bound:
                    index = i
                    break
            hist["buckets"][index] += 1
            hist["count"] += 1
            hist["sum"] += value
            hist["min"] = value if hist["min"] is None else min(hist["min"], value)
            hist["max"] = value if hist["max"] is None else max(hist["max"], value)

    # -- snapshots and merging ---------------------------------------------

    def snapshot(self) -> dict:
        """A deep, JSON-able copy of the registry's current state."""
        with self._lock:
            return merge_snapshots(
                {
                    "counters": self._counters,
                    "gauges": self._gauges,
                    "histograms": self._histograms,
                }
            )

    def absorb(self, snapshot: dict) -> None:
        """Merge a snapshot (typically a worker's) into this registry."""
        merged = merge_snapshots(self.snapshot(), snapshot)
        with self._lock:
            self._counters = merged["counters"]
            self._gauges = merged["gauges"]
            self._histograms = merged["histograms"]

    # -- absorption of the pre-existing scattered stats ----------------------

    def absorb_cache_stats(self, stats) -> None:
        """Fold a :class:`~repro.runner.cache.CacheStats` into ``cache.*`` counters."""
        for key, value in stats.as_dict().items():
            self.inc(f"cache.{key}", value)

    def absorb_fleet_stats(self, stats: dict) -> None:
        """Fold an executor's scheduler stats dict into ``fleet.*`` counters."""
        for key, value in stats.items():
            self.inc(f"fleet.{key}", value)

    def absorb_kernel_provenance(self, provenance, prefix: str = "kernel") -> None:
        """Fold a :class:`~repro.workloads.scenarios.KernelProvenance` into counters.

        ``prefix`` namespaces the counters (``kernel.*`` for live per-lane
        accounting, ``provenance.*`` when the CLI folds a finished result's
        record) so live worker-merged counts and post-hoc absorption never
        double-count each other.
        """
        self.inc(f"{prefix}.vector_lanes", provenance.vector_lanes)
        self.inc(f"{prefix}.fallback_lanes", provenance.fallback_lanes)
        self.inc(f"{prefix}.ineligible_lanes", provenance.ineligible_lanes)

    # -- introspection -----------------------------------------------------

    def counter(self, name: str) -> Optional[int]:
        """The counter's current value, or ``None`` if it never incremented."""
        with self._lock:
            return self._counters.get(name)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
            )
