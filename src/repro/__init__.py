"""repro -- a reproduction of "Optimal Clock Synchronization" (Srikanth & Toueg, PODC 1985).

The package provides:

* :mod:`repro.sim` -- a discrete-event simulator with adversarial message
  delays and drifting hardware clocks,
* :mod:`repro.crypto` -- simulated digital signatures / PKI,
* :mod:`repro.broadcast` -- the authenticated and echo broadcast primitives,
* :mod:`repro.core` -- the Srikanth-Toueg synchronizers (authenticated,
  ``n > 2f``; non-authenticated, ``n > 3f``), start-up, join, and the analytic
  precision/accuracy bounds,
* :mod:`repro.faults` -- Byzantine behaviours and adversary strategies,
* :mod:`repro.baselines` -- Lundelius-Welch, Lamport-Melliar-Smith,
  sync-to-max and free-running baselines,
* :mod:`repro.analysis` -- exact skew/accuracy measurement and guarantee
  verification,
* :mod:`repro.workloads` / :mod:`repro.experiments` -- scenarios, sweeps, and
  the runners behind every reproduced table.

Quickstart
----------
>>> from repro import params_for, Scenario, run_scenario
>>> params = params_for(n=7, authenticated=True, rho=1e-4, tdel=0.01, period=1.0)
>>> result = run_scenario(Scenario(params=params, algorithm="auth", attack="eager", rounds=10))
>>> result.precision <= result.guarantees.by_name("precision").bound
True
"""

from .analysis import (
    GuaranteeReport,
    Table,
    accuracy_summary,
    max_skew,
    steady_state_skew,
    verify_guarantees,
)
from .core import (
    AUTH,
    ECHO,
    AuthSyncProcess,
    EchoSyncProcess,
    LogicalClock,
    ParameterError,
    SyncParams,
    TheoreticalBounds,
    default_alpha,
    params_for,
    precision_bound,
    theoretical_bounds,
)
from .crypto import KeyStore, Signature, sign
from .sim import (
    FixedRateClock,
    HardwareClock,
    PiecewiseLinearClock,
    Simulation,
    Trace,
    drifting_clock,
)
from .sim.kernel import KERNELS, resolve_kernel
from .runner import (
    Executor,
    LocalPoolExecutor,
    ResultCache,
    ShardedRunner,
    SSHExecutor,
    SubprocessWorkerExecutor,
    SweepRunner,
)
from .sim.recorder import OnlineMetricsSummary, merge_summaries
from .workloads import Scenario, ScenarioResult, build_cluster, run_scenario

__version__ = "1.7.0"

__all__ = [
    "__version__",
    # parameters and bounds
    "SyncParams",
    "params_for",
    "default_alpha",
    "TheoreticalBounds",
    "theoretical_bounds",
    "precision_bound",
    "ParameterError",
    "AUTH",
    "ECHO",
    # algorithms
    "AuthSyncProcess",
    "EchoSyncProcess",
    "LogicalClock",
    # substrate
    "Simulation",
    "Trace",
    "HardwareClock",
    "FixedRateClock",
    "PiecewiseLinearClock",
    "drifting_clock",
    "KERNELS",
    "resolve_kernel",
    "KeyStore",
    "Signature",
    "sign",
    # sweep execution
    "SweepRunner",
    "ShardedRunner",
    "Executor",
    "LocalPoolExecutor",
    "SubprocessWorkerExecutor",
    "SSHExecutor",
    "ResultCache",
    "OnlineMetricsSummary",
    "merge_summaries",
    # scenarios and analysis
    "Scenario",
    "ScenarioResult",
    "build_cluster",
    "run_scenario",
    "max_skew",
    "steady_state_skew",
    "accuracy_summary",
    "verify_guarantees",
    "GuaranteeReport",
    "Table",
]
