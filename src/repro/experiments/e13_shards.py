"""E13 -- Shard-plan invariance of the replicated-scenario backend.

This experiment is about the reproduction system itself rather than a paper
theorem: the paper's claims are per-configuration statistics over many
independent executions, and the sharded backend computes them by splitting
the replication axis across worker processes and folding the per-shard
summaries through the exact merge algebra
(:meth:`repro.sim.recorder.OnlineMetricsSummary.merge`).

Reproduced property: **the shard plan never changes a measured value** --
every statistic of a replicated configuration (worst-case skew, acceptance
spread, window-rate extremes, message totals, completed round, effective
horizon) is float-for-float identical across shard plans, while the
provenance (``shard_count``, per-shard horizons) records how the work was
split.  A second table shows what the replication axis buys: worst-case
statistics tighten monotonically into the configuration's true worst case as
replications grow, which no single seeded run measures.
"""

from __future__ import annotations

from ..analysis.report import Table
from .common import adversarial_scenario, default_params, replicated, results_exactly_equal, run


def run_shard_invariance(quick: bool = True) -> Table:
    replications = 4 if quick else 8
    rounds = 6 if quick else 12
    base = adversarial_scenario(
        default_params(7, authenticated=True),
        "auth",
        attack="skew_max",
        rounds=rounds,
        seed=1300,
    )
    shard_plans = [1, 2, 4]
    results = [
        run(replicated(base, replications, shards=shards), trace_level="metrics")
        for shards in shard_plans
    ]
    reference = results[0]

    table = Table(
        title=f"E13a: shard-plan invariance (auth, n=7, skew_max, {replications} replications)",
        headers=[
            "shards",
            "worst skew",
            "spread",
            "completed",
            "messages",
            "eff. horizon",
            "== 1 shard",
        ],
    )
    for shards, result in zip(shard_plans, results):
        exact = results_exactly_equal(result, reference)
        table.add_row(
            result.shard_count,
            result.precision,
            result.acceptance_spread,
            result.completed_round,
            result.total_messages,
            result.effective_horizon,
            exact,
        )
    table.add_note(
        "Every measured value must be float-identical across shard plans; "
        "only the provenance (shard_count, shard_horizons) differs."
    )
    return table


def run_replication_scaling(quick: bool = True) -> Table:
    counts = [1, 2, 4] if quick else [1, 2, 4, 8, 16]
    rounds = 6 if quick else 12
    base = adversarial_scenario(
        default_params(7, authenticated=True),
        "auth",
        attack="skew_max",
        rounds=rounds,
        seed=1300,
    )
    table = Table(
        title="E13b: worst-case statistics over the replication axis (auth, n=7, skew_max)",
        headers=["replications", "worst skew", "worst spread", "slowest win rate", "fastest win rate", "guarantees"],
    )
    previous_skew = None
    for count in counts:
        scenario = base if count == 1 else replicated(base, count)
        result = run(scenario, trace_level="metrics")
        accuracy = result.accuracy
        table.add_row(
            count,
            result.precision,
            result.acceptance_spread,
            accuracy.slowest_window_rate if accuracy is not None else None,
            accuracy.fastest_window_rate if accuracy is not None else None,
            "hold" if result.guarantees_hold else "VIOLATED",
        )
        if previous_skew is not None:
            assert result.precision >= previous_skew, (
                "worst-case skew over a superset of replications cannot shrink"
            )
        previous_skew = result.precision
    table.add_note(
        "Replication r uses seed base+r, so each row's replications are a "
        "superset of the previous row's: worst-case statistics are monotone."
    )
    return table


def run_experiment(quick: bool = True) -> list[Table]:
    return [run_shard_invariance(quick), run_replication_scaling(quick)]
