"""E11 -- Ablations of the design choices.

Two knobs called out in DESIGN.md:

* the adjustment constant ``alpha`` (the paper's choice is ``(1+rho)*tdel``):
  smaller values make benign adjustments negative (clocks set back), larger
  values inflate the accuracy excess;
* the monotonic variant (suppress backward corrections): precision is
  preserved in practice while the clock never runs backwards, at the cost of
  the worst-case analysis.
"""

from __future__ import annotations

from ..analysis import metrics
from ..analysis.report import Table
from ..core.bounds import AUTH, long_run_rate_bounds, precision_bound
from .common import adversarial_scenario, default_params, run_batch


def run_alpha_sweep(quick: bool = True) -> Table:
    multipliers = [1.0, 2.0] if quick else [1.0, 1.5, 2.0, 4.0]
    rounds = 8 if quick else 20
    base = default_params(7, authenticated=True)
    scenarios = [
        adversarial_scenario(
            base.with_(alpha=multiplier * (1.0 + base.rho) * base.tdel),
            "auth",
            attack="eager",
            rounds=rounds,
            seed=int(multiplier * 10),
        )
        for multiplier in multipliers
    ]
    results = run_batch(scenarios, check_guarantees=False)

    table = Table(
        title="E11a: effect of the adjustment constant alpha (auth, n=7)",
        headers=["alpha / ((1+rho)*tdel)", "measured skew", "bound Dmax", "max rate bound", "max backward adj"],
    )
    for multiplier, result in zip(multipliers, results):
        params = result.params
        _, rate_max = long_run_rate_bounds(params, AUTH)
        table.add_row(
            multiplier,
            result.precision,
            precision_bound(params, AUTH),
            rate_max,
            metrics.max_backward_adjustment(result.trace),
        )
    return table


def run_monotonic_ablation(quick: bool = True) -> Table:
    rounds = 8 if quick else 20
    cases = [(algorithm, monotonic) for algorithm in ["auth", "echo"] for monotonic in [False, True]]
    scenarios = [
        adversarial_scenario(
            default_params(7, authenticated=(algorithm == "auth")),
            algorithm,
            attack="skew_max",
            rounds=rounds,
            seed=41,
            monotonic=monotonic,
        )
        for algorithm, monotonic in cases
    ]
    results = run_batch(scenarios, check_guarantees=False)

    table = Table(
        title="E11b: monotonic-clock variant (backward corrections suppressed)",
        headers=["algorithm", "monotonic", "measured skew", "max backward adj", "completed round"],
    )
    for (algorithm, monotonic), result in zip(cases, results):
        table.add_row(
            algorithm,
            monotonic,
            result.precision,
            metrics.max_backward_adjustment(result.trace),
            result.completed_round,
        )
    return table


def run_experiment(quick: bool = True) -> list[Table]:
    return [run_alpha_sweep(quick), run_monotonic_ablation(quick)]
