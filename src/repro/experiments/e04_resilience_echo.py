"""E4 -- Resilience threshold of the non-authenticated (echo) algorithm.

Claim reproduced: without signatures the algorithm tolerates any ``f < n/3``
faults, and the bound is tight -- ``ceil(n/3)`` colluders can start echo
avalanches without any honest init and break the guarantees.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import ECHO, precision_bound
from .common import adversarial_scenario, default_params, stream_rows


def run_experiment(quick: bool = True) -> Table:
    sizes = [4, 7] if quick else [4, 7, 10, 13]
    rounds = 6 if quick else 15

    scenarios, checks = [], []
    for n in sizes:
        params = default_params(n, authenticated=False)
        scenarios.append(adversarial_scenario(params, "echo", attack="skew_max", rounds=rounds, seed=n))
        checks.append(None)
        scenarios.append(
            adversarial_scenario(
                params,
                "echo",
                attack="echo_cabal",
                rounds=rounds,
                seed=n + 100,
                actual_faults=params.f + 1,
            )
        )
        checks.append(False)
    def row(index, result):
        scenario = scenarios[index]
        bound = precision_bound(scenario.params, ECHO)
        return (
            scenario.params.n,
            scenario.params.f,
            scenario.actual_faults,
            scenario.attack,
            result.precision,
            bound,
            result.precision <= bound + 1e-9,
        )

    table = Table(
        title="E4: echo (non-authenticated) algorithm at and above the resilience threshold",
        headers=["n", "assumed f", "actual faults", "attack", "measured skew", "bound Dmax", "within bound"],
    )
    table.add_rows(stream_rows(scenarios, row, check_guarantees=checks, trace_level="metrics"))
    table.add_note("the last row of each pair runs the algorithm out of spec and is expected to violate the bound")
    return table
