"""E4 -- Resilience threshold of the non-authenticated (echo) algorithm.

Claim reproduced: without signatures the algorithm tolerates any ``f < n/3``
faults, and the bound is tight -- ``ceil(n/3)`` colluders can start echo
avalanches without any honest init and break the guarantees.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import ECHO, precision_bound
from .common import adversarial_scenario, default_params, run


def run_experiment(quick: bool = True) -> Table:
    sizes = [4, 7] if quick else [4, 7, 10, 13]
    rounds = 6 if quick else 15
    table = Table(
        title="E4: echo (non-authenticated) algorithm at and above the resilience threshold",
        headers=["n", "assumed f", "actual faults", "attack", "measured skew", "bound Dmax", "within bound"],
    )
    for n in sizes:
        params = default_params(n, authenticated=False)
        bound = precision_bound(params, ECHO)

        in_spec = adversarial_scenario(params, "echo", attack="skew_max", rounds=rounds, seed=n)
        result = run(in_spec)
        table.add_row(n, params.f, params.f, "skew_max", result.precision, bound, result.precision <= bound + 1e-9)

        over = adversarial_scenario(
            params,
            "echo",
            attack="echo_cabal",
            rounds=rounds,
            seed=n + 100,
            actual_faults=params.f + 1,
        )
        result_over = run(over, check_guarantees=False)
        table.add_row(
            n,
            params.f,
            params.f + 1,
            "echo_cabal",
            result_over.precision,
            bound,
            result_over.precision <= bound + 1e-9,
        )
    table.add_note("the last row of each pair runs the algorithm out of spec and is expected to violate the bound")
    return table
