"""E12 -- Head-to-head comparison with the baseline synchronizers.

For the same model parameters and message budget (one or two broadcasts per
process per period), compare precision, accuracy and message count of:

* the two Srikanth-Toueg variants,
* Lundelius-Welch fault-tolerant averaging,
* Lamport-Melliar-Smith interactive convergence,
* sync-to-max and free-running clocks,

once in a benign setting and once with faulty processes present (silent faults
for the ST algorithms and averaging baselines, an inflated clock source for
sync-to-max, which it cannot tolerate).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.report import Table
from ..workloads.scenarios import Scenario
from .common import default_params, stream_rows


_CASES: list[tuple[str, Optional[str]]] = [
    ("auth", "eager"),
    ("echo", "eager"),
    ("lundelius_welch", "silent"),
    ("lamport_melliar_smith", "silent"),
    ("sync_to_max", "inflated_clock"),
    ("free_running", "silent"),
]


def run_experiment(quick: bool = True) -> Table:
    rounds = 6 if quick else 15
    table = Table(
        title="E12: Srikanth-Toueg vs baselines (n=7, one faulty process)",
        headers=[
            "algorithm",
            "attack",
            "precision",
            "worst |C(t)-t|",
            "fastest rate",
            "messages/round",
        ],
    )
    scenarios = [
        Scenario(
            params=default_params(7, authenticated=(algorithm == "auth"), f=1),
            algorithm=algorithm,
            attack=attack,
            actual_faults=1,
            rounds=rounds,
            clock_mode="random",
            delay_mode="uniform",
            seed=7,
        )
        for algorithm, attack in _CASES
    ]
    def row(index, result):
        algorithm, attack = _CASES[index]
        offset = result.accuracy.worst_offset_from_real_time if result.accuracy else float("nan")
        rate = result.accuracy.fastest_long_run_rate if result.accuracy else float("nan")
        return (algorithm, attack or "none", result.precision, offset, rate, result.messages_per_round)

    table.add_rows(stream_rows(scenarios, row, check_guarantees=False, trace_level="metrics"))
    table.add_note("free_running shows the unsynchronized drift floor; sync_to_max is run under the attack it cannot tolerate")
    return table
