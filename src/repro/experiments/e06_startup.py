"""E6 -- Start-up (initial synchronization).

Claim reproduced: starting from scratch -- processes boot at arbitrary times
within a known dispersion and clocks carry arbitrary initial offsets -- every
correct process synchronizes (accepts round 0 or at latest round 1) within the
analytic start-up completion bound, after which the ordinary precision bound
applies.
"""

from __future__ import annotations

from ..analysis import metrics
from ..analysis.report import Table
from ..core.bounds import precision_bound
from ..core.startup import startup_completion_bound
from ..workloads.scenarios import Scenario
from .common import default_params, run_batch


def run_experiment(quick: bool = True) -> Table:
    spreads = [0.0, 0.05] if quick else [0.0, 0.02, 0.05, 0.2, 0.5]
    algorithms = ["auth", "echo"]
    rounds = 6 if quick else 15

    cases = [(algorithm, spread) for algorithm in algorithms for spread in spreads]
    scenarios = [
        Scenario(
            params=default_params(7, authenticated=(algorithm == "auth"), initial_offset_spread=0.05),
            algorithm=algorithm,
            attack="silent",
            rounds=rounds,
            clock_mode="extreme",
            delay_mode="uniform",
            use_startup=True,
            boot_spread=spread,
            seed=int(spread * 100) + 3,
        )
        for algorithm, spread in cases
    ]
    results = run_batch(scenarios, check_guarantees=False)

    table = Table(
        title="E6: start-up from unsynchronized state",
        headers=[
            "algorithm",
            "boot spread",
            "all synced by",
            "completion bound",
            "in time",
            "skew after round 1",
            "precision bound",
            "within bound",
        ],
    )
    for ((algorithm, spread), scenario, result) in zip(cases, scenarios, results):
        params = scenario.params
        synced_by = metrics.steady_state_start(result.trace)
        bound = startup_completion_bound(params, spread, scenario.st_algorithm)
        skew_bound = precision_bound(params, scenario.st_algorithm)
        settled_skew = metrics.skew_after_round(result.trace, 1)
        settled_skew = float("inf") if settled_skew is None else settled_skew
        table.add_row(
            algorithm,
            spread,
            synced_by,
            bound,
            synced_by <= bound + 1e-9,
            settled_skew,
            skew_bound,
            settled_skew <= skew_bound + 1e-9,
        )
    table.add_note("'all synced by' is the real time at which every correct process has resynchronized at least once")
    table.add_note("the precision bound applies from the first full round (round 1) after start-up")
    return table
