"""Shared helpers for the experiment runners.

Every experiment (E1..E12 in DESIGN.md) is a function ``run(quick=True)``
returning one or more :class:`~repro.analysis.report.Table` objects.  The
benchmark harness times these runners and prints the tables; the examples and
EXPERIMENTS.md generator call the same code, so the numbers in the
documentation are exactly the numbers the harness produces.
"""

from __future__ import annotations

from typing import Optional

from ..core.params import SyncParams, params_for
from ..workloads.scenarios import Scenario, ScenarioResult, run_scenario

#: Default model parameters used across experiments unless a sweep overrides them.
DEFAULT_RHO = 1e-4
DEFAULT_TDEL = 0.01
DEFAULT_PERIOD = 1.0


def default_params(
    n: int,
    authenticated: bool = True,
    f: Optional[int] = None,
    rho: float = DEFAULT_RHO,
    tdel: float = DEFAULT_TDEL,
    period: float = DEFAULT_PERIOD,
    initial_offset_spread: Optional[float] = None,
) -> SyncParams:
    """Experiment-wide default parameterisation (worst-case ``f`` unless overridden)."""
    if initial_offset_spread is None:
        initial_offset_spread = tdel
    return params_for(
        n=n,
        f=f,
        authenticated=authenticated,
        rho=rho,
        tdel=tdel,
        period=period,
        initial_offset_spread=initial_offset_spread,
    )


def adversarial_scenario(
    params: SyncParams,
    algorithm: str,
    attack: str = "eager",
    rounds: int = 10,
    seed: int = 0,
    **kwargs,
) -> Scenario:
    """A scenario with the harshest standard conditions: extreme clocks, targeted delays."""
    return Scenario(
        params=params,
        algorithm=algorithm,
        attack=attack,
        rounds=rounds,
        clock_mode="extreme",
        delay_mode="targeted",
        seed=seed,
        **kwargs,
    )


def benign_scenario(
    params: SyncParams,
    algorithm: str,
    rounds: int = 10,
    seed: int = 0,
    **kwargs,
) -> Scenario:
    """A scenario with no active adversary: random clocks and uniform delays."""
    return Scenario(
        params=params,
        algorithm=algorithm,
        attack="silent",
        rounds=rounds,
        clock_mode="random",
        delay_mode="uniform",
        seed=seed,
        **kwargs,
    )


def run(scenario: Scenario, check_guarantees: Optional[bool] = None) -> ScenarioResult:
    """Thin alias so experiment modules read naturally."""
    return run_scenario(scenario, check_guarantees=check_guarantees)
