"""Shared helpers for the experiment runners.

Every experiment (E1..E12 in DESIGN.md) is a function ``run(quick=True)``
returning one or more :class:`~repro.analysis.report.Table` objects.  The
benchmark harness times these runners and prints the tables; the examples and
EXPERIMENTS.md generator call the same code, so the numbers in the
documentation are exactly the numbers the harness produces.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace as dataclasses_replace
from typing import Callable, Optional, Sequence

from ..core.params import SyncParams, params_for
from ..workloads.scenarios import Scenario, ScenarioResult
from ..workloads.sweeps import run_sweep, stream_sweep

#: Default model parameters used across experiments unless a sweep overrides them.
DEFAULT_RHO = 1e-4
DEFAULT_TDEL = 0.01
DEFAULT_PERIOD = 1.0


def default_params(
    n: int,
    authenticated: bool = True,
    f: Optional[int] = None,
    rho: float = DEFAULT_RHO,
    tdel: float = DEFAULT_TDEL,
    period: float = DEFAULT_PERIOD,
    initial_offset_spread: Optional[float] = None,
) -> SyncParams:
    """Experiment-wide default parameterisation (worst-case ``f`` unless overridden)."""
    if initial_offset_spread is None:
        initial_offset_spread = tdel
    return params_for(
        n=n,
        f=f,
        authenticated=authenticated,
        rho=rho,
        tdel=tdel,
        period=period,
        initial_offset_spread=initial_offset_spread,
    )


def adversarial_scenario(
    params: SyncParams,
    algorithm: str,
    attack: str = "eager",
    rounds: int = 10,
    seed: int = 0,
    **kwargs,
) -> Scenario:
    """A scenario with the harshest standard conditions: extreme clocks, targeted delays."""
    return Scenario(
        params=params,
        algorithm=algorithm,
        attack=attack,
        rounds=rounds,
        clock_mode="extreme",
        delay_mode="targeted",
        seed=seed,
        **kwargs,
    )


def benign_scenario(
    params: SyncParams,
    algorithm: str,
    rounds: int = 10,
    seed: int = 0,
    **kwargs,
) -> Scenario:
    """A scenario with no active adversary: random clocks and uniform delays."""
    return Scenario(
        params=params,
        algorithm=algorithm,
        attack="silent",
        rounds=rounds,
        clock_mode="random",
        delay_mode="uniform",
        seed=seed,
        **kwargs,
    )


def replicated(scenario: Scenario, replications: int, shards: Optional[int] = None) -> Scenario:
    """``scenario`` with ``replications`` independent runs (seeds ``seed``..).

    The result of a replicated scenario is the exact merge of the
    per-replication summaries -- worst-case statistics over all runs of one
    configuration -- and its execution shards across the worker pool along
    the resolved shard plan (``shards=None``: one shard per core).  Requires
    ``trace_level="metrics"``.
    """
    return dataclasses_replace(scenario, replications=replications, shards=shards, name="")


#: :class:`~repro.workloads.scenarios.ScenarioResult` fields that must be
#: identical wherever and however a scenario executes -- serial, pooled,
#: sharded, or on a remote executor backend.  The accuracy summary compares
#: as a whole dataclass (window-rate extremes included); execution
#: provenance (``shard_count``, ``shard_horizons``) is deliberately absent.
#: Every parity gate (E13, E14, ``scripts/bench.py``) compares this one
#: list, so a newly added measured field is either covered everywhere or
#: visibly missing here.
MEASURED_RESULT_FIELDS = (
    "precision",
    "precision_overall",
    "acceptance_spread",
    "completed_round",
    "total_messages",
    "effective_horizon",
    "accuracy",
)


def results_exactly_equal(result: ScenarioResult, reference: ScenarioResult) -> bool:
    """Float-exact equality of every measured field (provenance excluded)."""
    return all(getattr(result, field) == getattr(reference, field) for field in MEASURED_RESULT_FIELDS)


def stable_seed(*parts, modulus: int = 1_000_000) -> int:
    """A deterministic seed derived from ``parts``.

    Unlike the builtin ``hash`` (randomized per interpreter via
    ``PYTHONHASHSEED``), this is stable across Python invocations and worker
    processes -- which is what makes experiment scenarios reproducible and
    their cached results reusable between runs.
    """
    digest = hashlib.sha256("\x1f".join(repr(part) for part in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") % modulus


#: Optional passive observer: called with every ScenarioResult an experiment
#: obtains through this module (streamed or batched, cache hits included).
#: The report generator uses it to persist per-table provenance -- effective
#: horizons, shard counts, early stops -- without touching the experiments.
_observer: Optional[Callable[[ScenarioResult], None]] = None


def set_observer(hook: Optional[Callable[[ScenarioResult], None]]) -> None:
    """Install (or with ``None`` remove) the passive result observer."""
    global _observer
    _observer = hook


def _observe(result: ScenarioResult) -> None:
    if _observer is not None:
        _observer(result)


def run(
    scenario: Scenario,
    check_guarantees: Optional[bool] = None,
    trace_level: str = "full",
) -> ScenarioResult:
    """Run one scenario through the shared sweep runner (cache included)."""
    result = run_sweep([scenario], check_guarantees=check_guarantees, trace_level=trace_level)[0]
    _observe(result)
    return result


def run_batch(
    scenarios: Sequence[Scenario],
    check_guarantees=None,
    trace_level: str = "full",
) -> list[ScenarioResult]:
    """Run an experiment's whole scenario list through the shared sweep runner.

    This is the experiment-side entry point to parallel execution: building
    every scenario first and submitting them in one batch lets the runner
    spread the grid across worker processes (``--jobs``/``REPRO_JOBS``) and
    serve repeats from the result cache.  ``check_guarantees`` is a single
    flag or one entry per scenario; results come back in input order.

    Experiments that only read scalar metrics off the results pass
    ``trace_level="metrics"`` so large sweeps never build execution traces;
    experiments that post-process history (E6 start-up, E7 join, E11
    ablation) keep the default full level.
    """
    return run_sweep(
        scenarios, check_guarantees=check_guarantees, callback=_observe, trace_level=trace_level
    )


#: Optional progress hook for streamed experiment sweeps: called as
#: ``hook(done, total, result)`` after each grid point completes.
_progress: Optional[Callable[[int, int, ScenarioResult], None]] = None


def set_progress(hook: Optional[Callable[[int, int, ScenarioResult], None]]) -> None:
    """Install (or with ``None`` remove) the streamed-sweep progress hook.

    The CLI's ``experiment --stream`` uses this to report grid points as they
    complete; it works because the experiments fold their tables through
    :func:`stream_rows` instead of materializing result lists.
    """
    global _progress
    _progress = hook


def stream_rows(
    scenarios: Sequence[Scenario],
    row_of: Callable[[int, ScenarioResult], Sequence],
    check_guarantees=None,
    trace_level: str = "full",
) -> list[list]:
    """Run a sweep and fold each result into its table row as it completes.

    The streaming counterpart of :func:`run_batch` for experiments that only
    turn results into table rows: ``row_of(index, result)`` maps one result
    (at its input position ``index``) to the row cells, the result is dropped
    immediately afterwards, and the rows come back in input order.  The
    parent process never holds more than a bounded number of
    :class:`~repro.workloads.scenarios.ScenarioResult` objects, so table
    generation works at grid sizes where materializing every result would
    not.
    """
    rows: list = [None] * len(scenarios)
    done = 0

    def fold(index: int, result: ScenarioResult) -> None:
        nonlocal done
        done += 1
        rows[index] = list(row_of(index, result))
        _observe(result)
        if _progress is not None:
            _progress(done, len(scenarios), result)

    stream_sweep(scenarios, fold, check_guarantees=check_guarantees, trace_level=trace_level)
    return rows
