"""E5 -- Resynchronization period bounds.

Claim reproduced: the real time between consecutive resynchronizations of any
correct process stays within ``[beta_min, beta_max]``, for both algorithm
variants and across drift rates.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import beta_max, beta_min
from .common import adversarial_scenario, default_params, stream_rows


def run_experiment(quick: bool = True) -> Table:
    rhos = [1e-4, 1e-3] if quick else [1e-5, 1e-4, 1e-3, 5e-3]
    algorithms = ["auth", "echo"]
    rounds = 8 if quick else 20

    cases = [(algorithm, rho) for algorithm in algorithms for rho in rhos]
    scenarios = [
        adversarial_scenario(
            default_params(7, authenticated=(algorithm == "auth"), rho=rho),
            algorithm,
            attack="eager",
            rounds=rounds,
            seed=int(rho * 1e6),
        )
        for algorithm, rho in cases
    ]
    def row(index, result):
        algorithm, rho = cases[index]
        lo = beta_min(result.params, result.scenario.st_algorithm)
        hi = beta_max(result.params, result.scenario.st_algorithm)
        stats = result.period_stats
        ok = stats.count > 0 and stats.minimum >= lo - 1e-9 and stats.maximum <= hi + 1e-9
        return (algorithm, rho, lo, stats.minimum, stats.maximum, hi, ok)

    table = Table(
        title="E5: resynchronization intervals vs analytic bounds",
        headers=["algorithm", "rho", "beta_min", "measured min", "measured max", "beta_max", "within bounds"],
    )
    table.add_rows(stream_rows(scenarios, row, trace_level="metrics"))
    return table
