"""E7 -- Integration of a joining process.

Claim reproduced: a process that comes up while the system is already
synchronized joins within one resynchronization interval plus the acceptance
latency, and once joined it obeys the same precision bound as everyone else.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import precision_bound
from ..core.join import join_latency_bound, join_time, joined
from ..workloads.scenarios import Scenario
from .common import default_params, run_batch


def run_experiment(quick: bool = True) -> Table:
    join_times = [1.3, 2.6] if quick else [1.3, 2.6, 3.4, 5.7, 7.2]
    algorithms = ["auth", "echo"]
    rounds = 8 if quick else 15

    cases = [(algorithm, at) for algorithm in algorithms for at in join_times]
    scenarios = [
        Scenario(
            params=default_params(7, authenticated=(algorithm == "auth")),
            algorithm=algorithm,
            attack="eager",
            rounds=rounds,
            clock_mode="extreme",
            delay_mode="uniform",
            joiner_count=1,
            join_time=at,
            seed=int(at * 10),
        )
        for algorithm, at in cases
    ]
    results = run_batch(scenarios, check_guarantees=False)

    table = Table(
        title="E7: join latency of a late-starting process",
        headers=["algorithm", "join at", "joined", "join latency", "latency bound", "in time", "steady skew"],
    )
    for ((algorithm, at), scenario, result) in zip(cases, scenarios, results):
        joiner_pid = scenario.joiner_pids[0]
        ok = joined(result.trace, joiner_pid)
        latency = join_time(result.trace, joiner_pid, at) if ok else float("inf")
        bound = join_latency_bound(scenario.params, scenario.st_algorithm)
        table.add_row(
            algorithm,
            at,
            ok,
            latency,
            bound,
            latency <= bound + 1e-9,
            result.precision,
        )
    table.add_note(f"precision bound (auth, n=7): {precision_bound(default_params(7), 'auth'):.4g}")
    return table
