"""E9 -- Precision scaling in the model parameters.

Claim reproduced: the achievable skew scales as ``O(tdel + rho * P)`` -- it
grows (roughly linearly) with the delay bound and with the drift accumulated
per period, and the analytic bound tracks the same shape.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import AUTH, precision_bound
from .common import adversarial_scenario, default_params, stream_rows


def run_tdel_sweep(quick: bool = True) -> Table:
    tdels = [0.005, 0.01, 0.02] if quick else [0.002, 0.005, 0.01, 0.02, 0.05]
    rounds = 8 if quick else 20
    scenarios = [
        adversarial_scenario(
            default_params(7, authenticated=True, tdel=tdel),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=int(tdel * 1e4),
        )
        for tdel in tdels
    ]

    def row(index, result):
        tdel = tdels[index]
        bound = precision_bound(result.params, AUTH)
        return (tdel, result.precision, bound, result.precision / tdel)

    table = Table(
        title="E9a: precision vs maximum message delay (auth, n=7, rho=1e-4, P=1)",
        headers=["tdel", "measured skew", "bound Dmax", "skew / tdel"],
    )
    table.add_rows(stream_rows(scenarios, row, trace_level="metrics"))
    return table


def run_drift_sweep(quick: bool = True) -> Table:
    rho_periods = [(1e-4, 1.0), (1e-3, 1.0), (1e-3, 4.0)] if quick else [
        (1e-5, 1.0),
        (1e-4, 1.0),
        (1e-3, 1.0),
        (1e-3, 4.0),
        (5e-3, 4.0),
    ]
    rounds = 8 if quick else 20
    scenarios = [
        adversarial_scenario(
            default_params(7, authenticated=True, rho=rho, period=period),
            "auth",
            attack="skew_max",
            rounds=rounds,
            seed=int(rho * 1e6),
        )
        for rho, period in rho_periods
    ]
    def row(index, result):
        rho, period = rho_periods[index]
        bound = precision_bound(result.params, AUTH)
        return (rho, period, rho * period, result.precision, bound)

    table = Table(
        title="E9b: precision vs drift-per-period rho*P (auth, n=7, tdel=0.01)",
        headers=["rho", "period P", "rho*P", "measured skew", "bound Dmax"],
    )
    table.add_rows(stream_rows(scenarios, row, trace_level="metrics"))
    return table


def run_experiment(quick: bool = True) -> list[Table]:
    return [run_tdel_sweep(quick), run_drift_sweep(quick)]
