"""E3 -- Resilience threshold of the authenticated algorithm.

Claim reproduced: the authenticated algorithm tolerates any ``f < n/2`` faults
(guarantees hold under every implemented attack), and the bound is tight --
with ``ceil(n/2)`` colluding processes the adversary can fabricate acceptance
proofs and drive the skew far beyond the bound.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import AUTH, precision_bound
from .common import adversarial_scenario, default_params, stream_rows


def run_experiment(quick: bool = True) -> Table:
    sizes = [4, 6] if quick else [4, 6, 8, 10]
    rounds = 6 if quick else 15

    scenarios, checks = [], []
    for n in sizes:
        params = default_params(n, authenticated=True)
        # Within spec: the strongest tolerated attack.
        scenarios.append(adversarial_scenario(params, "auth", attack="skew_max", rounds=rounds, seed=n))
        checks.append(None)
        # Above spec: one extra faulty process forms a forging cabal.
        scenarios.append(
            adversarial_scenario(
                params,
                "auth",
                attack="rushing_cabal",
                rounds=rounds,
                seed=n + 100,
                actual_faults=params.f + 1,
            )
        )
        checks.append(False)
    def row(index, result):
        scenario = scenarios[index]
        bound = precision_bound(scenario.params, AUTH)
        return (
            scenario.params.n,
            scenario.params.f,
            scenario.actual_faults,
            scenario.attack,
            result.precision,
            bound,
            result.precision <= bound + 1e-9,
        )

    table = Table(
        title="E3: authenticated algorithm at and above the resilience threshold",
        headers=["n", "assumed f", "actual faults", "attack", "measured skew", "bound Dmax", "within bound"],
    )
    table.add_rows(stream_rows(scenarios, row, check_guarantees=checks, trace_level="metrics"))
    table.add_note("the last row of each pair runs the algorithm out of spec and is expected to violate the bound")
    return table
