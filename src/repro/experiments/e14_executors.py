"""E14 -- Executor-backend invariance and worker-crash recovery.

Like E13, this experiment validates the reproduction *system* rather than a
paper theorem: every scenario is a pure function of its declarative
description, so the distributed execution subsystem
(:mod:`repro.runner.exec`) must be unable to change any measured value --
whichever backend runs the chunks, however many workers it uses, and even
when a worker is killed mid-sweep and its chunks are retried elsewhere.

Reproduced properties:

* **Backend invariance** (E14a): the same sweep -- plain grid points plus a
  replicated, sharded configuration -- produces float-for-float identical
  results on the serial path, the in-process pool, and the subprocess wire
  backend at one and two workers.  The subprocess backend runs the full
  remote protocol (length-prefixed pickle frames over stdio, heartbeats,
  windowed scheduling), so this is the distribution guarantee exercised end
  to end on localhost.
* **Crash recovery** (E14b): a worker killed with SIGKILL in the middle of a
  sweep costs nothing but time -- the fault-tolerant scheduler retries the
  lost chunks on the surviving worker and the final results are still
  float-for-float identical to the serial path.
"""

from __future__ import annotations

import os
import signal

from ..analysis.report import Table
from ..runner.core import SweepRunner
from .common import adversarial_scenario, default_params, replicated, results_exactly_equal


def _sweep_scenarios(quick: bool) -> list:
    count = 4 if quick else 6
    rounds = 4 if quick else 8
    scenarios = [
        adversarial_scenario(
            default_params(5 + (index % 2) * 2, authenticated=True),
            "auth",
            attack="skew_max" if index % 2 else "eager",
            rounds=rounds,
            seed=1400 + index,
        )
        for index in range(count)
    ]
    scenarios.append(replicated(scenarios[0], 4, shards=2))
    return scenarios


def run_backend_invariance(quick: bool = True) -> Table:
    scenarios = _sweep_scenarios(quick)
    with SweepRunner(jobs=1, cache=None) as runner:
        reference = runner.run_sweep(scenarios, trace_level="metrics")

    backends = [
        ("pool x2", dict(jobs=2, executor="pool")),
        ("subprocess x1", dict(jobs=1, executor="subprocess")),
        ("subprocess x2", dict(jobs=2, executor="subprocess")),
    ]
    table = Table(
        title=f"E14a: executor-backend invariance ({len(scenarios)} grid points, one replicated)",
        headers=["backend", "worst skew (max)", "messages (sum)", "eff. horizon (max)", "== serial"],
    )
    table.add_row(
        "serial",
        max(result.precision for result in reference),
        sum(result.total_messages for result in reference),
        max(result.effective_horizon for result in reference),
        True,
    )
    for label, kwargs in backends:
        with SweepRunner(cache=None, **kwargs) as runner:
            results = runner.run_sweep(scenarios, trace_level="metrics")
        table.add_row(
            label,
            max(result.precision for result in results),
            sum(result.total_messages for result in results),
            max(result.effective_horizon for result in results),
            all(results_exactly_equal(result, ref) for result, ref in zip(results, reference)),
        )
    table.add_note(
        "Every backend must reproduce the serial results float-for-float; the "
        "subprocess rows run the remote wire protocol end to end on localhost."
    )
    return table


def run_crash_recovery(quick: bool = True) -> Table:
    scenarios = _sweep_scenarios(quick)[:-1]  # plain chunks only: one kill, many retries
    with SweepRunner(jobs=1, cache=None) as runner:
        reference = runner.run_sweep(scenarios, trace_level="metrics")

    collected: dict = {}
    killed: list[int] = []
    with SweepRunner(jobs=2, cache=None, executor="subprocess", chunk_size=1) as runner:

        def collect(index, result) -> None:
            collected[index] = result
            if not killed:
                # First completion: SIGKILL a worker, preferably one that is
                # provably mid-chunk, and let the scheduler recover.
                executor = runner._executor  # noqa: SLF001 - deliberate fault injection
                pids = executor.busy_worker_pids() or executor.worker_pids()
                if pids:
                    os.kill(pids[0], signal.SIGKILL)
                    killed.append(pids[0])

        runner.stream_sweep(scenarios, collect, trace_level="metrics")
        stats = runner._executor.stats()  # noqa: SLF001

    results = [collected[index] for index in range(len(scenarios))]
    identical = all(results_exactly_equal(result, ref) for result, ref in zip(results, reference))
    table = Table(
        title="E14b: worker-crash recovery (subprocess backend, 2 workers, SIGKILL mid-sweep)",
        headers=["chunks", "workers killed", "chunk retries", "completed", "== serial"],
    )
    table.add_row(len(scenarios), stats["workers_lost"], stats["retries"], len(results) == len(scenarios), identical)
    table.add_note(
        "The scheduler detects the killed worker via pipe EOF, requeues its "
        "in-flight chunk on the survivor (bounded attempts, the dead worker "
        "excluded) and the sweep finishes float-identical to the serial path."
    )
    return table


def run_experiment(quick: bool = True) -> list[Table]:
    return [run_backend_invariance(quick), run_crash_recovery(quick)]
