"""E2 -- Optimal accuracy.

Claims reproduced:

1. The long-run rate of the synchronized clocks stays within the analytic
   rate bounds, whose excess over the hardware drift envelope is
   ``O(tdel / P)`` -- i.e. it vanishes as the resynchronization period grows
   and is independent of ``f`` and ``n``.
2. Fault tolerance is what buys this: a naive follow-the-maximum synchronizer
   is dragged arbitrarily far off real time by a single lying clock source,
   while the Srikanth-Toueg algorithms (and the fault-tolerant baselines)
   ignore it.

Two tables: (a) rate excess of the authenticated algorithm as the period
grows, against the analytic excess; (b) worst offset from real time per
algorithm with one inflated-clock Byzantine process.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import AUTH, long_run_rate_bounds
from ..workloads.scenarios import Scenario
from .common import DEFAULT_RHO, DEFAULT_TDEL, benign_scenario, default_params, stream_rows


def run_rate_vs_period(quick: bool = True) -> Table:
    """Table (a): accuracy excess shrinks as the period grows."""
    periods = [0.5, 1.0, 2.0] if quick else [0.5, 1.0, 2.0, 5.0, 10.0]
    rounds = 8 if quick else 20
    scenarios = [
        benign_scenario(
            default_params(7, authenticated=True, period=period),
            "auth",
            rounds=rounds,
            seed=int(period * 10),
        )
        for period in periods
    ]
    def row(index, result):
        params = result.params
        _, rate_max = long_run_rate_bounds(params, AUTH)
        measured = result.accuracy.fastest_long_run_rate if result.accuracy else float("nan")
        return (
            periods[index],
            measured,
            rate_max,
            params.max_rate,
            max(0.0, measured - params.max_rate),
            rate_max - params.max_rate,
        )

    table = Table(
        title="E2a: logical clock rate vs resynchronization period (auth, n=7, f=3)",
        headers=[
            "period P",
            "measured max rate",
            "analytic max rate",
            "hardware max rate",
            "measured excess",
            "analytic excess",
        ],
    )
    table.add_rows(stream_rows(scenarios, row, trace_level="metrics"))
    table.add_note("excess = how far the logical clock rate exceeds the hardware drift bound (1+rho)")
    return table


def run_fault_tolerance_of_accuracy(quick: bool = True) -> Table:
    """Table (b): one lying clock source wrecks sync-to-max but not the ST algorithms."""
    rounds = 6 if quick else 15
    table = Table(
        title="E2b: worst offset from real time with one inflated-clock Byzantine process (n=7)",
        headers=["algorithm", "attack", "worst |C(t) - t|", "precision"],
    )
    cases = [
        ("auth", "eager"),
        ("echo", "eager"),
        ("lundelius_welch", "inflated_clock"),
        ("lamport_melliar_smith", "inflated_clock"),
        ("sync_to_max", "inflated_clock"),
    ]
    scenarios = [
        Scenario(
            params=default_params(7, authenticated=(algorithm == "auth"), f=1, rho=DEFAULT_RHO, tdel=DEFAULT_TDEL),
            algorithm=algorithm,
            attack=attack,
            actual_faults=1,
            rounds=rounds,
            clock_mode="random",
            delay_mode="uniform",
            seed=11,
        )
        for algorithm, attack in cases
    ]
    def row(index, result):
        algorithm, attack = cases[index]
        offset = result.accuracy.worst_offset_from_real_time if result.accuracy else float("nan")
        return (algorithm, attack, offset, result.precision)

    table.add_rows(stream_rows(scenarios, row, check_guarantees=False, trace_level="metrics"))
    table.add_note("sync-to-max blindly follows the largest advertised clock; the fault-tolerant algorithms do not")
    return table


def run_experiment(quick: bool = True) -> list[Table]:
    """Run E2 and return both tables."""
    return [run_rate_vs_period(quick), run_fault_tolerance_of_accuracy(quick)]
