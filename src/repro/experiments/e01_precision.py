"""E1 -- Agreement / precision of the authenticated algorithm.

Claim reproduced: with up to ``f = ceil(n/2) - 1`` Byzantine processes, the
mutual skew of correct logical clocks never exceeds the analytic bound
``Dmax``, for all time, under worst-case clock rates, targeted message delays
and active adversaries.

The table reports, per (n, attack): the measured worst-case steady-state skew,
the analytic bound, and whether the bound held.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import AUTH, precision_bound
from .common import adversarial_scenario, default_params, stable_seed, stream_rows


def run_experiment(quick: bool = True) -> Table:
    """Run E1 and return its table."""
    sizes = [4, 7] if quick else [4, 7, 10, 16]
    attacks = ["eager", "two_faced"] if quick else ["eager", "two_faced", "skew_max", "forge_flood"]
    rounds = 8 if quick else 25

    cases = [(n, attack) for n in sizes for attack in attacks]
    scenarios = [
        adversarial_scenario(
            default_params(n, authenticated=True),
            "auth",
            attack=attack,
            rounds=rounds,
            seed=stable_seed(n, attack, modulus=1000),
        )
        for n, attack in cases
    ]

    def row(index, result):
        n, attack = cases[index]
        bound = precision_bound(result.params, AUTH)
        return (n, result.params.f, attack, result.precision, bound, result.precision <= bound + 1e-9)

    table = Table(
        title="E1: precision of the authenticated algorithm at f = ceil(n/2)-1",
        headers=["n", "f", "attack", "measured skew", "bound Dmax", "within bound"],
    )
    table.add_rows(stream_rows(scenarios, row, trace_level="metrics"))
    table.add_note("skew measured exactly over all logical-clock breakpoints, steady state")
    return table
