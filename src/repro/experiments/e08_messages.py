"""E8 -- Message complexity.

Claim reproduced: both algorithms use ``O(n^2)`` messages per
resynchronization round -- at most two broadcasts per correct process per
round (signature + relayed proof, or init + echo) -- with the measured counts
below the analytic worst case.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import messages_per_round_total
from .common import benign_scenario, default_params, run


def run_experiment(quick: bool = True) -> Table:
    sizes = [4, 7, 10] if quick else [4, 7, 10, 16, 25]
    algorithms = ["auth", "echo"]
    rounds = 6 if quick else 12
    table = Table(
        title="E8: messages per resynchronization round",
        headers=["algorithm", "n", "f", "measured msgs/round", "bound 2*(n-f)*(n-1)", "within bound"],
    )
    for algorithm in algorithms:
        for n in sizes:
            params = default_params(n, authenticated=(algorithm == "auth"))
            scenario = benign_scenario(params, algorithm, rounds=rounds, seed=n)
            result = run(scenario, check_guarantees=False)
            bound = messages_per_round_total(params, scenario.st_algorithm)
            measured = result.messages_per_round
            table.add_row(algorithm, n, params.f, measured, bound, measured <= bound + 1e-9)
    table.add_note("benign runs (silent faulty processes); adversarial flooding is excluded from the complexity claim")
    return table
