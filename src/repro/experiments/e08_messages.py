"""E8 -- Message complexity.

Claim reproduced: both algorithms use ``O(n^2)`` messages per
resynchronization round -- at most two broadcasts per correct process per
round (signature + relayed proof, or init + echo) -- with the measured counts
below the analytic worst case.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..core.bounds import messages_per_round_total
from .common import benign_scenario, default_params, stream_rows


def run_experiment(quick: bool = True) -> Table:
    sizes = [4, 7, 10] if quick else [4, 7, 10, 16, 25]
    algorithms = ["auth", "echo"]
    rounds = 6 if quick else 12

    cases = [(algorithm, n) for algorithm in algorithms for n in sizes]
    scenarios = [
        benign_scenario(default_params(n, authenticated=(algorithm == "auth")), algorithm, rounds=rounds, seed=n)
        for algorithm, n in cases
    ]
    def row(index, result):
        algorithm, n = cases[index]
        scenario = scenarios[index]
        bound = messages_per_round_total(scenario.params, scenario.st_algorithm)
        measured = result.messages_per_round
        return (algorithm, n, scenario.params.f, measured, bound, measured <= bound + 1e-9)

    table = Table(
        title="E8: messages per resynchronization round",
        headers=["algorithm", "n", "f", "measured msgs/round", "bound 2*(n-f)*(n-1)", "within bound"],
    )
    table.add_rows(stream_rows(scenarios, row, check_guarantees=False, trace_level="metrics"))
    table.add_note("benign runs (silent faulty processes); adversarial flooding is excluded from the complexity claim")
    return table
