"""E10 -- Robustness against every implemented Byzantine strategy.

Claim reproduced: the guarantees (precision, period, acceptance spread,
adjustment size, liveness, accuracy) hold under *every* tolerated adversary in
the library, for both algorithm variants, at maximum fault count.
"""

from __future__ import annotations

from ..analysis.report import Table
from ..faults.strategies import TOLERATED_ATTACKS
from .common import adversarial_scenario, default_params, stable_seed, stream_rows


def run_experiment(quick: bool = True) -> Table:
    attacks = ["eager", "two_faced", "crash", "forge_flood"] if quick else list(TOLERATED_ATTACKS)
    algorithms = ["auth", "echo"]
    rounds = 6 if quick else 15

    cases = [(algorithm, attack) for algorithm in algorithms for attack in attacks]
    scenarios = [
        adversarial_scenario(
            default_params(7, authenticated=(algorithm == "auth")),
            algorithm,
            attack=attack,
            rounds=rounds,
            seed=stable_seed(attack, modulus=500),
        )
        for algorithm, attack in cases
    ]
    def row(index, result):
        algorithm, attack = cases[index]
        return (algorithm, attack, result.precision, result.completed_round, result.guarantees_hold)

    table = Table(
        title="E10: guarantees under every tolerated Byzantine strategy (n=7, worst-case f)",
        headers=["algorithm", "attack", "measured skew", "completed round", "all guarantees hold"],
    )
    table.add_rows(stream_rows(scenarios, row, trace_level="metrics"))
    return table
