"""Experiment runners: one module per reproduced claim (see DESIGN.md, section 3).

Every experiment exposes ``run_experiment(quick=True)`` returning one
:class:`~repro.analysis.report.Table` or a list of them.  The registry below
is what the benchmark harness, the examples and the EXPERIMENTS.md generator
iterate over, so all three always agree on what was run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from ..analysis.report import Table
from . import (
    e01_precision,
    e02_accuracy,
    e03_resilience_auth,
    e04_resilience_echo,
    e05_period,
    e06_startup,
    e07_join,
    e08_messages,
    e09_scaling,
    e10_adversaries,
    e11_ablation,
    e12_baselines,
    e13_shards,
    e14_executors,
    e15_fleet,
)

Runner = Callable[[bool], Union[Table, list[Table]]]


@dataclass(frozen=True)
class Experiment:
    """One reproduced claim: an id, a description, and its runner."""

    id: str
    claim: str
    runner: Runner

    def run(self, quick: bool = True) -> list[Table]:
        """Run the experiment and always return a list of tables."""
        result = self.runner(quick)
        return result if isinstance(result, list) else [result]


EXPERIMENTS: dict[str, Experiment] = {
    "E1": Experiment("E1", "Agreement / precision bound of the authenticated algorithm", e01_precision.run_experiment),
    "E2": Experiment("E2", "Optimal accuracy (rate envelope, fault tolerance of accuracy)", e02_accuracy.run_experiment),
    "E3": Experiment("E3", "Resilience threshold n > 2f of the authenticated algorithm", e03_resilience_auth.run_experiment),
    "E4": Experiment("E4", "Resilience threshold n > 3f of the echo algorithm", e04_resilience_echo.run_experiment),
    "E5": Experiment("E5", "Resynchronization period bounds", e05_period.run_experiment),
    "E6": Experiment("E6", "Start-up from an unsynchronized state", e06_startup.run_experiment),
    "E7": Experiment("E7", "Integration (join) of a late-starting process", e07_join.run_experiment),
    "E8": Experiment("E8", "Message complexity per round", e08_messages.run_experiment),
    "E9": Experiment("E9", "Precision scaling in tdel and rho*P", e09_scaling.run_experiment),
    "E10": Experiment("E10", "Robustness against every tolerated Byzantine strategy", e10_adversaries.run_experiment),
    "E11": Experiment("E11", "Ablations: adjustment constant alpha, monotonic variant", e11_ablation.run_experiment),
    "E12": Experiment("E12", "Head-to-head comparison with baseline synchronizers", e12_baselines.run_experiment),
    "E13": Experiment("E13", "Shard-plan invariance of replicated worst-case statistics", e13_shards.run_experiment),
    "E14": Experiment("E14", "Executor-backend invariance and worker-crash recovery", e14_executors.run_experiment),
    "E15": Experiment("E15", "Fleet churn invariance and elastic autoscaling", e15_fleet.run_experiment),
}


def run_all(quick: bool = True) -> dict[str, list[Table]]:
    """Run every experiment and return its tables keyed by experiment id."""
    return {exp_id: experiment.run(quick) for exp_id, experiment in EXPERIMENTS.items()}


__all__ = ["Experiment", "EXPERIMENTS", "run_all"]
