"""E15 -- Fleet churn invariance and elastic autoscaling.

E14 proved one killed worker costs nothing but time; this experiment proves
the *fleet* property the self-healing scheduler adds in the elastic rewrite:
a sweep survives **continuous worker murder** -- a scripted chaos schedule
that kills every initial worker at least once -- because lost workers
respawn, parked chunks dispatch to the replacements, and late joiners steal
from the longest backlog.  Since every scenario is a pure function of its
declarative description, all that churn may cost throughput but can never
move a float: the sweep's results must remain exactly the serial results.

Reproduced properties:

* **Churn invariance** (E15a): a sweep on the subprocess backend under a
  deterministic kill schedule (one kill per initial worker, victims chosen
  by seeded RNG) completes without executor failure, reports the respawns in
  its scheduler stats, and is float-for-float identical to the serial path.
* **Elastic autoscaling** (E15b): the same sweep runs on a fleet that starts
  at one worker and autoscales toward a ceiling under backlog pressure,
  then reaps back to its floor when the sweep drains -- scale-ups and
  scale-downs happen, and the results are still exactly the serial results.
"""

from __future__ import annotations

import time

from ..analysis.report import Table
from ..runner.core import SweepRunner
from ..runner.exec import ChaosController, ChaosSchedule, SubprocessWorkerExecutor
from .common import adversarial_scenario, default_params, replicated, results_exactly_equal

#: Aggressive fleet timings for the experiment's executors: losses are
#: detected within ~2s and replacements arrive within ~0.1s, so the churn
#: tables render in seconds instead of minutes.
_FAST_FLEET = dict(
    heartbeat_interval=0.1,
    heartbeat_timeout=2.0,
    respawn_backoff=0.05,
    respawn_backoff_cap=0.5,
    monitor_period=0.05,
)


def _sweep_scenarios(quick: bool) -> list:
    count = 6 if quick else 10
    rounds = 4 if quick else 8
    scenarios = [
        adversarial_scenario(
            default_params(5 + (index % 2) * 2, authenticated=True),
            "auth",
            attack="skew_max" if index % 2 else "eager",
            rounds=rounds,
            seed=1500 + index,
        )
        for index in range(count)
    ]
    scenarios.append(replicated(scenarios[0], 4, shards=2))
    return scenarios


def run_churn_invariance(quick: bool = True) -> Table:
    """E15a: every initial worker is killed mid-sweep; results do not move."""
    scenarios = _sweep_scenarios(quick)
    with SweepRunner(jobs=1, cache=None) as runner:
        reference = runner.run_sweep(scenarios, trace_level="metrics")

    workers = 2
    executor = SubprocessWorkerExecutor(workers, **_FAST_FLEET)
    schedule = ChaosSchedule.kill_every_worker(workers, stride=2, seed=15)
    with SweepRunner(jobs=workers, cache=None, executor=executor, chunk_size=1) as runner:
        with ChaosController(executor, schedule) as chaos:
            results = runner.run_sweep(scenarios, trace_level="metrics")
        stats = runner.executor_stats()

    identical = all(results_exactly_equal(result, ref) for result, ref in zip(results, reference))
    table = Table(
        title=(
            f"E15a: fleet churn invariance (subprocess backend, {workers} workers, "
            f"scripted schedule {schedule.events})"
        ),
        headers=[
            "chunks",
            "workers killed",
            "workers lost",
            "respawns",
            "rejoins",
            "chunk retries",
            "completed",
            "== serial",
        ],
    )
    table.add_row(
        len(scenarios) + 1,  # shard expansion: the replicated point adds a task
        len([pid for _, _, pid in chaos.fired if pid is not None]),
        stats["workers_lost"],
        stats["respawns"],
        stats["joins"],
        stats["retries"],
        len(results) == len(scenarios),
        identical,
    )
    table.add_note(
        "The chaos schedule SIGKILLs a never-before-hit worker after the 1st "
        "and 3rd completed chunks, so every member of the initial fleet dies "
        "mid-sweep; respawned replacements handshake, take the parked and "
        "requeued chunks, and the sweep finishes float-identical to serial."
    )
    return table


def run_elastic_autoscale(quick: bool = True) -> Table:
    """E15b: an autoscaling fleet grows under backlog, reaps when idle."""
    scenarios = _sweep_scenarios(quick)
    with SweepRunner(jobs=1, cache=None) as runner:
        reference = runner.run_sweep(scenarios, trace_level="metrics")

    executor = SubprocessWorkerExecutor(
        1,
        autoscale=True,
        min_workers=1,
        max_workers=3,
        scale_backlog_factor=1.0,
        idle_grace=0.2,
        **_FAST_FLEET,
    )
    with SweepRunner(jobs=1, cache=None, executor=executor, chunk_size=1) as runner:
        results = runner.run_sweep(scenarios, trace_level="metrics")
        # Give the policy loop a beat to reap the now-idle fleet.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and executor.live_worker_count() > executor.min_workers:
            time.sleep(0.05)
        stats = runner.executor_stats()
        settled = executor.live_worker_count()

    identical = all(results_exactly_equal(result, ref) for result, ref in zip(results, reference))
    table = Table(
        title="E15b: elastic autoscaling (subprocess backend, min 1 / max 3 workers)",
        headers=["chunks", "scale-ups", "scale-downs", "workers at rest", "completed", "== serial"],
    )
    table.add_row(
        len(scenarios) + 1,
        stats["scale_ups"],
        stats["scale_downs"],
        settled,
        len(results) == len(scenarios),
        identical,
    )
    table.add_note(
        "The policy loop spawns workers while the chunk backlog exceeds the "
        "live capacity and retires them after the idle grace; sizing the "
        "fleet is pure throughput -- the measured values are exactly serial's."
    )
    return table


def run_experiment(quick: bool = True) -> list[Table]:
    """Both fleet tables: churn invariance and elastic autoscaling."""
    return [run_churn_invariance(quick), run_elastic_autoscale(quick)]
