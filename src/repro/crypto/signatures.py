"""Simulated digital signatures and a public-key infrastructure (PKI).

The authenticated Srikanth-Toueg algorithm relies on digital signatures with
two properties:

* **Verifiability** -- anyone can check that a signature on a message was
  produced by the claimed signer.
* **Unforgeability** -- no process can produce a valid signature of another
  process on a message that process never signed.

For the timing analysis the cryptographic construction is irrelevant; only
the two properties matter.  We therefore *simulate* signatures: signing
requires possession of the signer's :class:`SecretKey` object, which the
simulation hands only to the owning process (and, for colluding Byzantine
nodes, to the adversary for the *faulty* nodes' own keys).  Verification
recomputes a keyed tag from the registered secret, so a signature fabricated
without the key fails verification (except with negligible probability of
guessing a 128-bit tag, which the deterministic construction here makes
impossible outright).

Messages are canonicalised with :func:`message_digest`, which supports the
frozen dataclasses used throughout :mod:`repro.core.messages` as well as
plain tuples of primitives.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, Optional


#: Size of the digest memo; generously above the live-message population of
#: any one simulated round so sign + N verifies of one broadcast hash once.
_DIGEST_CACHE_SIZE = 8192


def _compute_digest(message: object) -> str:
    canonical = _canonicalize(message)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cache_key(message: object):
    """A hashable key that distinguishes messages iff their canonical forms differ.

    Plain Python equality is too coarse here (``1 == 1.0 == True`` and
    ``0.0 == -0.0`` although they canonicalise differently), so every leaf is
    tagged with its concrete type and floats by their exact textual form.
    Lists key like tuples because they share a canonical form.  Raises
    ``TypeError`` for leaves outside ``_canonicalize``'s supported domain.
    """
    if dataclasses.is_dataclass(message) and not isinstance(message, type):
        return (
            type(message),
            tuple(_cache_key(getattr(message, f.name)) for f in dataclasses.fields(message)),
        )
    if isinstance(message, (list, tuple)):
        return (tuple, tuple(_cache_key(item) for item in message))
    if isinstance(message, float):
        return (float, repr(message))  # distinguishes -0.0 from 0.0
    hash(message)  # reject unhashable leaves up front
    return (type(message), message)


_DigestCacheInfo = collections.namedtuple("_DigestCacheInfo", ["hits", "misses", "maxsize", "currsize"])
_digest_cache: dict = {}
_digest_cache_hits = 0
_digest_cache_misses = 0


def message_digest(message: object) -> str:
    """Return a canonical, collision-resistant digest of ``message``.

    Supports (nested) tuples/lists of primitives and frozen dataclasses.  Two
    messages have equal digests iff their canonical forms are equal.  Digests
    are memoized under a type-tagged structural key, so signing and repeatedly
    verifying the same (or an equal) broadcast message canonicalises and
    hashes it once -- the authenticated algorithm's hot path is one ``sign``
    plus up to ``n - 1`` ``verify`` calls per broadcast.
    """
    global _digest_cache_hits, _digest_cache_misses
    try:
        key = _cache_key(message)
    except TypeError:
        # Every canonicalisable message has a hashable key, so this only
        # triggers for unsupported leaves (e.g. dicts, sets); defer to
        # _canonicalize for its clearer unsupported-type error.
        return _compute_digest(message)
    cached = _digest_cache.get(key)
    if cached is not None:
        _digest_cache_hits += 1
        return cached
    _digest_cache_misses += 1
    digest = _compute_digest(message)
    if len(_digest_cache) >= _DIGEST_CACHE_SIZE:
        _digest_cache.clear()
    _digest_cache[key] = digest
    return digest


def digest_cache_info() -> _DigestCacheInfo:
    """Hit/miss statistics of the digest memo (for tests and benchmarks)."""
    return _DigestCacheInfo(
        hits=_digest_cache_hits,
        misses=_digest_cache_misses,
        maxsize=_DIGEST_CACHE_SIZE,
        currsize=len(_digest_cache),
    )


def _canonicalize(message: object) -> str:
    if dataclasses.is_dataclass(message) and not isinstance(message, type):
        fields = dataclasses.fields(message)
        inner = ",".join(f"{f.name}={_canonicalize(getattr(message, f.name))}" for f in fields)
        return f"{type(message).__name__}({inner})"
    if isinstance(message, (list, tuple)):
        inner = ",".join(_canonicalize(item) for item in message)
        return f"[{inner}]"
    if isinstance(message, float):
        return repr(message)
    if isinstance(message, (int, str, bool)) or message is None:
        return repr(message)
    raise TypeError(f"cannot canonicalise message of type {type(message).__name__}")


@dataclass(frozen=True)
class PublicKey:
    """Public half of a key pair; identifies the owner."""

    owner: int


@dataclass(frozen=True)
class SecretKey:
    """Secret half of a key pair.  Possession of this object is the signing capability."""

    owner: int
    secret: int

    def __repr__(self) -> str:  # pragma: no cover - avoid leaking the secret in logs
        return f"SecretKey(owner={self.owner}, secret=<hidden>)"


@dataclass(frozen=True)
class Signature:
    """A (simulated) signature of ``signer`` on a message with digest ``digest``."""

    signer: int
    digest: str
    tag: str


def _compute_tag(secret: int, digest: str) -> str:
    return hashlib.sha256(f"{secret}:{digest}".encode("utf-8")).hexdigest()


def sign(secret_key: SecretKey, message: object) -> Signature:
    """Sign ``message`` with ``secret_key``."""
    digest = message_digest(message)
    return Signature(signer=secret_key.owner, digest=digest, tag=_compute_tag(secret_key.secret, digest))


def forge_attempt(claimed_signer: int, message: object, guess: int = 0) -> Signature:
    """Fabricate a signature *without* the secret key (used by Byzantine behaviours).

    The returned signature carries a tag computed from a guessed secret, so it
    fails verification against the real PKI.
    """
    digest = message_digest(message)
    return Signature(signer=claimed_signer, digest=digest, tag=_compute_tag(guess, digest) + "-forged")


class KeyStore:
    """A public-key infrastructure mapping process ids to key pairs.

    The key store itself acts as the globally trusted verification oracle:
    :meth:`verify` recomputes the tag from the registered secret.  Only the
    simulation setup code should call :meth:`secret_key`; processes receive
    their secret key at construction time and never see other keys.
    """

    def __init__(self, process_ids: Iterable[int], seed: int = 0) -> None:
        rng = random.Random(seed)
        self._secret_keys: dict[int, SecretKey] = {}
        self._public_keys: dict[int, PublicKey] = {}
        for pid in process_ids:
            secret = rng.getrandbits(128)
            self._secret_keys[pid] = SecretKey(owner=pid, secret=secret)
            self._public_keys[pid] = PublicKey(owner=pid)

    @classmethod
    def generate(cls, n: int, seed: int = 0) -> "KeyStore":
        """Generate a PKI for processes ``0 .. n-1``."""
        return cls(range(n), seed=seed)

    def participants(self) -> list[int]:
        return sorted(self._public_keys)

    def public_key(self, pid: int) -> PublicKey:
        return self._public_keys[pid]

    def secret_key(self, pid: int) -> SecretKey:
        """Return the secret key of ``pid``.  Only setup/adversary code may call this."""
        return self._secret_keys[pid]

    def has_participant(self, pid: int) -> bool:
        return pid in self._public_keys

    def verify(self, signature: Signature, message: object, claimed_signer: Optional[int] = None) -> bool:
        """Check that ``signature`` is a valid signature on ``message``.

        If ``claimed_signer`` is given the signature must additionally have
        been produced by that process.
        """
        if claimed_signer is not None and signature.signer != claimed_signer:
            return False
        secret_key = self._secret_keys.get(signature.signer)
        if secret_key is None:
            return False
        digest = message_digest(message)
        if digest != signature.digest:
            return False
        return signature.tag == _compute_tag(secret_key.secret, digest)
