"""Simulated signatures and PKI used by the authenticated algorithms."""

from .signatures import (
    KeyStore,
    PublicKey,
    SecretKey,
    Signature,
    forge_attempt,
    message_digest,
    sign,
)

__all__ = [
    "KeyStore",
    "PublicKey",
    "SecretKey",
    "Signature",
    "sign",
    "forge_attempt",
    "message_digest",
]
