"""Shared round structure of the baseline synchronization algorithms.

The baselines the paper is contrasted with (Lamport & Melliar-Smith's
interactive convergence, Lundelius & Welch's fault-tolerant averaging, and the
naive "follow the fastest clock" rule) all share the same outer loop:

1. at logical time ``k * P`` broadcast something about your clock,
2. collect what the others broadcast for a fixed local-time window,
3. compute a correction from the collected clock-difference estimates and
   apply it, then wait for round ``k + 1``.

:class:`CollectAndCorrectProcess` implements that loop and the estimation of
clock differences from received messages; the concrete baselines only choose
what to broadcast and how to turn the estimate vector into a correction.
"""

from __future__ import annotations

from typing import Hashable

from ..core.clock import LogicalClock
from ..core.messages import ClockSample, SyncPulse
from ..core.params import SyncParams
from ..sim.process import Process
from ..sim.trace import ResyncEvent


class CollectAndCorrectProcess(Process):
    """Base class for round-based "broadcast, collect, correct" synchronizers."""

    algorithm_name = "baseline"

    def __init__(self, pid: int, params: SyncParams) -> None:
        super().__init__(pid)
        self.params = params
        self.logical = LogicalClock()
        self.current_round = 1
        #: Clock-difference estimates collected per round:
        #: ``estimates[k][q]`` approximates ``C_q - C_self`` as of round ``k``.
        self.estimates: dict[int, dict[int, float]] = {}
        #: Length of the collection window in local time units.
        self.collection_window = 2.0 * (1.0 + params.rho) * params.tdel

    # -- timing helpers ------------------------------------------------------------

    def logical_time(self) -> float:
        return self.logical.value(self.local_time())

    def set_logical_timer(self, logical_target: float, key: Hashable):
        return self.set_timer_local(self.logical.hardware_target_for(logical_target), key=key)

    @property
    def delay_midpoint(self) -> float:
        """The deterministic part of the message delay assumed by the estimators."""
        return 0.5 * (self.params.tmin + self.params.tdel)

    # -- round machinery --------------------------------------------------------------

    def on_start(self) -> None:
        self.schedule_round(self.current_round)

    def schedule_round(self, round_: int) -> None:
        self.set_logical_timer(round_ * self.params.period, key=("round", round_))

    def on_timer(self, key: Hashable) -> None:
        if not isinstance(key, tuple):
            return
        kind, round_ = key
        if round_ != self.current_round:
            return
        if kind == "round":
            self.broadcast_round(round_)
            self.set_logical_timer(
                round_ * self.params.period + self.collection_window, key=("collect", round_)
            )
        elif kind == "collect":
            self.finish_round(round_)

    def finish_round(self, round_: int) -> None:
        collected = self.estimates.pop(round_, {})
        collected.setdefault(self.pid, 0.0)
        correction = self.compute_correction(collected)
        before = self.logical_time()
        self.logical.shift_by(correction)
        after = self.logical_time()
        self.record_adjustment(self.sim.now, self.logical.adjustment)
        self.record_resync(
            ResyncEvent(
                pid=self.pid,
                round=round_,
                time=self.sim.now,
                logical_before=before,
                logical_after=after,
            )
        )
        self.current_round = round_ + 1
        self.schedule_round(self.current_round)

    # -- estimation ---------------------------------------------------------------------

    def _record_estimate(self, round_: int, sender: int, estimate: float) -> None:
        # Keep only the first estimate from each peer per round; drop stale and
        # far-future rounds (the latter bounds memory against flooding).
        if round_ < self.current_round or round_ > self.current_round + 2:
            return
        self.estimates.setdefault(round_, {}).setdefault(sender, estimate)

    def on_message(self, sender: int, payload: object) -> None:
        if isinstance(payload, SyncPulse):
            reference = payload.round * self.params.period
            estimate = reference + self.delay_midpoint - self.logical_time()
            self._record_estimate(payload.round, sender, estimate)
        elif isinstance(payload, ClockSample):
            estimate = payload.value + self.delay_midpoint - self.logical_time()
            self._record_estimate(payload.round, sender, estimate)

    # -- extension points ------------------------------------------------------------------

    def broadcast_round(self, round_: int) -> None:
        """Broadcast this round's clock information (subclass-specific)."""
        raise NotImplementedError

    def compute_correction(self, estimates: dict[int, float]) -> float:
        """Turn the estimate vector into the correction applied to the logical clock."""
        raise NotImplementedError
