"""Lundelius & Welch's fault-tolerant averaging synchronizer (PODC 1984).

Each round, every process announces that its logical clock reached ``k * P``
(a :class:`~repro.core.messages.SyncPulse`); receivers estimate the sender's
clock difference from the arrival time.  The correction is the *fault-tolerant
midpoint*: discard the ``f`` smallest and ``f`` largest estimates and take the
midpoint of the remaining range.  With ``n > 3f`` this bounds the influence of
faulty processes and converges the clocks.

This is the classic contrast point to Srikanth-Toueg: it also achieves good
precision, but the correction is an *average*, so the synchronized clocks'
rate depends on where the estimates land inside the delay window, and its
resilience is limited to ``n > 3f`` even though we also allow running it out
of spec for comparison experiments.
"""

from __future__ import annotations

from ..core.messages import SyncPulse
from .base import CollectAndCorrectProcess


def fault_tolerant_midpoint(values: list[float], f: int) -> float:
    """Discard the ``f`` smallest and ``f`` largest values, return the midpoint of the rest.

    If fewer than ``2f + 1`` values are available the midpoint of whatever
    remains after discarding as many extremes as possible is used (this can
    only happen out of spec and keeps the algorithm total).
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    drop = min(f, (len(ordered) - 1) // 2)
    trimmed = ordered[drop: len(ordered) - drop]
    return 0.5 * (trimmed[0] + trimmed[-1])


class LundeliusWelchProcess(CollectAndCorrectProcess):
    """A correct process running the Lundelius-Welch averaging algorithm."""

    algorithm_name = "lundelius-welch"

    def broadcast_round(self, round_: int) -> None:
        self.broadcast(SyncPulse(round=round_))

    def compute_correction(self, estimates: dict[int, float]) -> float:
        return fault_tolerant_midpoint(list(estimates.values()), self.params.f)
