"""Lamport & Melliar-Smith's interactive convergence algorithm (CNV).

Each round, every process broadcasts its current logical clock *value*
(:class:`~repro.core.messages.ClockSample`).  A receiver estimates each peer's
clock difference, replaces any estimate larger in magnitude than the validity
threshold ``delta_max`` by 0 (its own value), and corrects by the *egocentric
average* over all ``n`` processes.  Requires ``n > 3f``.

The threshold makes distant (hence suspect) clock readings harmless, but an
in-range faulty reading still drags the average by up to ``delta_max * f / n``
per round -- precision is achieved, yet both precision and accuracy carry a
dependence on ``f`` that the Srikanth-Toueg algorithm does not have.
"""

from __future__ import annotations

from typing import Optional

from ..core.messages import ClockSample
from .base import CollectAndCorrectProcess


def egocentric_average(estimates: list[float], delta_max: float) -> float:
    """Average the estimates after replacing out-of-range values by 0."""
    if not estimates:
        return 0.0
    clipped = [value if abs(value) <= delta_max else 0.0 for value in estimates]
    return sum(clipped) / len(clipped)


class LamportMelliarSmithProcess(CollectAndCorrectProcess):
    """A correct process running interactive convergence (algorithm CNV)."""

    algorithm_name = "lamport-melliar-smith"

    def __init__(self, pid, params, delta_max: Optional[float] = None) -> None:
        super().__init__(pid, params)
        # The validity threshold must exceed the worst-case honest skew plus
        # the reading error; a generous default keeps the algorithm in spec.
        if delta_max is None:
            delta_max = 4.0 * params.tdel + 4.0 * params.rho * params.period
        self.delta_max = delta_max

    def broadcast_round(self, round_: int) -> None:
        self.broadcast(ClockSample(round=round_, value=self.logical_time()))

    def compute_correction(self, estimates: dict[int, float]) -> float:
        # The egocentric average runs over all n processes; peers we never
        # heard from contribute their default of 0 (our own value).
        values = [estimates.get(pid, 0.0) for pid in range(self.params.n)]
        return egocentric_average(values, self.delta_max)
