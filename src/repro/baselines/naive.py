"""Naive baselines: follow-the-fastest-clock and free-running clocks.

``SyncToMaxProcess`` adjusts, every round, to the largest clock value heard
(never backwards).  Without faults it achieves decent precision, but a single
Byzantine process advertising an inflated clock drags the whole system
arbitrarily far from real time -- the textbook motivation for fault-tolerant
synchronization and the contrast used in experiments E2 and E12.

``FreeRunningProcess`` never adjusts at all; it provides the drift floor
against which the synchronized algorithms are compared.
"""

from __future__ import annotations

from typing import Hashable

from ..core.clock import LogicalClock
from ..core.messages import ClockSample
from ..core.params import SyncParams
from ..sim.process import Process
from ..sim.trace import ResyncEvent
from .base import CollectAndCorrectProcess


class SyncToMaxProcess(CollectAndCorrectProcess):
    """Adjust to the maximum clock value observed each round (not fault-tolerant)."""

    algorithm_name = "sync-to-max"

    def broadcast_round(self, round_: int) -> None:
        self.broadcast(ClockSample(round=round_, value=self.logical_time()))

    def compute_correction(self, estimates: dict[int, float]) -> float:
        # estimates[q] approximates C_q - C_self; following the maximum means
        # applying the largest non-negative difference.
        return max(0.0, max(estimates.values()))


class FreeRunningProcess(Process):
    """A process that never synchronizes; its logical clock is its hardware clock."""

    algorithm_name = "free-running"

    def __init__(self, pid: int, params: SyncParams) -> None:
        super().__init__(pid)
        self.params = params
        self.logical = LogicalClock()
        self.current_round = 1

    def logical_time(self) -> float:
        return self.logical.value(self.local_time())

    def on_start(self) -> None:
        self._schedule(self.current_round)

    def _schedule(self, round_: int) -> None:
        self.set_timer_local(round_ * self.params.period, key=("round", round_))

    def on_timer(self, key: Hashable) -> None:
        # Record "pulses" without any adjustment so liveness/period metrics
        # remain comparable with the synchronized algorithms.
        if not isinstance(key, tuple) or key[0] != "round":
            return
        round_ = key[1]
        value = self.logical_time()
        self.record_resync(
            ResyncEvent(
                pid=self.pid,
                round=round_,
                time=self.sim.now,
                logical_before=value,
                logical_after=value,
            )
        )
        self.current_round = round_ + 1
        self._schedule(self.current_round)


class InflatedClockAttacker(Process):
    """A faulty clock source advertising a wildly inflated clock value each round.

    Breaks :class:`SyncToMaxProcess` (which blindly follows the maximum) while
    the fault-tolerant algorithms ignore it; used in E2/E12.
    """

    faulty = True

    def __init__(self, pid: int, params: SyncParams, inflation: float = 50.0) -> None:
        super().__init__(pid)
        self.params = params
        self.inflation = inflation

    def on_start(self) -> None:
        self._schedule(1)

    def _schedule(self, round_: int) -> None:
        self.sim.schedule_at(round_ * self.params.period, lambda: self._announce(round_))

    def _announce(self, round_: int) -> None:
        if self.halted:
            return
        bogus = round_ * self.params.period + self.inflation
        self.broadcast(ClockSample(round=round_, value=bogus))
        self._schedule(round_ + 1)
