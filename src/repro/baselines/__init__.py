"""Baseline synchronization algorithms the Srikanth-Toueg synchronizers are compared with."""

from .base import CollectAndCorrectProcess
from .lamport_melliar_smith import LamportMelliarSmithProcess, egocentric_average
from .lundelius_welch import LundeliusWelchProcess, fault_tolerant_midpoint
from .naive import FreeRunningProcess, InflatedClockAttacker, SyncToMaxProcess

__all__ = [
    "CollectAndCorrectProcess",
    "LundeliusWelchProcess",
    "fault_tolerant_midpoint",
    "LamportMelliarSmithProcess",
    "egocentric_average",
    "SyncToMaxProcess",
    "FreeRunningProcess",
    "InflatedClockAttacker",
]
