"""``python -m repro.worker`` -- a protocol worker for the remote executors.

One worker is one long-lived process that speaks the length-prefixed pickle
protocol of :mod:`repro.runner.exec.protocol` on its stdio: it reads task
frames from stdin, runs each task function on its payload, and writes result
(or error) frames to stdout.  A daemon thread emits heartbeat frames so the
parent's scheduler can distinguish a busy worker from a wedged one.

The executors (:class:`~repro.runner.exec.remote.SubprocessWorkerExecutor`
locally, :class:`~repro.runner.exec.remote.SSHExecutor` across machines)
spawn and own these processes; the module has no other entry points.  Tasks
run strictly sequentially in arrival order -- parallelism comes from running
several workers, which keeps each worker's results trivially deterministic.

Discipline: stdout belongs to the frame stream.  ``sys.stdout`` is rebound to
stderr before any task runs, so stray prints inside task functions degrade to
log noise instead of corrupting the protocol.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import threading
import traceback
from typing import Optional, Sequence

from . import obs
from .runner.exec.protocol import read_frame, write_frame

#: Default seconds between heartbeat frames (``--heartbeat`` overrides;
#: non-positive disables the thread entirely).
HEARTBEAT_INTERVAL = 1.0


class _TaskTelemetry:
    """Per-task telemetry collection, driven by the frame's trace context.

    When a task frame carries a ctx, the worker installs a fresh tracer
    and/or registry for the duration of that one task, roots the worker-side
    span tree at the parent span id the ctx names, and packages everything
    as the ``telemetry`` element of the result (or error) frame.  With no
    ctx, every method is a cheap no-op and frames keep their short form.
    """

    __slots__ = ("ctx", "tracer", "registry", "root", "_previous")

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.tracer = obs.Tracer() if ctx and ctx.get("trace") else None
        self.registry = obs.MetricsRegistry() if ctx and ctx.get("metrics") else None
        self.root = None
        self._previous = None

    def start(self, task_id: int) -> None:
        if self.ctx is None:
            return
        self._previous = obs.install(self.tracer, self.registry)
        if self.tracer is not None:
            self.root = self.tracer.begin("worker.task", parent=self.ctx.get("parent"))
            self.root.set("task_id", task_id)
            self.root.set("pid", os.getpid())
            self.tracer._push(self.root)

    def stop(self, status: str) -> None:
        if self.ctx is None:
            return
        if self.root is not None:
            self.tracer._pop(self.root)
            self.root.finish(status)
        obs.install(*self._previous)

    def payload(self):
        """The ``telemetry`` frame element, or ``None`` for the short form."""
        if self.ctx is None:
            return None
        return {
            "spans": self.tracer.export_payload() if self.tracer is not None else None,
            "metrics": self.registry.snapshot() if self.registry is not None else None,
        }


def _describe_error(exc: BaseException) -> tuple:
    """An ``("error", ...)`` tail: the pickled exception when possible."""
    shipped: Optional[BaseException] = exc
    try:
        pickle.dumps(exc)
    except Exception:
        shipped = None
    info = (type(exc).__name__, str(exc), traceback.format_exc())
    return shipped, info


def _result_frame(task_id: int, result, telemetry: "_TaskTelemetry") -> tuple:
    """A result frame, extended with telemetry only when a ctx rode the task."""
    payload = telemetry.payload()
    if payload is None:
        return ("result", task_id, result)
    return ("result", task_id, result, payload)


def _error_frame(task_id: int, shipped, info, telemetry: "_TaskTelemetry") -> tuple:
    """An error frame, extended with telemetry only when a ctx rode the task."""
    payload = telemetry.payload()
    if payload is None:
        return ("error", task_id, shipped, info)
    return ("error", task_id, shipped, info, payload)


def serve(in_stream, out_stream, heartbeat: float = HEARTBEAT_INTERVAL) -> int:
    """Run the worker loop over the given binary streams until shutdown/EOF."""
    write_lock = threading.Lock()
    stop = threading.Event()

    def send(frame: tuple) -> None:
        with write_lock:
            write_frame(out_stream, frame)

    send(("hello", os.getpid()))

    if heartbeat > 0:

        def beat() -> None:
            while not stop.wait(heartbeat):
                try:
                    send(("heartbeat",))
                except Exception:
                    return  # parent gone; the main loop sees EOF and exits

        threading.Thread(target=beat, name="repro-worker-heartbeat", daemon=True).start()

    try:
        while True:
            frame = read_frame(in_stream)
            if frame is None or frame[0] == "shutdown":
                return 0
            if frame[0] == "probe":
                # Liveness probe from a parent whose heartbeat deadline we are
                # approaching: answer immediately on the main thread, so a
                # wedged task (which would also wedge this loop) stays
                # detectable even though the heartbeat thread keeps beating.
                send(("pong", os.getpid()))
                continue
            tag, task_id, fn, payload, *rest = frame
            if tag != "task":
                raise RuntimeError(f"worker received unexpected frame tag {tag!r}")
            telemetry = _TaskTelemetry(rest[0] if rest else None)
            telemetry.start(task_id)
            try:
                result = fn(payload)
            except BaseException as exc:  # noqa: BLE001 - ship every failure home
                telemetry.stop("error")
                shipped, info = _describe_error(exc)
                send(_error_frame(task_id, shipped, info, telemetry))
            else:
                telemetry.stop("ok")
                try:
                    send(_result_frame(task_id, result, telemetry))
                except OSError:
                    raise  # the stream itself is broken: let the worker die
                except Exception as exc:
                    # The *result* cannot be shipped (unpicklable, over the
                    # frame limit).  Encoding is all-or-nothing, so nothing
                    # hit the stream: report the serialization failure as a
                    # task error instead of dying -- a deterministic task
                    # would fail identically on every retry worker.
                    shipped, info = _describe_error(exc)
                    send(_error_frame(task_id, shipped, info, telemetry))
    finally:
        stop.set()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.worker", description=__doc__.splitlines()[0])
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=HEARTBEAT_INTERVAL,
        help=f"seconds between heartbeat frames (default {HEARTBEAT_INTERVAL}; <= 0 disables)",
    )
    args = parser.parse_args(argv)

    in_stream = sys.stdin.buffer
    out_stream = sys.stdout.buffer
    # Stray prints from task code must not corrupt the frame stream.
    sys.stdout = sys.stderr
    return serve(in_stream, out_stream, heartbeat=args.heartbeat)


if __name__ == "__main__":
    raise SystemExit(main())
