"""``python -m repro.worker`` -- a protocol worker for the remote executors.

One worker is one long-lived process that speaks the length-prefixed pickle
protocol of :mod:`repro.runner.exec.protocol` on its stdio: it reads task
frames from stdin, runs each task function on its payload, and writes result
(or error) frames to stdout.  A daemon thread emits heartbeat frames so the
parent's scheduler can distinguish a busy worker from a wedged one.

The executors (:class:`~repro.runner.exec.remote.SubprocessWorkerExecutor`
locally, :class:`~repro.runner.exec.remote.SSHExecutor` across machines)
spawn and own these processes; the module has no other entry points.  Tasks
run strictly sequentially in arrival order -- parallelism comes from running
several workers, which keeps each worker's results trivially deterministic.

Discipline: stdout belongs to the frame stream.  ``sys.stdout`` is rebound to
stderr before any task runs, so stray prints inside task functions degrade to
log noise instead of corrupting the protocol.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import threading
import traceback
from typing import Optional, Sequence

from .runner.exec.protocol import read_frame, write_frame

#: Default seconds between heartbeat frames (``--heartbeat`` overrides;
#: non-positive disables the thread entirely).
HEARTBEAT_INTERVAL = 1.0


def _describe_error(exc: BaseException) -> tuple:
    """An ``("error", ...)`` tail: the pickled exception when possible."""
    shipped: Optional[BaseException] = exc
    try:
        pickle.dumps(exc)
    except Exception:
        shipped = None
    info = (type(exc).__name__, str(exc), traceback.format_exc())
    return shipped, info


def serve(in_stream, out_stream, heartbeat: float = HEARTBEAT_INTERVAL) -> int:
    """Run the worker loop over the given binary streams until shutdown/EOF."""
    write_lock = threading.Lock()
    stop = threading.Event()

    def send(frame: tuple) -> None:
        with write_lock:
            write_frame(out_stream, frame)

    send(("hello", os.getpid()))

    if heartbeat > 0:

        def beat() -> None:
            while not stop.wait(heartbeat):
                try:
                    send(("heartbeat",))
                except Exception:
                    return  # parent gone; the main loop sees EOF and exits

        threading.Thread(target=beat, name="repro-worker-heartbeat", daemon=True).start()

    try:
        while True:
            frame = read_frame(in_stream)
            if frame is None or frame[0] == "shutdown":
                return 0
            if frame[0] == "probe":
                # Liveness probe from a parent whose heartbeat deadline we are
                # approaching: answer immediately on the main thread, so a
                # wedged task (which would also wedge this loop) stays
                # detectable even though the heartbeat thread keeps beating.
                send(("pong", os.getpid()))
                continue
            tag, task_id, fn, payload = frame
            if tag != "task":
                raise RuntimeError(f"worker received unexpected frame tag {tag!r}")
            try:
                result = fn(payload)
            except BaseException as exc:  # noqa: BLE001 - ship every failure home
                shipped, info = _describe_error(exc)
                send(("error", task_id, shipped, info))
            else:
                try:
                    send(("result", task_id, result))
                except OSError:
                    raise  # the stream itself is broken: let the worker die
                except Exception as exc:
                    # The *result* cannot be shipped (unpicklable, over the
                    # frame limit).  Encoding is all-or-nothing, so nothing
                    # hit the stream: report the serialization failure as a
                    # task error instead of dying -- a deterministic task
                    # would fail identically on every retry worker.
                    shipped, info = _describe_error(exc)
                    send(("error", task_id, shipped, info))
    finally:
        stop.set()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.worker", description=__doc__.splitlines()[0])
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=HEARTBEAT_INTERVAL,
        help=f"seconds between heartbeat frames (default {HEARTBEAT_INTERVAL}; <= 0 disables)",
    )
    args = parser.parse_args(argv)

    in_stream = sys.stdin.buffer
    out_stream = sys.stdout.buffer
    # Stray prints from task code must not corrupt the frame stream.
    sys.stdout = sys.stderr
    return serve(in_stream, out_stream, heartbeat=args.heartbeat)


if __name__ == "__main__":
    raise SystemExit(main())
