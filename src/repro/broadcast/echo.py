"""Non-authenticated broadcast primitive (the Srikanth-Toueg echo broadcast).

Without signatures, faulty processes could claim that other processes said
"it is time for round k".  The echo primitive prevents this with two message
types and two thresholds, requiring ``n > 3f``:

* a process *broadcasts* round ``k`` by sending ``(init, k)`` to everyone;
* on receiving ``(init, k)`` from ``f + 1`` distinct processes, a process
  sends ``(echo, k)`` to everyone (at most once per round);
* on receiving ``(echo, k)`` from ``f + 1`` distinct processes, a process also
  sends ``(echo, k)`` (if it has not yet);
* on receiving ``(echo, k)`` from ``2f + 1`` distinct processes, it *accepts*
  round ``k``.

Properties (with ``n > 3f``):

* *Unforgeability*: an echo requires ``f + 1`` inits or ``f + 1`` echoes, so
  the first correct echo requires an init from a correct process; acceptance
  requires ``2f + 1`` echoes of which at least ``f + 1`` are correct.
* *Relay*: if a correct process accepts at time ``t``, at least ``f + 1``
  correct processes echoed by ``t``; their echoes reach everyone by
  ``t + tdel``, causing every correct process to echo by then, so everyone has
  ``n - f >= 2f + 1`` echoes by ``t + 2*tdel``.
* *Correctness*: if all correct processes broadcast (init) by ``t``, everyone
  has ``f + 1`` inits by ``t + tdel`` and ``2f + 1`` echoes by ``t + 2*tdel``.

:class:`EchoTracker` is the pure state machine; the owning process performs
the actual sends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .primitive import BroadcastTracker, PrimitiveActions


@dataclass
class _RoundState:
    init_senders: set[int] = field(default_factory=set)
    echo_senders: set[int] = field(default_factory=set)
    echoed: bool = False
    accept_reported: bool = False


class EchoTracker(BroadcastTracker):
    """Per-round init/echo bookkeeping with thresholds ``f+1`` (echo) and ``2f+1`` (accept)."""

    def __init__(self, n: int, f: int, max_round_lookahead: Optional[int] = 1000) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if f < 0 or 3 * f >= n:
            raise ValueError(f"echo broadcast requires n > 3f, got n={n}, f={f}")
        self.n = n
        self.f = f
        self.echo_threshold = f + 1
        self.accept_threshold = 2 * f + 1
        self.max_round_lookahead = max_round_lookahead
        self._rounds: dict[int, _RoundState] = {}
        self._floor = 0

    # -- window management -----------------------------------------------------

    def set_floor(self, round_: int) -> None:
        """Ignore (and forget) all rounds strictly below ``round_``."""
        self._floor = max(self._floor, round_)
        for r in [r for r in self._rounds if r < self._floor]:
            del self._rounds[r]

    def _state_for(self, round_: int) -> Optional[_RoundState]:
        if round_ < self._floor:
            return None
        if self.max_round_lookahead is not None and round_ > self._floor + self.max_round_lookahead:
            return None
        return self._rounds.setdefault(round_, _RoundState())

    # -- recording ---------------------------------------------------------------

    def _evaluate(self, state: _RoundState) -> PrimitiveActions:
        send_echo = False
        accept = False
        if not state.echoed and (
            len(state.init_senders) >= self.echo_threshold
            or len(state.echo_senders) >= self.echo_threshold
        ):
            send_echo = True
        if not state.accept_reported and len(state.echo_senders) >= self.accept_threshold:
            accept = True
            state.accept_reported = True
        return PrimitiveActions(send_echo=send_echo, accept=accept)

    def record_init(self, round_: int, sender: int) -> PrimitiveActions:
        """Record an ``(init, round)`` message from ``sender``."""
        state = self._state_for(round_)
        if state is None:
            return PrimitiveActions()
        state.init_senders.add(sender)
        return self._evaluate(state)

    def record_echo(self, round_: int, sender: int) -> PrimitiveActions:
        """Record an ``(echo, round)`` message from ``sender``."""
        state = self._state_for(round_)
        if state is None:
            return PrimitiveActions()
        state.echo_senders.add(sender)
        return self._evaluate(state)

    def note_own_init(self, round_: int, own_pid: int) -> PrimitiveActions:
        """Count the process's own init toward its thresholds."""
        return self.record_init(round_, own_pid)

    def note_own_echo(self, round_: int, own_pid: int) -> PrimitiveActions:
        """Count the process's own echo toward its thresholds and mark it as echoed."""
        state = self._state_for(round_)
        if state is None:
            return PrimitiveActions()
        state.echoed = True
        state.echo_senders.add(own_pid)
        return self._evaluate(state)

    def mark_echoed(self, round_: int) -> None:
        """Remember that an echo for ``round_`` has been sent (suppresses duplicates)."""
        state = self._state_for(round_)
        if state is not None:
            state.echoed = True

    def has_echoed(self, round_: int) -> bool:
        state = self._rounds.get(round_)
        return bool(state and state.echoed)

    # -- queries ---------------------------------------------------------------------

    def support(self, round_: int) -> int:
        state = self._rounds.get(round_)
        return len(state.echo_senders) if state else 0

    def init_support(self, round_: int) -> int:
        state = self._rounds.get(round_)
        return len(state.init_senders) if state else 0

    def reached(self, round_: int) -> bool:
        return self.support(round_) >= self.accept_threshold

    def rounds_with_support(self) -> list[int]:
        return sorted(r for r, s in self._rounds.items() if s.init_senders or s.echo_senders)

    def reached_rounds(self, minimum_round: int = 0) -> list[int]:
        """Rounds at or above ``minimum_round`` whose acceptance threshold is reached."""
        return sorted(r for r in self._rounds if r >= minimum_round and self.reached(r))
