"""The broadcast-primitive abstraction.

Srikanth and Toueg's key structuring idea is that both of their clock
synchronization algorithms are the *same* algorithm on top of different
implementations of a broadcast primitive with three properties.  For a
"round k" broadcast:

* **Correctness** -- if enough correct processes broadcast round ``k`` by real
  time ``t``, then every correct process accepts round ``k`` by
  ``t + latency`` (``latency = tdel`` with signatures, ``2*tdel`` with echoes).
* **Unforgeability** -- if no correct process has broadcast round ``k`` by
  time ``t``, then no correct process accepts round ``k`` by ``t`` (faulty
  processes alone cannot trigger an acceptance).
* **Relay** -- if a correct process accepts round ``k`` at time ``t``, then
  every correct process accepts round ``k`` by ``t + relay`` (``relay = tdel``
  with signatures, ``2*tdel`` with echoes).

This module defines the tiny shared vocabulary (the decision record returned
by the trackers, and the abstract interface); the two concrete trackers live
in :mod:`repro.broadcast.authenticated` and :mod:`repro.broadcast.echo`.
The trackers are deliberately pure state machines -- no clocks, no network --
so the properties can be unit- and property-tested in isolation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class PrimitiveActions:
    """What a tracker asks its owning process to do after recording a message."""

    #: The process should send an echo for ``round`` (non-authenticated primitive only).
    send_echo: bool = False
    #: The process newly reached the acceptance threshold for ``round``.
    accept: bool = False

    def __or__(self, other: "PrimitiveActions") -> "PrimitiveActions":
        return PrimitiveActions(
            send_echo=self.send_echo or other.send_echo,
            accept=self.accept or other.accept,
        )


NO_ACTIONS = PrimitiveActions()


class BroadcastTracker(ABC):
    """Common query interface of the two broadcast-primitive trackers."""

    @abstractmethod
    def support(self, round_: int) -> int:
        """Number of distinct supporters counted toward acceptance of ``round_``."""

    @abstractmethod
    def reached(self, round_: int) -> bool:
        """Whether the acceptance threshold for ``round_`` has been reached."""

    @abstractmethod
    def rounds_with_support(self) -> list[int]:
        """Rounds for which at least one supporting message was recorded."""
