"""Authenticated broadcast primitive: acceptance by ``f + 1`` distinct signatures.

A process *broadcasts* round ``k`` by signing the statement
:class:`~repro.core.messages.RoundContent`\\ ``(k)`` and sending the signature
to everyone.  A process *accepts* round ``k`` once it holds valid signatures
on that statement from ``f + 1`` distinct processes; since at most ``f``
processes are faulty, at least one signature comes from a correct process, so
the primitive is unforgeable.  Upon acceptance the process forwards the whole
signature set (see :class:`~repro.core.messages.SignatureBundle`), which makes
every other correct process accept within one message delay -- the relay
property.  Correctness holds because with ``n > 2f`` there are at least
``f + 1`` correct processes whose own signatures reach everyone within one
delay of their broadcasts.

:class:`SignatureTracker` is the pure bookkeeping part: it validates and
deduplicates signatures per round and reports when the threshold is reached.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..crypto.signatures import KeyStore, SecretKey, Signature, sign
from .primitive import BroadcastTracker


class SignatureTracker(BroadcastTracker):
    """Collects valid round-``k`` signatures from distinct signers.

    Parameters
    ----------
    keystore:
        The PKI used to verify signatures.
    threshold:
        Number of distinct signers required to accept (``f + 1``).
    content_factory:
        Callable mapping a round number to the signed content object.  It is
        injected so the same tracker can serve the start-up ("ready") phase.
    max_round_lookahead:
        Rounds further than this beyond the highest accepted round are
        dropped, bounding memory against flooding adversaries.  ``None``
        disables the cap.
    """

    def __init__(
        self,
        keystore: KeyStore,
        threshold: int,
        content_factory,
        max_round_lookahead: Optional[int] = 1000,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.keystore = keystore
        self.threshold = threshold
        self.content_factory = content_factory
        self.max_round_lookahead = max_round_lookahead
        self._signatures: dict[int, dict[int, Signature]] = {}
        self._floor = 0  # rounds below this are stale and ignored

    # -- recording -----------------------------------------------------------

    def set_floor(self, round_: int) -> None:
        """Ignore (and forget) all rounds strictly below ``round_``."""
        self._floor = max(self._floor, round_)
        for r in [r for r in self._signatures if r < self._floor]:
            del self._signatures[r]

    def _within_window(self, round_: int) -> bool:
        if round_ < self._floor:
            return False
        if self.max_round_lookahead is None:
            return True
        return round_ <= self._floor + self.max_round_lookahead

    def add(self, round_: int, signature: Signature) -> bool:
        """Record a received signature.  Returns True iff it was valid and new."""
        if not self._within_window(round_):
            return False
        content = self.content_factory(round_)
        if not self.keystore.verify(signature, content):
            return False
        per_round = self._signatures.setdefault(round_, {})
        if signature.signer in per_round:
            return False
        per_round[signature.signer] = signature
        return True

    def add_own(self, round_: int, secret_key: SecretKey) -> Signature:
        """Sign round ``round_`` with ``secret_key`` and record the signature."""
        signature = sign(secret_key, self.content_factory(round_))
        self.add(round_, signature)
        return signature

    def add_many(self, round_: int, signatures: Iterable[Signature]) -> int:
        """Record a bundle of signatures; returns how many were valid and new."""
        return sum(1 for s in signatures if self.add(round_, s))

    # -- queries --------------------------------------------------------------

    def support(self, round_: int) -> int:
        return len(self._signatures.get(round_, {}))

    def reached(self, round_: int) -> bool:
        return self.support(round_) >= self.threshold

    def signatures(self, round_: int) -> tuple[Signature, ...]:
        """All valid signatures recorded for ``round_``, ordered by signer id."""
        per_round = self._signatures.get(round_, {})
        return tuple(per_round[s] for s in sorted(per_round))

    def acceptance_proof(self, round_: int) -> tuple[Signature, ...]:
        """A minimal set of ``threshold`` signatures proving the acceptance of ``round_``."""
        sigs = self.signatures(round_)
        if len(sigs) < self.threshold:
            raise ValueError(f"round {round_} has only {len(sigs)} signatures, need {self.threshold}")
        return sigs[: self.threshold]

    def has_signer(self, round_: int, signer: int) -> bool:
        """Whether a valid signature by ``signer`` for ``round_`` was recorded."""
        return signer in self._signatures.get(round_, {})

    def rounds_with_support(self) -> list[int]:
        return sorted(r for r, sigs in self._signatures.items() if sigs)

    def reached_rounds(self, minimum_round: int = 0) -> list[int]:
        """Rounds at or above ``minimum_round`` whose threshold has been reached, sorted."""
        return sorted(
            r for r in self._signatures if r >= minimum_round and self.reached(r)
        )
