"""Broadcast primitives underlying the Srikanth-Toueg synchronizers."""

from .authenticated import SignatureTracker
from .echo import EchoTracker
from .primitive import NO_ACTIONS, BroadcastTracker, PrimitiveActions

__all__ = [
    "BroadcastTracker",
    "PrimitiveActions",
    "NO_ACTIONS",
    "SignatureTracker",
    "EchoTracker",
]
