"""Execution traces.

A trace records everything the analysis layer needs to measure precision,
accuracy and liveness *exactly*:

* each process's hardware clock object (piecewise linear, known to the
  analysis but of course not to the processes),
* the step function of logical-clock adjustments applied by the algorithm,
* the resynchronization ("pulse") events with round numbers,
* message counters (from the network stats).

Because hardware clocks are piecewise linear and adjustments are step
functions, every honest logical clock is a piecewise-linear function of real
time whose breakpoints are known, so the analysis can compute worst-case skew
exactly rather than by sampling.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .clocks import HardwareClock


@dataclass(frozen=True)
class ResyncEvent:
    """One resynchronization (acceptance of a round) at one process."""

    pid: int
    round: int
    time: float
    logical_before: float
    logical_after: float

    @property
    def adjustment(self) -> float:
        """Size of the clock correction applied at this resynchronization."""
        return self.logical_after - self.logical_before


@dataclass
class ProcessTrace:
    """Per-process view of an execution."""

    pid: int
    clock: HardwareClock
    faulty: bool = False
    adjustment_times: list[float] = field(default_factory=list)
    adjustment_values: list[float] = field(default_factory=list)
    resyncs: list[ResyncEvent] = field(default_factory=list)
    crashed_at: Optional[float] = None

    def record_adjustment(self, time: float, adjustment: float) -> None:
        """Record that from real time ``time`` on, C(t) = H(t) + adjustment."""
        if self.adjustment_times and time < self.adjustment_times[-1]:
            raise ValueError("adjustments must be recorded in time order")
        self.adjustment_times.append(time)
        self.adjustment_values.append(adjustment)

    def adjustment_at(self, t: float) -> float:
        """The adjustment in effect at real time ``t`` (0 before the first record)."""
        i = bisect.bisect_right(self.adjustment_times, t) - 1
        if i < 0:
            return 0.0
        return self.adjustment_values[i]

    def adjustment_before(self, t: float) -> float:
        """The adjustment in effect immediately *before* real time ``t``."""
        i = bisect.bisect_left(self.adjustment_times, t) - 1
        if i < 0:
            return 0.0
        return self.adjustment_values[i]

    def logical_at(self, t: float) -> float:
        """Logical clock value C(t) = H(t) + adjustment(t)."""
        return self.clock.read(t) + self.adjustment_at(t)

    def logical_before(self, t: float) -> float:
        """Logical clock value immediately before real time ``t``."""
        return self.clock.read(t) + self.adjustment_before(t)

    def breakpoints(self) -> list[float]:
        """All real times at which this logical clock's slope or value changes."""
        points = list(self.clock.breakpoints())
        points.extend(self.adjustment_times)
        return points

    def rounds_accepted(self) -> list[int]:
        """Round numbers accepted by this process, in acceptance order."""
        return [event.round for event in self.resyncs]

    def resync_times(self) -> list[float]:
        """Real times of this process's resynchronizations."""
        return [event.time for event in self.resyncs]


class Trace:
    """Whole-execution record shared by the engine, processes and analysis."""

    def __init__(self) -> None:
        self.processes: dict[int, ProcessTrace] = {}
        self.message_stats: dict[str, int] = {}
        self.total_messages: int = 0
        self.end_time: float = 0.0
        self.notes: list[str] = []

    # -- construction -------------------------------------------------------

    def add_process(self, pid: int, clock: HardwareClock, faulty: bool = False) -> ProcessTrace:
        if pid in self.processes:
            raise ValueError(f"process {pid} already registered in trace")
        ptrace = ProcessTrace(pid=pid, clock=clock, faulty=faulty)
        self.processes[pid] = ptrace
        return ptrace

    def record_adjustment(self, pid: int, time: float, adjustment: float) -> None:
        self.processes[pid].record_adjustment(time, adjustment)

    def record_resync(self, event: ResyncEvent) -> None:
        self.processes[event.pid].resyncs.append(event)

    def record_crash(self, pid: int, time: float) -> None:
        self.processes[pid].crashed_at = time

    def note(self, text: str) -> None:
        """Attach a free-form annotation (used by experiments)."""
        self.notes.append(text)

    # -- queries ------------------------------------------------------------

    def honest_pids(self) -> list[int]:
        """Process ids of non-faulty processes, sorted."""
        return sorted(pid for pid, p in self.processes.items() if not p.faulty)

    def faulty_pids(self) -> list[int]:
        """Process ids of faulty processes, sorted."""
        return sorted(pid for pid, p in self.processes.items() if p.faulty)

    def honest(self) -> list[ProcessTrace]:
        """Traces of the honest processes."""
        return [self.processes[pid] for pid in self.honest_pids()]

    def all_breakpoints(self, pids: Optional[Iterable[int]] = None) -> list[float]:
        """Sorted union of logical-clock breakpoints over the given processes."""
        if pids is None:
            pids = self.honest_pids()
        points: set[float] = {0.0, self.end_time}
        for pid in pids:
            points.update(self.processes[pid].breakpoints())
        return sorted(t for t in points if 0.0 <= t <= self.end_time)

    def resync_events(self, honest_only: bool = True) -> list[ResyncEvent]:
        """All resynchronization events, sorted by time."""
        pids = self.honest_pids() if honest_only else sorted(self.processes)
        events: list[ResyncEvent] = []
        for pid in pids:
            events.extend(self.processes[pid].resyncs)
        events.sort(key=lambda e: (e.time, e.pid))
        return events

    def max_round(self) -> int:
        """Largest round accepted by any honest process (0 if none)."""
        best = 0
        for ptrace in self.honest():
            if ptrace.resyncs:
                best = max(best, max(e.round for e in ptrace.resyncs))
        return best

    def min_completed_round(self) -> int:
        """Largest round accepted by *every* honest process (0 if none)."""
        rounds = []
        for ptrace in self.honest():
            accepted = [e.round for e in ptrace.resyncs]
            rounds.append(max(accepted) if accepted else 0)
        return min(rounds) if rounds else 0
