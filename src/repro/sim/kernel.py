"""Kernel selection: which engine steps a scenario, and when the vector one may.

PRs 1-5 built the scaling spine (recorder seam, adaptive horizons, mergeable
summaries, shards, distributed executors), but every worker still stepped the
pure-Python discrete-event loop, so single-run latency caps the large scaling
grids.  This module is the *policy* half of the batched NumPy kernel: it
decides, per scenario, whether the vectorized round-level evaluator
(:mod:`repro.sim.vectorized`) is allowed to replace the event loop.  The
mechanism half -- the array-level round evaluation itself -- lives in
:mod:`repro.sim.vectorized`; the full design note is ``docs/kernel.md``.

Contract
--------

* The event loop is the *parity oracle*.  The vector kernel is only eligible
  for scenario families it provably matches float-for-float -- same
  :class:`~repro.sim.recorder.OnlineMetricsSummary`, field for field,
  including message counts and sampled message provenance.  Eligibility is
  therefore a whitelist, never a blacklist: anything not explicitly analyzed
  runs on the event loop.
* Selection is three-valued (``"event"``, ``"vector"``, ``"auto"``) and
  resolves ``Scenario.kernel`` -> ``REPRO_KERNEL`` env -> ``"auto"``.
  ``"auto"`` uses the vector kernel exactly when eligible; ``"vector"``
  *requests* it and records an :meth:`~repro.sim.recorder.Recorder.on_note`
  explaining the fallback when the scenario is ineligible (it never errors).
* Even an eligible scenario may fall back per run: the vector evaluator
  re-derives the event loop's tie-breaking order from first principles and
  refuses (lane by lane) whenever an execution leaves the regime where that
  derivation is proven -- again with an ``on_note`` naming the reason.

The result cache keys on the resolved kernel (cache schema v8), so switching
kernels never serves a result recorded under the other engine even though the
two are float-identical by construction -- parity is *enforced* by tests and
the bench gate (``tests/test_kernel_parity.py``, ``scripts/bench.py
--gate``), not assumed by the cache.
"""

from __future__ import annotations

import os
from typing import Optional

#: Valid values of ``Scenario.kernel`` / ``REPRO_KERNEL`` (``Scenario.kernel``
#: may also be ``None``, meaning "defer to the environment, then auto").
KERNELS = ("auto", "event", "vector")

#: Environment variable consulted when ``Scenario.kernel`` is ``None``.
KERNEL_ENV = "REPRO_KERNEL"

#: Prefix of every fallback annotation the kernel layer records, so tests and
#: operators can grep one stable marker in ``summary.notes``.
FALLBACK_NOTE_PREFIX = "vector kernel fallback:"

#: Algorithms the vector layer evaluates exactly: the authenticated
#: signature-chain rule (f+1 distinct signers) and the echo broadcast rule
#: (f+1 inits/echoes -> echo, 2f+1 echoes -> accept).
ELIGIBLE_ALGORITHMS = frozenset(["auth", "echo"])

#: Attacks whose faulty behaviour the vector evaluator models exactly --
#: deterministic ones, plus the randomized ones (``forge_flood`` and the
#: ``random_*`` strategies) whose per-adversary ``random.Random(seed + pid)``
#: streams the evaluator replays draw for draw through per-behaviour replay
#: tables.
ELIGIBLE_ATTACKS = frozenset(
    [None, "silent", "crash", "eager", "two_faced", "laggard", "skew_max",
     "forge_flood", "random_silence", "random_two_faced", "random_laggard"]
)

#: Clock assignments the vector layer inverts exactly: fixed-rate clocks
#: (closed form) and drifting (``random``) clocks, whose piecewise-linear
#: trajectories are reconstructed from ``Random(seed)`` up front and
#: inverted by a vectorized segment walk over the precomputed breakpoints.
ELIGIBLE_CLOCK_MODES = frozenset(["extreme", "nominal", "random"])

#: Delay policies the vector layer reproduces exactly: the deterministic
#: per-(sender, destination) ones, plus ``uniform``, whose network RNG the
#: evaluator consumes in the event loop's exact global send order.  ``"min"``
#: (zero-delay cascades, even with ``tmin = 0``) is served by the
#: exact-replay engine, whose (time, creation-seq) heap resolves the
#: cascades with the event loop's exact discipline.
ELIGIBLE_DELAY_MODES = frozenset(["max", "midpoint", "targeted", "uniform", "min"])


def _eligible_names(eligible) -> str:
    """Render a whitelist set as a stable, human-readable reason fragment."""
    return ", ".join(
        sorted(repr(name) for name in eligible if name is not None)
    )

_numpy_checked = False
_numpy_module = None


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it is not installed.

    The package declares no hard dependencies, so the vector kernel gates its
    import: without NumPy every scenario is simply ineligible (reason
    ``"numpy is not installed"``) and the event loop serves everything.
    """
    global _numpy_checked, _numpy_module
    if not _numpy_checked:
        try:
            import numpy  # noqa: PLC0415 -- optional dependency, gated import

            _numpy_module = numpy
        except ImportError:  # pragma: no cover - exercised only without numpy
            _numpy_module = None
        _numpy_checked = True
    return _numpy_module


def resolve_kernel(scenario) -> str:
    """The effective kernel selection for ``scenario``.

    ``Scenario.kernel`` wins when set; otherwise the ``REPRO_KERNEL``
    environment variable; otherwise ``"auto"``.  The result cache keys on
    this resolved value (schema v8), so an environment override changes the
    cache identity exactly like the explicit field does.
    """
    kernel = getattr(scenario, "kernel", None)
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV, "").strip() or "auto"
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


def kernel_ineligibility(scenario, trace_level: str) -> Optional[str]:
    """Why the vector kernel may not serve ``scenario``, or ``None`` if it may.

    This is the static half of the float-parity contract: every check below
    corresponds to a regime the array evaluation in
    :mod:`repro.sim.vectorized` is proven float-identical to the event loop
    in (see ``docs/kernel.md`` for the argument).  Dynamic, per-execution
    refusals (tie-breaking regimes the proof does not cover) are reported by
    the evaluator itself.

    ``scenario`` is duck-typed (anything with the :class:`Scenario` fields
    works) so this module never imports the workloads layer.
    """
    if numpy_or_none() is None:
        return "numpy is not installed"
    if trace_level != "metrics":
        return "full traces require the event loop (vector kernel is metrics-only)"
    algorithm = getattr(scenario, "algorithm", None)
    if algorithm not in ELIGIBLE_ALGORITHMS:
        return (
            f"algorithm {algorithm!r} is not vectorized "
            f"(only {_eligible_names(ELIGIBLE_ALGORITHMS)})"
        )
    attack = getattr(scenario, "attack", None)
    if attack not in ELIGIBLE_ATTACKS:
        return (
            f"attack {attack!r} is not vectorized "
            f"(only benign or {_eligible_names(ELIGIBLE_ATTACKS)})"
        )
    if getattr(scenario, "clock_mode", None) not in ELIGIBLE_CLOCK_MODES:
        return (
            f"clock_mode {getattr(scenario, 'clock_mode', None)!r} needs the "
            f"event loop (only {_eligible_names(ELIGIBLE_CLOCK_MODES)})"
        )
    if getattr(scenario, "delay_mode", None) not in ELIGIBLE_DELAY_MODES:
        return (
            f"delay_mode {getattr(scenario, 'delay_mode', None)!r} needs the "
            f"event loop (only {_eligible_names(ELIGIBLE_DELAY_MODES)})"
        )
    if getattr(scenario, "use_startup", False):
        return "start-up protocol runs are not vectorized"
    if getattr(scenario, "joiner_count", 0):
        return "joiner scenarios are not vectorized"
    if getattr(scenario, "monotonic", False):
        return "monotonic (no-backward-correction) ablation is not vectorized"
    if getattr(scenario, "grace", 0.0) != 0.0:
        return "grace windows past round completion are not vectorized"
    params = scenario.params
    if algorithm == "echo" and params.n <= 3 * params.f:
        # The event loop's EchoTracker raises ValueError for this
        # configuration; stay ineligible so the same error surfaces instead
        # of the vector layer masking it.
        return (
            f"echo broadcast requires n > 3f (got n={params.n}, f={params.f}); "
            "the event loop raises on construction"
        )
    honest = params.n - scenario.actual_faults
    if honest < params.f + 1:
        return (
            f"{honest} honest processes cannot meet the f+1={params.f + 1} acceptance "
            "threshold (out-of-spec run); the event loop measures the stall"
        )
    return None


def fallback_note(reason: str) -> str:
    """The ``on_note`` annotation recorded when a requested vector run falls back."""
    return f"{FALLBACK_NOTE_PREFIX} {reason}"
