"""Framework-level process abstraction.

A :class:`Process` is an event-driven participant in a simulation.  It can

* read its hardware clock (but never real time -- honest algorithm code must
  only ever call :meth:`Process.local_time`),
* send point-to-point messages, broadcast, or multicast,
* set timers that fire when its *hardware clock* reaches a given value,
* react to three callbacks: :meth:`on_start`, :meth:`on_message` and
  :meth:`on_timer`.

Algorithm implementations (the Srikanth-Toueg synchronizers, the baselines,
and the Byzantine behaviours) all derive from this class.  Faulty processes
additionally get access to :attr:`Process.real_time` and to explicit delay
control because the adversary is allowed to know everything; honest
implementations must not touch those.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Optional

from .clocks import HardwareClock
from .events import Event
from .network import Envelope, Network
from .recorder import Recorder
from .trace import ProcessTrace, ResyncEvent

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulation


class Timer:
    """Handle for a pending local-clock timer."""

    def __init__(self, key: Hashable, local_target: float, event: Optional[Event]) -> None:
        self.key = key
        self.local_target = local_target
        self._event = event
        self.fired = False

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Timer(key={self.key!r}, local_target={self.local_target!r}, fired={self.fired})"


class Process:
    """Base class for all simulated processes."""

    #: Whether this process counts as faulty for analysis purposes.
    faulty: bool = False

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._sim: Optional["Simulation"] = None
        self._network: Optional[Network] = None
        self._clock: Optional[HardwareClock] = None
        self._recorder: Optional[Recorder] = None
        self._timers: list[Timer] = []
        self._started = False
        self._halted = False

    # -- wiring (called by the engine) --------------------------------------

    def bind(
        self,
        sim: "Simulation",
        network: Network,
        clock: HardwareClock,
        recorder: Recorder,
    ) -> None:
        """Attach this process to a simulation; called by ``Simulation.add_process``."""
        self._sim = sim
        self._network = network
        self._clock = clock
        self._recorder = recorder
        network.register(self.pid, self._handle_envelope)

    @property
    def sim(self) -> "Simulation":
        if self._sim is None:
            raise RuntimeError(f"process {self.pid} is not bound to a simulation")
        return self._sim

    @property
    def network(self) -> Network:
        if self._network is None:
            raise RuntimeError(f"process {self.pid} is not bound to a network")
        return self._network

    @property
    def clock(self) -> HardwareClock:
        if self._clock is None:
            raise RuntimeError(f"process {self.pid} has no hardware clock")
        return self._clock

    @property
    def recorder(self) -> Recorder:
        if self._recorder is None:
            raise RuntimeError(f"process {self.pid} is not bound to a recorder")
        return self._recorder

    @property
    def trace(self) -> ProcessTrace:
        """This process's trace (only with a trace-keeping recorder)."""
        return self.recorder.process_trace(self.pid)

    @property
    def halted(self) -> bool:
        return self._halted

    # -- observation (emitted into the bound recorder) -----------------------

    def record_adjustment(self, time: float, adjustment: float) -> None:
        """Report that from real time ``time`` on, C(t) = H(t) + ``adjustment``."""
        self.recorder.on_adjustment(self.pid, time, adjustment)

    def record_resync(self, event: ResyncEvent) -> None:
        """Report a resynchronization (round acceptance) of this process."""
        self.recorder.on_resync(event)

    # -- environment available to algorithm code ----------------------------

    def local_time(self) -> float:
        """Current hardware-clock reading.  The only notion of time honest code may use."""
        return self.clock.read(self.sim.now)

    @property
    def real_time(self) -> float:
        """Current real time.  Only adversarial/faulty code and tests may use this."""
        return self.sim.now

    def peers(self) -> list[int]:
        """Ids of all processes attached to the network (including this one)."""
        return self.network.participants()

    def other_peers(self) -> list[int]:
        """Ids of all processes except this one."""
        return [pid for pid in self.peers() if pid != self.pid]

    def send(self, dest: int, payload: object, delay: Optional[float] = None) -> None:
        """Send a point-to-point message."""
        if self._halted:
            return
        self.network.send(self.pid, dest, payload, delay=delay)

    def broadcast(self, payload: object) -> None:
        """Send ``payload`` to every other process."""
        if self._halted:
            return
        self.network.broadcast(self.pid, payload)

    def multicast(self, destinations: Iterable[int], payload: object) -> None:
        """Send ``payload`` to an explicit subset of processes."""
        if self._halted:
            return
        self.network.multicast(self.pid, destinations, payload)

    def set_timer_local(self, local_target: float, key: Hashable = None) -> Timer:
        """Schedule :meth:`on_timer` for when the hardware clock reads ``local_target``.

        If the clock already reads ``local_target`` or more, the timer fires
        immediately (at the current simulation time).
        """
        real_target = self.clock.invert(local_target)
        real_target = max(real_target, self.sim.now)
        timer = Timer(key=key, local_target=local_target, event=None)
        timer._event = self.sim.schedule_at(real_target, self._fire_timer, timer)
        self._timers.append(timer)
        return timer

    def cancel_timer(self, timer: Timer) -> None:
        """Cancel a pending timer (no-op if it already fired)."""
        if not timer.fired:
            self.sim.cancel(timer._event)

    def cancel_all_timers(self) -> None:
        """Cancel every pending timer of this process."""
        for timer in self._timers:
            self.cancel_timer(timer)
        self._timers = [t for t in self._timers if not t.fired and not t.cancelled]

    def halt(self) -> None:
        """Stop participating: cancel timers and ignore all future deliveries."""
        self._halted = True
        self.cancel_all_timers()
        self.recorder.on_crash(self.pid, self.sim.now)

    # -- hooks for subclasses ------------------------------------------------

    def on_start(self) -> None:
        """Called once when the process boots."""

    def on_message(self, sender: int, payload: object) -> None:
        """Called when a message is delivered to this process."""

    def on_timer(self, key: Hashable) -> None:
        """Called when a timer set via :meth:`set_timer_local` fires."""

    # -- internal dispatch ----------------------------------------------------

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self.on_start()

    def _fire_timer(self, timer: Timer) -> None:
        if self._halted or timer.cancelled:
            return
        timer.fired = True
        self._timers = [t for t in self._timers if t is not timer]
        self.on_timer(timer.key)

    def _handle_envelope(self, envelope: Envelope) -> None:
        if self._halted or not self._started:
            return
        self.on_message(envelope.sender, envelope.payload)
