"""The discrete-event simulation engine.

A :class:`Simulation` owns the event queue, the network, the recorder, and
the set of processes.  Its job is deliberately small: advance virtual real
time from event to event, dispatch callbacks, and expose scheduling
primitives to the network and the processes.  All protocol logic lives in
the processes; all *observation* lives in the pluggable
:class:`~repro.sim.recorder.Recorder` the engine (and everything bound to
it) emits into.  The default recorder keeps a full :class:`Trace`; passing
an :class:`~repro.sim.recorder.OnlineMetricsRecorder` instead streams scalar
metrics in O(n) memory without retaining history.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .clocks import HardwareClock
from .events import Event, EventQueue
from .network import DelayPolicy, Network
from .process import Process
from .recorder import FullTraceRecorder, Recorder
from .trace import Trace


class Simulation:
    """A single-threaded discrete-event simulation of a message-passing system."""

    def __init__(
        self,
        tmin: float = 0.0,
        tdel: float = 0.01,
        delay_policy: Optional[DelayPolicy] = None,
        seed: int = 0,
        recorder: Optional[Recorder] = None,
        strict_scheduling: bool = False,
    ) -> None:
        self._now = 0.0
        #: Raise instead of clamping when an action is scheduled in the past.
        self.strict_scheduling = strict_scheduling
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self.recorder: Recorder = recorder if recorder is not None else FullTraceRecorder()
        self.network = Network(
            self, tmin=tmin, tdel=tdel, policy=delay_policy, seed=seed + 1, recorder=self.recorder
        )
        self.processes: dict[int, Process] = {}
        self._boot_times: dict[int, float] = {}
        self.stop_condition: Optional[Callable[["Simulation"], bool]] = None
        self._stopped = False

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current real (simulated) time."""
        return self._now

    @property
    def trace(self) -> Trace:
        """The full execution trace (only with a trace-keeping recorder)."""
        return self.recorder.trace

    # -- scheduling -----------------------------------------------------------

    def schedule_at(self, time: float, action: Callable[..., None], *args) -> Event:
        """Schedule ``action(*args)`` at absolute real time ``time`` (>= now).

        A past ``time`` is clamped to ``now`` -- but never silently: the
        clamp is annotated through the recorder (``on_note``) so a scheduling
        bug cannot masquerade as benign event reordering, and with
        ``strict_scheduling`` it raises instead.
        """
        if time < self._now:
            if self.strict_scheduling:
                raise ValueError(
                    f"schedule_at: time {time!r} is in the past (now={self._now!r})"
                )
            self.recorder.on_note(
                f"schedule_at: past time {time!r} clamped to now={self._now!r}"
            )
            time = self._now
        return self.queue.push(time, action, *args)

    def schedule_after(self, delay: float, action: Callable[..., None], *args) -> Event:
        """Schedule ``action(*args)`` after ``delay`` units of real time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self._now + delay, action, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    # -- population -----------------------------------------------------------

    def add_process(
        self,
        process: Process,
        clock: HardwareClock,
        faulty: Optional[bool] = None,
        boot_time: float = 0.0,
    ) -> Process:
        """Attach ``process`` to the simulation with the given hardware clock.

        ``faulty`` overrides the process's own ``faulty`` attribute for
        observation purposes.  ``boot_time`` is the real time at which
        ``on_start`` runs.
        """
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid}")
        is_faulty = process.faulty if faulty is None else faulty
        self.recorder.register_process(process.pid, clock, faulty=is_faulty)
        process.faulty = is_faulty
        process.bind(self, self.network, clock, self.recorder)
        self.processes[process.pid] = process
        self._boot_times[process.pid] = boot_time
        self.schedule_at(boot_time, process._start)
        return process

    def honest_processes(self) -> list[Process]:
        """The processes marked non-faulty, sorted by pid."""
        return [self.processes[pid] for pid in sorted(self.processes) if not self.processes[pid].faulty]

    def faulty_processes(self) -> list[Process]:
        """The processes marked faulty, sorted by pid."""
        return [self.processes[pid] for pid in sorted(self.processes) if self.processes[pid].faulty]

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; return False if the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise RuntimeError("event queue returned an event in the past")
        self._now = event.time
        event.fire()
        return True

    def run_until(self, t_end: float):
        """Run until real time ``t_end`` (inclusive of events at ``t_end``).

        Returns the recorder's finalized result: the :class:`Trace` with the
        default full-trace recorder, an
        :class:`~repro.sim.recorder.OnlineMetricsSummary` with the streaming
        metrics recorder.
        """
        if t_end < self._now:
            raise ValueError("cannot run into the past")
        # A stop condition that triggered in an earlier run segment must not
        # leak into this one (it previously suppressed the advance to t_end).
        self._stopped = False
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > t_end:
                break
            self.step()
            if self.stop_condition is not None and self.stop_condition(self):
                self._stopped = True
                break
        if not self._stopped:
            self._now = t_end
        return self.recorder.finalize(self._now, self.network.stats)

    def run_until_round(
        self,
        target_round: int,
        t_max: float,
        grace: float = 0.0,
        adaptive: bool = False,
        abort_unreachable: bool = False,
    ):
        """Run until every honest process accepted ``target_round`` (or ``t_max``).

        With ``adaptive=False`` (historical behaviour) the engine polls the
        recorder's completed round after every event and halts on the event
        that completes the target round; ``t_max`` is the static real-time
        budget.  With ``adaptive=True`` the horizon adapts: the recorder
        timestamps the completing resynchronization itself
        (:meth:`~repro.sim.recorder.Recorder.set_round_target`), the loop
        only checks a flag per event, and the run ends at the completion
        instant plus the ``grace`` window (still capped by ``t_max``).  With
        ``grace=0`` the adaptive stop is the exact event the historical poll
        stops on, so both modes observe identical executions; a positive
        grace keeps simulating ``grace`` units of real time past completion.
        ``grace`` is ignored in the historical mode.

        ``abort_unreachable`` (opt-in) ends the run the moment the recorder's
        crash ceiling proves the target round can never complete -- an honest
        crash capped the completable rounds below it -- instead of burning
        the remaining budget.  It never changes a feasible run (the abort
        only fires when the target cannot complete), but it does change the
        measured end time of infeasible ones, which is why it is off by
        default.
        """
        if not adaptive:
            if abort_unreachable:
                def reached(sim: "Simulation") -> bool:
                    recorder = sim.recorder
                    if recorder.min_completed_round() >= target_round:
                        return True
                    if recorder.crash_ceiling < target_round:
                        recorder.on_note(
                            f"abort: round {target_round} unreachable "
                            f"(crash ceiling {recorder.crash_ceiling})"
                        )
                        return True
                    return False
            else:
                def reached(sim: "Simulation") -> bool:
                    return sim.recorder.min_completed_round() >= target_round

            previous = self.stop_condition
            self.stop_condition = reached
            try:
                return self.run_until(t_max)
            finally:
                self.stop_condition = previous

        if t_max < self._now:
            raise ValueError("cannot run into the past")
        if grace < 0:
            raise ValueError(f"grace must be non-negative, got {grace}")
        self._stopped = False
        recorder = self.recorder
        queue = self.queue
        recorder.set_round_target(target_round, now=self._now)
        try:
            deadline: Optional[float] = None
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > t_max:
                    break
                if deadline is None:
                    # The deadline is resolved *before* stepping so a target
                    # that was already complete when the run was armed (e.g.
                    # a resumed segment) cannot let an event past the grace
                    # window fire first.  round_reached_at is always at or
                    # before now, so the deadline can never sit in the past.
                    reached = recorder.round_reached_at
                    if reached is not None and grace > 0.0:
                        deadline = reached + grace
                if deadline is not None and next_time > deadline:
                    break
                self.step()
                if grace == 0.0 and recorder.round_reached_at is not None:
                    # Halt on the completing event itself, exactly like the
                    # historical per-event poll would.
                    self._stopped = True
                    return recorder.finalize(self._now, self.network.stats)
                if abort_unreachable and recorder.round_target_unreachable:
                    # Every path to the target crashed: finishing the budget
                    # cannot change the verdict, so stop at the fatal event.
                    recorder.on_note(
                        f"abort: round {target_round} unreachable "
                        f"(crash ceiling {recorder.crash_ceiling})"
                    )
                    self._stopped = True
                    return recorder.finalize(self._now, self.network.stats)
            if deadline is not None:
                end = min(t_max, deadline)
                self._stopped = end < t_max
            else:
                end = t_max
            self._now = end
            return recorder.finalize(self._now, self.network.stats)
        finally:
            recorder.set_round_target(None, now=self._now)

    @property
    def stopped_early(self) -> bool:
        """Whether the last run ended because the stop condition triggered."""
        return self._stopped
