"""The discrete-event simulation engine.

A :class:`Simulation` owns the event queue, the network, the recorder, and
the set of processes.  Its job is deliberately small: advance virtual real
time from event to event, dispatch callbacks, and expose scheduling
primitives to the network and the processes.  All protocol logic lives in
the processes; all *observation* lives in the pluggable
:class:`~repro.sim.recorder.Recorder` the engine (and everything bound to
it) emits into.  The default recorder keeps a full :class:`Trace`; passing
an :class:`~repro.sim.recorder.OnlineMetricsRecorder` instead streams scalar
metrics in O(n) memory without retaining history.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .clocks import HardwareClock
from .events import Event, EventQueue
from .network import DelayPolicy, Network
from .process import Process
from .recorder import FullTraceRecorder, Recorder
from .trace import Trace


class Simulation:
    """A single-threaded discrete-event simulation of a message-passing system."""

    def __init__(
        self,
        tmin: float = 0.0,
        tdel: float = 0.01,
        delay_policy: Optional[DelayPolicy] = None,
        seed: int = 0,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self._now = 0.0
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self.recorder: Recorder = recorder if recorder is not None else FullTraceRecorder()
        self.network = Network(
            self, tmin=tmin, tdel=tdel, policy=delay_policy, seed=seed + 1, recorder=self.recorder
        )
        self.processes: dict[int, Process] = {}
        self._boot_times: dict[int, float] = {}
        self.stop_condition: Optional[Callable[["Simulation"], bool]] = None
        self._stopped = False

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current real (simulated) time."""
        return self._now

    @property
    def trace(self) -> Trace:
        """The full execution trace (only with a trace-keeping recorder)."""
        return self.recorder.trace

    # -- scheduling -----------------------------------------------------------

    def schedule_at(self, time: float, action: Callable[..., None], *args) -> Event:
        """Schedule ``action(*args)`` at absolute real time ``time`` (>= now)."""
        if time < self._now:
            time = self._now
        return self.queue.push(time, action, *args)

    def schedule_after(self, delay: float, action: Callable[..., None], *args) -> Event:
        """Schedule ``action(*args)`` after ``delay`` units of real time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self._now + delay, action, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self.queue.cancel(event)

    # -- population -----------------------------------------------------------

    def add_process(
        self,
        process: Process,
        clock: HardwareClock,
        faulty: Optional[bool] = None,
        boot_time: float = 0.0,
    ) -> Process:
        """Attach ``process`` to the simulation with the given hardware clock.

        ``faulty`` overrides the process's own ``faulty`` attribute for
        observation purposes.  ``boot_time`` is the real time at which
        ``on_start`` runs.
        """
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid}")
        is_faulty = process.faulty if faulty is None else faulty
        self.recorder.register_process(process.pid, clock, faulty=is_faulty)
        process.faulty = is_faulty
        process.bind(self, self.network, clock, self.recorder)
        self.processes[process.pid] = process
        self._boot_times[process.pid] = boot_time
        self.schedule_at(boot_time, process._start)
        return process

    def honest_processes(self) -> list[Process]:
        """The processes marked non-faulty, sorted by pid."""
        return [self.processes[pid] for pid in sorted(self.processes) if not self.processes[pid].faulty]

    def faulty_processes(self) -> list[Process]:
        """The processes marked faulty, sorted by pid."""
        return [self.processes[pid] for pid in sorted(self.processes) if self.processes[pid].faulty]

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; return False if the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise RuntimeError("event queue returned an event in the past")
        self._now = event.time
        event.fire()
        return True

    def run_until(self, t_end: float):
        """Run until real time ``t_end`` (inclusive of events at ``t_end``).

        Returns the recorder's finalized result: the :class:`Trace` with the
        default full-trace recorder, an
        :class:`~repro.sim.recorder.OnlineMetricsSummary` with the streaming
        metrics recorder.
        """
        if t_end < self._now:
            raise ValueError("cannot run into the past")
        # A stop condition that triggered in an earlier run segment must not
        # leak into this one (it previously suppressed the advance to t_end).
        self._stopped = False
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > t_end:
                break
            self.step()
            if self.stop_condition is not None and self.stop_condition(self):
                self._stopped = True
                break
        if not self._stopped:
            self._now = t_end
        return self.recorder.finalize(self._now, self.network.stats)

    def run_until_round(self, target_round: int, t_max: float):
        """Run until every honest process accepted ``target_round`` (or ``t_max``)."""

        def reached(sim: "Simulation") -> bool:
            return sim.recorder.min_completed_round() >= target_round

        previous = self.stop_condition
        self.stop_condition = reached
        try:
            return self.run_until(t_max)
        finally:
            self.stop_condition = previous

    @property
    def stopped_early(self) -> bool:
        """Whether the last run ended because the stop condition triggered."""
        return self._stopped
