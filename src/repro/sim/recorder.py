"""Pluggable instrumentation: recorders observe executions, the engine emits.

Historically the engine *was* the observer: every simulation built a full
:class:`~repro.sim.trace.Trace` (per-process clocks, every adjustment, every
resynchronization) and the analysis layer re-walked the union of all
logical-clock breakpoints after the fact.  That is the right tool for the
exact-measurement experiments, but it makes every scenario pay O(rounds * n)
memory and a full post-hoc analysis pass even when only a handful of scalar
metrics are wanted -- which is what caps large scaling sweeps.

This module separates the two concerns.  The engine, the framework
:class:`~repro.sim.process.Process`, the network and the algorithm base
classes emit observation events into a :class:`Recorder`:

* :meth:`Recorder.on_adjustment` -- a logical-clock adjustment took effect,
* :meth:`Recorder.on_resync` -- a resynchronization (round acceptance),
* :meth:`Recorder.on_crash` -- a process halted,
* :meth:`Recorder.on_message` -- the network accepted a message for delivery,
* :meth:`Recorder.on_note` -- a free-form annotation,
* :meth:`Recorder.finalize` -- the run (segment) ended.

Two implementations ship here:

* :class:`FullTraceRecorder` reproduces the historical behaviour exactly: it
  owns a :class:`~repro.sim.trace.Trace` and every measurement computed from
  it is byte-identical to the pre-refactor code path.
* :class:`OnlineMetricsRecorder` streams the worst-case-exact scalar metrics
  (precision, accuracy envelope, window-rate extremes, rounds, message
  counts), evaluating logical clocks at exactly the same breakpoints the
  post-hoc analysis would.  Apart from an optional per-resynchronization
  sample buffer for the window-rate extremes, it retains no history.  Its
  results are float-for-float identical to the full-trace pipeline for every
  metric it reports (see ``tests/test_recorder_parity.py``).

Recorders also power the engine's adaptive horizon: the engine arms a target
round via :meth:`Recorder.set_round_target` and both recorders timestamp the
completing resynchronization in O(1) amortized time, so a run can halt the
moment the target round completes without polling an O(n) round scan after
every event.

The recorder seam is where execution backends beyond the single in-process
engine plug in without touching the analysis layer: the sharded backend
(:mod:`repro.runner.sharded`) runs independent replications in worker
processes, each under its own ``OnlineMetricsRecorder(mergeable=True)``, and
folds the resulting :class:`OnlineMetricsSummary` objects through the
associative :meth:`OnlineMetricsSummary.merge` / :func:`merge_summaries`
algebra -- max-combining worst-case skews and envelope constants,
min-combining the completed round, summing message counts, concatenating the
per-process liveness triples, and re-running the exact window-rate hull pass
over the union of retained breakpoint samples -- so a sharded run is
float-for-float identical to the same replications folded serially.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, NamedTuple, Optional

from .trace import ProcessTrace, ResyncEvent, Trace

if TYPE_CHECKING:  # pragma: no cover
    from .clocks import HardwareClock
    from .network import Envelope, NetworkStats


class RecorderError(RuntimeError):
    """Raised when a recorder cannot serve a request (e.g. no trace kept)."""


class MessageSample(NamedTuple):
    """A lightweight summary of one network message, as sampled by
    :class:`OnlineMetricsRecorder(sample_messages=K)`.

    Everything a message-level trace needs for provenance and wire-format
    debugging -- who sent what kind of message to whom, when, and with what
    delay -- without retaining the payload itself, so a sample stays a few
    dozen bytes regardless of message size.
    """

    msg_id: int
    sender: int
    dest: int
    #: The payload's class name (``"ResyncMessage"``, ...), not the payload.
    kind: str
    send_time: float
    deliver_time: float


class Recorder(ABC):
    """Observer interface the simulation substrate emits into.

    Emissions arrive in nondecreasing real-time order (the engine is a
    single-threaded discrete-event loop).  ``register_process`` is called for
    every process before the first event; ``finalize`` is called at the end
    of every ``run_until`` and returns the recorder's result object.
    """

    @abstractmethod
    def register_process(self, pid: int, clock: "HardwareClock", faulty: bool = False) -> None:
        """Attach a process (and its hardware clock) to the recording."""

    @abstractmethod
    def on_adjustment(self, pid: int, time: float, adjustment: float) -> None:
        """From real time ``time`` on, ``C_pid(t) = H_pid(t) + adjustment``."""

    @abstractmethod
    def on_resync(self, event: ResyncEvent) -> None:
        """Process ``event.pid`` accepted round ``event.round`` at ``event.time``."""

    @abstractmethod
    def on_crash(self, pid: int, time: float) -> None:
        """Process ``pid`` halted at real time ``time``."""

    def on_message(self, envelope: "Envelope") -> None:
        """The network accepted ``envelope`` for delivery (default: ignore)."""

    def on_note(self, text: str) -> None:
        """Attach a free-form annotation (default: ignore)."""

    @abstractmethod
    def min_completed_round(self) -> int:
        """Largest round accepted by every non-faulty process (0 if none)."""

    @abstractmethod
    def finalize(self, end_time: float, network_stats: "NetworkStats"):
        """Close the recording at ``end_time`` and return the result object."""

    # -- round-target tracking (adaptive horizon) -----------------------------

    #: Round the engine is waiting for, or None when no target is armed.
    _round_target: Optional[int] = None
    #: Real time at which the target round first completed, or None.
    _round_reached_at: Optional[float] = None
    #: Largest round every honest process can still complete: once an honest
    #: process crashes, no round above its progress is ever completed by all.
    _crash_ceiling: float = math.inf

    @property
    def crash_ceiling(self) -> float:
        """Largest round still completable by every honest process (inf if all alive)."""
        return self._crash_ceiling

    @property
    def round_target_unreachable(self) -> bool:
        """Whether the armed target round can no longer complete.

        True exactly when a target is armed, has not completed, and an honest
        crash capped the completable rounds below it.  The engine's opt-in
        early abort (``run_until_round(abort_unreachable=True)``) reads this
        after every event to stop infeasible runs without burning the full
        static budget.
        """
        return (
            self._round_target is not None
            and self._round_reached_at is None
            and self._crash_ceiling < self._round_target
        )

    @property
    def round_reached_at(self) -> Optional[float]:
        """When the armed target round completed (None while it has not)."""
        return self._round_reached_at

    def set_round_target(self, target: Optional[int], now: float = 0.0) -> None:
        """Arm (or with ``None`` disarm) completion tracking of ``target``.

        The engine's adaptive-horizon loop arms a target instead of polling
        :meth:`min_completed_round` after every event; recorders timestamp
        the completing resynchronization via :meth:`_check_round_target`.
        """
        self._round_target = target
        self._round_reached_at = None
        if target is not None and self.min_completed_round() >= target:
            self._round_reached_at = now

    def _check_round_target(self, time: float) -> None:
        """Record ``time`` as the completion instant if the target is now met."""
        if (
            self._round_target is not None
            and self._round_reached_at is None
            and self.min_completed_round() >= self._round_target
        ):
            self._round_reached_at = time

    # -- full-trace access (only meaningful for history-keeping recorders) ----

    @property
    def trace(self) -> Trace:
        """The full execution trace (raises unless this recorder keeps one)."""
        raise RecorderError(
            f"{type(self).__name__} does not keep an execution trace; "
            "use trace_level='full' (FullTraceRecorder) for history-based analysis"
        )

    def process_trace(self, pid: int) -> ProcessTrace:
        """Process ``pid``'s trace (raises unless this recorder keeps traces)."""
        raise RecorderError(
            f"{type(self).__name__} does not keep per-process traces; "
            "use trace_level='full' (FullTraceRecorder) for history-based analysis"
        )


class FullTraceRecorder(Recorder):
    """The historical observer: record everything into a :class:`Trace`.

    Every measurement the analysis layer computes from the resulting trace is
    exactly what the pre-recorder engine produced.
    """

    def __init__(self) -> None:
        self._trace = Trace()
        # Incrementally maintained copy of Trace.min_completed_round(): the
        # engine's stop check reads it after every event, and recomputing it
        # from the resync lists there is the dominant cost of large full-trace
        # runs.  All engine-driven resyncs flow through on_resync, so the
        # cache is exact (per-process accepted rounds only ever grow).
        self._round_floor: dict[int, int] = {}
        self._completed = 0
        self._crash_ceiling = math.inf

    @property
    def trace(self) -> Trace:
        """The :class:`Trace` being recorded (live; finalized by :meth:`finalize`)."""
        return self._trace

    def process_trace(self, pid: int) -> ProcessTrace:
        """Process ``pid``'s piecewise-linear trace."""
        return self._trace.processes[pid]

    def register_process(self, pid: int, clock: "HardwareClock", faulty: bool = False) -> None:
        """Open a per-process trace; honest processes join round tracking."""
        self._trace.add_process(pid, clock, faulty=faulty)
        if not faulty:
            self._round_floor[pid] = 0
            self._completed = 0

    def on_adjustment(self, pid: int, time: float, adjustment: float) -> None:
        """Append the adjustment breakpoint to ``pid``'s trace."""
        self._trace.record_adjustment(pid, time, adjustment)

    def on_resync(self, event: ResyncEvent) -> None:
        """Record the acceptance and advance the completed-round floor."""
        self._trace.record_resync(event)
        old = self._round_floor.get(event.pid)
        if old is not None and event.round > old:
            self._round_floor[event.pid] = event.round
            if old == self._completed:
                self._completed = min(self._round_floor.values())
            self._check_round_target(event.time)

    def on_crash(self, pid: int, time: float) -> None:
        """Record the halt and cap the completable-round ceiling."""
        self._trace.record_crash(pid, time)
        floor = self._round_floor.get(pid)
        if floor is not None and floor < self._crash_ceiling:
            # A crashed honest process never accepts again, so rounds above
            # its progress can never be completed by every honest process.
            self._crash_ceiling = floor

    def on_note(self, text: str) -> None:
        """Append the annotation to the trace."""
        self._trace.note(text)

    def min_completed_round(self) -> int:
        """Largest round accepted by every honest process (0 if none)."""
        return self._completed if self._round_floor else 0

    def finalize(self, end_time: float, network_stats: "NetworkStats") -> Trace:
        """Stamp the end time and message statistics; return the trace."""
        self._trace.end_time = end_time
        self._trace.total_messages = network_stats.total_messages
        self._trace.message_stats = dict(network_stats.messages_by_type)
        return self._trace


# ---------------------------------------------------------------------------
# Online (streaming) metrics
# ---------------------------------------------------------------------------


class _ProcState:
    """O(1) per-process streaming state of :class:`OnlineMetricsRecorder`."""

    __slots__ = (
        "pid",
        "clock",
        "faulty",
        "adj",
        "resync_count",
        "prev_resync_time",
        "min_round",
        "max_round",
        "first_gap",
        "crashed",
        "bp_seq",
        "bp_idx",
        "value_at_steady",
        "env_max_g",
        "env_drawdown",
        "env_min_h",
        "env_rise",
        "win_t",
        "win_v",
    )

    def __init__(self, pid: int, clock: "HardwareClock", faulty: bool) -> None:
        self.pid = pid
        self.clock = clock
        self.faulty = faulty
        self.adj = 0.0
        self.resync_count = 0
        self.prev_resync_time = 0.0
        self.min_round = 0
        self.max_round = 0
        self.first_gap: Optional[int] = None
        self.crashed = False
        self.bp_seq = clock.breakpoints()
        self.bp_idx = 0
        self.value_at_steady = 0.0
        # Envelope drawdown/run-up state (see analysis.envelope.fit_envelope).
        self.env_max_g = float("-inf")
        self.env_drawdown = 0.0
        self.env_min_h = float("inf")
        self.env_rise = 0.0
        # Steady-window breakpoint samples retained for the exact window-rate
        # pass (empty unless the recorder tracks window rates).
        self.win_t: list = []
        self.win_v: list = []


@dataclass(frozen=True)
class OnlineMetricsSummary:
    """Scalar measurements streamed by :class:`OnlineMetricsRecorder`.

    Field-for-field, each value equals what the full-trace pipeline computes
    (:mod:`repro.analysis.metrics` / :mod:`repro.analysis.envelope`) for the
    same execution; ``tests/test_recorder_parity.py`` asserts exact equality.
    This includes the window-rate extremes: the recorder retains the
    steady-window breakpoint samples and runs the same hull-bounded
    maximum-average-segment pass the post-hoc analysis uses
    (:func:`repro.analysis.envelope.window_rate_extremes`), so they too are
    float-for-float identical.  They are ``None`` only when the recorder was
    built with ``window_rates=False`` or the steady interval is empty.

    Summaries form a merge algebra (see :meth:`merge` /
    :func:`merge_summaries`): summaries of *independent* executions -- the
    replications of one configuration, or disjoint process groups under one
    fault strategy -- fold into the summary a single observer of the combined
    system would report, which is what lets the sharded backend
    (:mod:`repro.runner.sharded`) split the replication axis across worker
    processes without changing any measured value.
    """

    end_time: float
    steady_start: float
    steady_skew: float
    overall_skew: float
    period_min: float
    period_max: float
    period_count: int
    acceptance_spread: float
    max_adjustment: Optional[float]
    max_backward_adjustment: float
    completed_round: int
    max_round: int
    #: One ``(first, last, first_gap)`` entry per honest process, ``None``
    #: for a process that never resynchronized.
    liveness_triples: tuple
    slowest_long_run_rate: Optional[float]
    fastest_long_run_rate: Optional[float]
    slowest_window_rate: Optional[float]
    fastest_window_rate: Optional[float]
    envelope_a: Optional[float]
    envelope_b: Optional[float]
    worst_offset_from_real_time: Optional[float]
    total_messages: int
    message_stats: dict
    notes: list
    #: One ``(times, values, long_run_rate)`` triple per honest process --
    #: the steady-window breakpoint samples the window-rate hull pass ran
    #: over, retained so :meth:`merge` can re-run that pass over the union.
    #: ``None`` unless the recorder was built with ``mergeable=True``; the
    #: sharded runner strips it from final results to keep them lean.
    window_samples: Optional[tuple] = None
    #: Every K-th message's :class:`MessageSample`, in send order; ``None``
    #: unless the recorder was built with ``sample_messages=K``.  Merging
    #: concatenates in input order, so a distributed run ships a bounded
    #: message-level trace home alongside its scalar metrics.
    message_samples: Optional[tuple] = None

    def liveness(self, expected_round: int) -> bool:
        """Exact replica of :func:`repro.analysis.metrics.liveness`.

        Accepted rounds are strictly increasing per process, so contiguity
        plus the extremes in :attr:`liveness_triples` determine subset
        membership of the needed round range.
        """
        for triple in self.liveness_triples:
            if triple is None:
                return False
            first, last, first_gap = triple
            start = max(first, 1)
            if start > expected_round:
                continue  # needed range is empty for this process
            if last < expected_round:
                return False
            if first_gap is not None and first_gap <= expected_round:
                return False
        return True

    def messages_per_round(self) -> float:
        """Exact replica of :func:`repro.analysis.metrics.messages_per_completed_round`."""
        if self.completed_round <= 0:
            return float(self.total_messages)
        return self.total_messages / self.completed_round

    def long_run_rates(self, period: float) -> Optional[tuple[float, float]]:
        """(slowest, fastest) long-run rates, or None if the steady interval
        is too short (not longer than one resynchronization ``period``) for
        accuracy to be meaningful -- the same availability gate the
        full-trace pipeline applies."""
        if self.end_time - self.steady_start > period and self.slowest_long_run_rate is not None:
            return (self.slowest_long_run_rate, self.fastest_long_run_rate)
        return None

    def merge(self, other: "OnlineMetricsSummary") -> "OnlineMetricsSummary":
        """Fold two summaries of independent executions into one.

        See :func:`merge_summaries` for the semantics; ``a.merge(b)`` is
        ``merge_summaries([a, b])``.
        """
        return merge_summaries([self, other])

    def compact(self) -> "OnlineMetricsSummary":
        """This summary without the retained merge samples (identical metrics)."""
        if self.window_samples is None:
            return self
        import dataclasses

        return dataclasses.replace(self, window_samples=None)


def _opt_min(values) -> Optional[float]:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _opt_max(values) -> Optional[float]:
    present = [v for v in values if v is not None]
    return max(present) if present else None


def merge_summaries(summaries) -> OnlineMetricsSummary:
    """Fold summaries of independent executions into one combined summary.

    The inputs must observe *disjoint* process populations -- independent
    replications of one configuration, or non-interacting process groups
    under the same fault strategy.  The result is the summary one observer of
    the union system would report:

    * worst-case quantities (skews, acceptance spread, adjustment magnitudes,
      envelope constants, real-time offset) max-combine,
    * the globally completed round min-combines (every process of every group
      must accept it), ``max_round`` max-combines,
    * resynchronization-period extremes min/max-combine and their interval
      counts, message counts and per-type message stats sum,
    * per-process liveness triples, notes, retained window samples and
      sampled message summaries concatenate in input order,
    * the steady interval is the union system's: it starts when the *last*
      group became steady and ends at the *latest* end time, and the
      long-run-rate extremes min/max-combine,
    * the window-rate extremes are re-derived by running the exact hull pass
      (:func:`repro.analysis.envelope.combined_window_extremes`) over the
      union of every group's retained breakpoint samples with the combined
      steady interval's quarter-width minimum window -- not by combining the
      per-group extremes, whose minimum windows differ.

    Every combining operation is exact (float min/max, integer sums, ordered
    concatenation) and the window-rate pass is re-derived from raw samples at
    every fold, so the fold is associative and -- up to the order of the
    concatenated sequences -- commutative: any shard grouping of the same
    replications produces float-for-float the same summary.  When some input
    lacks retained samples (``mergeable=False``), the window-rate extremes
    fall back to min/max-combining the reported per-summary values and the
    merged summary cannot re-derive them on later folds.
    """
    summaries = list(summaries)
    if not summaries:
        raise ValueError("merge_summaries needs at least one summary")
    if len(summaries) == 1:
        return summaries[0]

    end_time = max(s.end_time for s in summaries)
    steady_start = max(s.steady_start for s in summaries)

    if all(s.window_samples is not None for s in summaries):
        window_samples: Optional[tuple] = tuple(
            entry for s in summaries for entry in s.window_samples
        )
        # Deferred import, mirroring finalize(): analysis imports this module.
        from ..analysis.envelope import combined_window_extremes

        extremes = combined_window_extremes(window_samples, steady_start, end_time)
        slowest_win, fastest_win = extremes if extremes is not None else (None, None)
    else:
        window_samples = None
        slowest_win = _opt_min(s.slowest_window_rate for s in summaries)
        fastest_win = _opt_max(s.fastest_window_rate for s in summaries)

    message_stats: dict = {}
    for s in summaries:
        for kind, count in s.message_stats.items():
            message_stats[kind] = message_stats.get(kind, 0) + count

    if all(s.message_samples is None for s in summaries):
        message_samples: Optional[tuple] = None
    else:
        message_samples = tuple(
            sample for s in summaries if s.message_samples is not None for sample in s.message_samples
        )

    return OnlineMetricsSummary(
        end_time=end_time,
        steady_start=steady_start,
        steady_skew=max(s.steady_skew for s in summaries),
        overall_skew=max(s.overall_skew for s in summaries),
        period_min=min(s.period_min for s in summaries),
        period_max=max(s.period_max for s in summaries),
        period_count=sum(s.period_count for s in summaries),
        acceptance_spread=max(s.acceptance_spread for s in summaries),
        max_adjustment=_opt_max(s.max_adjustment for s in summaries),
        max_backward_adjustment=max(s.max_backward_adjustment for s in summaries),
        completed_round=min(s.completed_round for s in summaries),
        max_round=max(s.max_round for s in summaries),
        liveness_triples=tuple(t for s in summaries for t in s.liveness_triples),
        slowest_long_run_rate=_opt_min(s.slowest_long_run_rate for s in summaries),
        fastest_long_run_rate=_opt_max(s.fastest_long_run_rate for s in summaries),
        slowest_window_rate=slowest_win,
        fastest_window_rate=fastest_win,
        envelope_a=_opt_max(s.envelope_a for s in summaries),
        envelope_b=_opt_max(s.envelope_b for s in summaries),
        worst_offset_from_real_time=_opt_max(s.worst_offset_from_real_time for s in summaries),
        total_messages=sum(s.total_messages for s in summaries),
        message_stats=message_stats,
        notes=[note for s in summaries for note in s.notes],
        window_samples=window_samples,
        message_samples=message_samples,
    )


class OnlineMetricsRecorder(Recorder):
    """Stream worst-case-exact metrics in O(n) memory, retaining no history.

    Honest logical clocks are piecewise linear, so all worst-case quantities
    are attained at breakpoints (hardware-clock rate changes and adjustment
    instants).  Instead of storing the history and re-walking it afterwards,
    this recorder evaluates skew and the accuracy envelope *as the
    breakpoints stream past*:

    * a lazy merge (heap) over each clock's static breakpoint sequence
      supplies rate-change instants between adjustment events;
    * adjustments at one instant are batched so the left limit ("just
      before") and the settled value ("just after") are evaluated exactly
      like the post-hoc analysis evaluates both sides of a jump;
    * the accuracy envelope constants use the same one-pass drawdown/run-up
      recursion as :func:`repro.analysis.envelope.fit_envelope`, started at
      the steady-state instant.

    The evaluation points are exactly the post-hoc analysis's evaluation
    points, so every reported metric is float-for-float identical to the
    full-trace pipeline -- not an approximation.

    ``rate_low``/``rate_high`` parameterize the accuracy envelope fit
    (scenarios pass the model's admissible hardware rates); when omitted the
    envelope constants are reported as ``None``.

    ``window_rates`` controls the one measurement that inherently needs
    history: the extreme average rates over windows of at least a quarter of
    the steady interval.  When on (the default), the recorder retains the
    steady-window breakpoint samples -- two floats per adjustment plus one
    per hardware-clock rate change, so memory grows with the number of
    resynchronizations, never with the event count -- and feeds them through
    the same :func:`~repro.analysis.envelope.window_rate_extremes` hull pass
    the post-hoc analysis uses.  ``window_rates=False`` restores strictly
    run-length-independent memory and reports the extremes as ``None``.

    ``mergeable`` makes the finalized summary carry its retained per-process
    window samples (:attr:`OnlineMetricsSummary.window_samples`), which is
    what the shard-merge algebra needs to re-run the window-rate hull pass
    over a union of executions; it requires ``window_rates=True``.  The
    sharded backend runs every replication under a mergeable recorder and
    strips the samples from the final folded summary.

    ``sample_messages=K`` turns on the sampling message trace: every K-th
    network message is retained as a :class:`MessageSample` (sender,
    destination, payload class, send/delivery times -- never the payload),
    giving message-level provenance at 1/K of the memory of a full trace and
    none of the default path's cost when off.  Samples ride home in
    :attr:`OnlineMetricsSummary.message_samples` and concatenate under the
    merge algebra, so distributed and sharded runs can ship a bounded
    message trace back to the parent.

    The recorder observes one run segment: after :meth:`finalize`, new events
    are rejected (re-finalizing at the same end time returns the cached
    summary).  Multi-segment runs that resume after ``run_until`` need the
    full-trace recorder.
    """

    def __init__(
        self,
        rate_low: Optional[float] = None,
        rate_high: Optional[float] = None,
        window_rates: bool = True,
        mergeable: bool = False,
        sample_messages: Optional[int] = None,
    ) -> None:
        if (rate_low is None) != (rate_high is None):
            raise ValueError("rate_low and rate_high must be given together")
        if mergeable and not window_rates:
            raise ValueError("mergeable summaries require window_rates=True")
        if sample_messages is not None and sample_messages < 1:
            raise ValueError(f"sample_messages must be at least 1 (or None to disable), got {sample_messages}")
        self.rate_low = rate_low
        self.rate_high = rate_high
        self.window_rates = window_rates
        self.mergeable = mergeable
        self.sample_messages = sample_messages
        self._messages_seen = 0
        self._message_samples: list[MessageSample] = []
        self._procs: dict[int, _ProcState] = {}
        self._honest: list[_ProcState] = []
        self._sealed = False
        self._finalized: Optional[tuple[float, OnlineMetricsSummary]] = None
        # Merged clock-breakpoint walk.
        self._heap: list[tuple[float, int]] = []
        # Current adjustment batch (all events at one real-time instant).
        self._batch_time: Optional[float] = None
        self._batch_before: dict[int, float] = {}
        self._batch_has_adjustment = False
        self._batch_completes_steady = False
        self._batch_initial = False
        # Skew accumulators.
        self._overall_skew = 0.0
        self._steady_skew = 0.0
        self._steady_start: Optional[float] = None
        self._unsynced = 0
        # Accuracy (active from the steady-state instant on).
        self._worst_offset = 0.0
        # Resynchronization structure.
        self._period_min = float("inf")
        self._period_max = 0.0
        self._period_count = 0
        self._max_adjustment: Optional[float] = None
        self._max_backward = 0.0
        self._acceptance_spread = 0.0
        self._round_times: dict[int, list] = {}  # round -> [min_t, max_t, count]
        self._crash_ceiling = math.inf  # rounds above this can never complete
        # Incrementally maintained min over honest processes of the largest
        # accepted round; read after every event by the engine's stop checks.
        self._min_completed = 0
        self._notes: list[str] = []

    # -- registration --------------------------------------------------------

    def register_process(self, pid: int, clock: "HardwareClock", faulty: bool = False) -> None:
        """Attach a process before the first event; honest ones join skew tracking."""
        if self._sealed:
            raise RecorderError("cannot register processes after the first recorded event")
        if pid in self._procs:
            raise ValueError(f"process {pid} already registered in recorder")
        self._procs[pid] = _ProcState(pid, clock, faulty)

    def _seal(self) -> None:
        if self._sealed:
            return
        self._sealed = True
        self._honest = [self._procs[pid] for pid in sorted(self._procs) if not self._procs[pid].faulty]
        self._unsynced = len(self._honest)
        for index, proc in enumerate(self._honest):
            if proc.bp_seq:
                heapq.heappush(self._heap, (proc.bp_seq[0], index))
                proc.bp_idx = 1
        # The post-hoc analysis always evaluates at t = 0; model that as an
        # implicit batch so any adjustments recorded at 0 settle first.
        self._batch_time = 0.0
        self._batch_initial = True

    # -- exact skew evaluation ----------------------------------------------

    def _skew(self, t: float) -> float:
        """Max pairwise logical-clock difference at ``t`` under current adjustments."""
        if not self._honest:
            return 0.0
        lo = math.inf
        hi = -math.inf
        for proc in self._honest:
            value = proc.clock.read(t) + proc.adj
            if value < lo:
                lo = value
            if value > hi:
                hi = value
        return hi - lo

    def _note_skew(self, t: float, overall: bool, steady: bool) -> None:
        if not self._honest:
            return
        value = self._skew(t)
        if overall and value > self._overall_skew:
            self._overall_skew = value
        if steady and self._steady_start is not None and t >= self._steady_start and value > self._steady_skew:
            self._steady_skew = value

    # -- accuracy envelope (one-pass drawdown/run-up) ------------------------

    def _env_sample(self, proc: _ProcState, t: float, value: float) -> None:
        """Feed one breakpoint sample into the per-process envelope recursion."""
        if self.window_rates:
            # Retain the steady-window samples for the exact window-rate pass
            # at finalize -- the same (time, value) stream the post-hoc
            # analysis enumerates via _clock_samples.
            proc.win_t.append(t)
            proc.win_v.append(value)
        offset = abs(value - t)
        if offset > self._worst_offset:
            self._worst_offset = offset
        if self.rate_low is None:
            return
        g = value - self.rate_low * t
        if g > proc.env_max_g:
            proc.env_max_g = g
        drawdown = proc.env_max_g - g
        if drawdown > proc.env_drawdown:
            proc.env_drawdown = drawdown
        h = value - self.rate_high * t
        if h < proc.env_min_h:
            proc.env_min_h = h
        rise = h - proc.env_min_h
        if rise > proc.env_rise:
            proc.env_rise = rise

    # -- breakpoint walk ------------------------------------------------------

    def _walk(self, limit: float, inclusive: bool = False) -> None:
        """Evaluate at merged clock breakpoints below (or up to) ``limit``."""
        heap = self._heap
        while heap:
            time, index = heap[0]
            if time > limit or (time == limit and not inclusive):
                return
            heapq.heappop(heap)
            proc = self._honest[index]
            if proc.bp_idx < len(proc.bp_seq):
                heapq.heappush(heap, (proc.bp_seq[proc.bp_idx], index))
                proc.bp_idx += 1
            self._note_skew(time, overall=True, steady=True)
            if self._steady_start is not None and time >= self._steady_start:
                self._env_sample(proc, time, proc.clock.read(time) + proc.adj)

    # -- batch machinery ------------------------------------------------------

    def _advance(self, t: float) -> None:
        if self._finalized is not None:
            raise RecorderError(
                "OnlineMetricsRecorder cannot record past finalize(); use trace_level='full' to resume runs"
            )
        self._seal()
        if self._batch_time is not None:
            if t < self._batch_time:
                raise RuntimeError("recorder events must arrive in time order")
            if t > self._batch_time:
                self._close_batch()
        self._walk(t)

    def _open_batch(self, t: float) -> None:
        if self._batch_time is None:
            self._batch_time = t

    def _close_batch(self) -> None:
        t = self._batch_time
        completes_steady = self._batch_completes_steady
        steady_active = self._steady_start is not None
        if completes_steady:
            # Steady state begins here: seed every honest process's envelope
            # recursion with both sides of the t_start sample, exactly as the
            # post-hoc _clock_samples pass does.
            for proc in self._honest:
                before_adj = self._batch_before.get(proc.pid, proc.adj)
                reading = proc.clock.read(t)
                self._env_sample(proc, t, reading + before_adj)
                after = reading + proc.adj
                self._env_sample(proc, t, after)
                proc.value_at_steady = after
        elif steady_active and t >= self._steady_start:
            for pid, before_adj in self._batch_before.items():
                proc = self._procs[pid]
                reading = proc.clock.read(t)
                self._env_sample(proc, t, reading + before_adj)
                self._env_sample(proc, t, reading + proc.adj)
        if self._batch_has_adjustment or self._batch_initial:
            self._note_skew(t, overall=True, steady=steady_active)
        elif completes_steady:
            # A resynchronization with no clock adjustment (e.g. a pulse of a
            # free-running baseline) is not a breakpoint of the overall range,
            # but it *is* the steady interval's start point.
            self._note_skew(t, overall=False, steady=True)
        self._batch_time = None
        self._batch_before = {}
        self._batch_has_adjustment = False
        self._batch_completes_steady = False
        self._batch_initial = False

    # -- event intake ----------------------------------------------------------

    def on_adjustment(self, pid: int, time: float, adjustment: float) -> None:
        """Fold the adjustment breakpoint into the streaming skew evaluation."""
        proc = self._procs[pid]
        if proc.faulty:
            return
        self._advance(time)
        self._open_batch(time)
        if not self._batch_has_adjustment and not self._batch_initial:
            # Left limit at the first adjustment of this instant (all current
            # adjustments are still the pre-batch ones).  The post-hoc pass
            # evaluates it whenever t lies strictly inside the measured range.
            inside_steady = self._steady_start is not None and time > self._steady_start
            self._note_skew(time, overall=time > 0.0, steady=inside_steady)
        self._batch_has_adjustment = True
        if pid not in self._batch_before:
            self._batch_before[pid] = proc.adj
        proc.adj = adjustment

    def on_resync(self, event: ResyncEvent) -> None:
        """Stream the acceptance: rounds, periods, spreads, adjustment extremes."""
        proc = self._procs[event.pid]
        if proc.faulty:
            return
        t = event.time
        self._advance(t)
        round_ = event.round
        old_floor = proc.max_round if proc.resync_count else 0
        proc.resync_count += 1
        if proc.resync_count == 1:
            proc.min_round = round_
            proc.max_round = round_
            self._unsynced -= 1
            if self._unsynced == 0:
                self._open_batch(t)
                self._batch_completes_steady = True
                self._steady_start = t
        else:
            interval = t - proc.prev_resync_time
            if proc.resync_count >= 3:
                # Interval i sits between resyncs i and i+1; the first
                # interval covers the start-up transient and is skipped.
                if interval < self._period_min:
                    self._period_min = interval
                if interval > self._period_max:
                    self._period_max = interval
                self._period_count += 1
            if round_ > proc.max_round + 1 and proc.first_gap is None:
                proc.first_gap = proc.max_round + 1
            if round_ < proc.min_round:
                proc.min_round = round_
            if round_ > proc.max_round:
                proc.max_round = round_
            adjustment = event.logical_after - event.logical_before
            magnitude = abs(adjustment)
            if self._max_adjustment is None or magnitude > self._max_adjustment:
                self._max_adjustment = magnitude
            backward = -min(0.0, adjustment)
            if backward > self._max_backward:
                self._max_backward = backward
        proc.prev_resync_time = t
        if proc.max_round != old_floor and old_floor == self._min_completed:
            # The advancing process may have been (one of) the laggards
            # pinning the completed round: recompute the min.  Amortized this
            # runs once per round, not once per event.
            self._min_completed = min(p.max_round if p.resync_count else 0 for p in self._honest)
        self._check_round_target(t)
        self._record_acceptance(round_, t)

    def _record_acceptance(self, round_: int, t: float) -> None:
        if round_ > self._crash_ceiling:
            return
        entry = self._round_times.get(round_)
        if entry is None:
            self._round_times[round_] = entry = [t, t, 0]
        if t < entry[0]:
            entry[0] = t
        if t > entry[1]:
            entry[1] = t
        entry[2] += 1
        if entry[2] == len(self._honest):
            spread = entry[1] - entry[0]
            if spread > self._acceptance_spread:
                self._acceptance_spread = spread
            del self._round_times[round_]
            # Rounds at or below the globally completed round that are still
            # incomplete were skipped by someone (acceptances are strictly
            # increasing per process) and can never complete: drop them.
            completed = self.min_completed_round()
            for stale in [r for r in self._round_times if r <= completed]:
                del self._round_times[stale]

    def on_crash(self, pid: int, time: float) -> None:
        """Mark the halt; an honest crash caps the completable-round ceiling."""
        proc = self._procs[pid]
        proc.crashed = True
        if not proc.faulty:
            # A crashed honest process never accepts again: rounds above its
            # progress can never be completed by everyone, so stop tracking.
            ceiling = proc.max_round if proc.resync_count else 0
            if ceiling < self._crash_ceiling:
                self._crash_ceiling = ceiling
                for stale in [r for r in self._round_times if r > ceiling]:
                    del self._round_times[stale]

    def on_message(self, envelope: "Envelope") -> None:
        """Retain every K-th envelope as a :class:`MessageSample` (if sampling)."""
        if self.sample_messages is None:
            return
        if self._messages_seen % self.sample_messages == 0:
            self._message_samples.append(
                MessageSample(
                    msg_id=envelope.msg_id,
                    sender=envelope.sender,
                    dest=envelope.dest,
                    kind=type(envelope.payload).__name__,
                    send_time=envelope.send_time,
                    deliver_time=envelope.deliver_time,
                )
            )
        self._messages_seen += 1

    def ingest_message_samples(self, samples) -> None:
        """Adopt pre-built :class:`MessageSample` rows (vector-kernel replay hook).

        The vectorized kernel (:mod:`repro.sim.vectorized`) computes a run's
        message timeline arithmetically instead of sending one envelope per
        message, so it cannot feed :meth:`on_message` -- instead it selects
        the exact rows the event loop's every-K-th sampling would have kept
        and hands them over here, already ordered.  The rows are appended
        verbatim (they must carry the event loop's ``msg_id`` numbering for
        parity); requires ``sample_messages`` to be enabled and, like every
        intake method, rejects events after :meth:`finalize`.
        """
        if self.sample_messages is None:
            raise RecorderError(
                "ingest_message_samples requires sample_messages to be enabled"
            )
        if self._finalized is not None:
            raise RecorderError(
                "OnlineMetricsRecorder cannot record past finalize(); "
                "use trace_level='full' to resume runs"
            )
        self._message_samples.extend(samples)

    def on_note(self, text: str) -> None:
        """Append the annotation; notes concatenate under the merge algebra."""
        self._notes.append(text)

    def min_completed_round(self) -> int:
        """Largest round accepted by every honest process (0 if none)."""
        return self._min_completed

    # -- finalization -----------------------------------------------------------

    def finalize(self, end_time: float, network_stats: "NetworkStats") -> OnlineMetricsSummary:
        """Close the streams at ``end_time`` and build the immutable summary.

        Idempotent at the same end time; re-finalizing at a different one is
        an error (streaming state cannot be rewound -- use a full trace for
        resumable runs).
        """
        if self._finalized is not None:
            finalized_at, summary = self._finalized
            if end_time == finalized_at:
                return summary
            raise RecorderError(
                "OnlineMetricsRecorder was already finalized at a different end time; "
                "use trace_level='full' for runs resumed with multiple run_until calls"
            )
        self._seal()
        if self._batch_time is not None:
            self._close_batch()
        self._walk(end_time, inclusive=True)

        steady_reached = self._steady_start is not None
        self._note_skew(end_time, overall=True, steady=steady_reached)
        if not steady_reached:
            # Matches metrics.steady_state_start: the steady interval
            # degenerates to the single point t = end_time.
            self._steady_skew = self._skew(end_time)

        slowest_lr = fastest_lr = envelope_a = envelope_b = worst_offset = None
        slowest_win = fastest_win = None
        window_samples: Optional[tuple] = () if self.mergeable else None
        if steady_reached and end_time > self._steady_start:
            # Deferred import: the analysis package imports this module (for
            # OnlineMetricsSummary), so the hull pass cannot be a top-level
            # dependency without creating an import cycle.
            from ..analysis.envelope import combined_window_extremes

            span = end_time - self._steady_start
            slowest_lr = math.inf
            fastest_lr = -math.inf
            envelope_a = 0.0
            envelope_b = 0.0
            entries = []
            for proc in self._honest:
                value = proc.clock.read(end_time) + proc.adj
                self._env_sample(proc, end_time, value)
                rate = (value - proc.value_at_steady) / span
                slowest_lr = min(slowest_lr, rate)
                fastest_lr = max(fastest_lr, rate)
                if self.window_rates:
                    # The hull pass falls back to the long-run rate for a
                    # process whose samples admit no quarter-span window,
                    # exactly like the post-hoc analysis.  Only mergeable
                    # summaries retain the samples, so only they pay for
                    # immutable copies.
                    if self.mergeable:
                        entries.append((tuple(proc.win_t), tuple(proc.win_v), rate))
                    else:
                        entries.append((proc.win_t, proc.win_v, rate))
                if self.rate_low is not None:
                    envelope_a = max(envelope_a, proc.env_drawdown)
                    envelope_b = max(envelope_b, proc.env_rise)
            if self.window_rates:
                extremes = combined_window_extremes(entries, self._steady_start, end_time)
                if extremes is not None:
                    slowest_win, fastest_win = extremes
                if self.mergeable:
                    window_samples = tuple(entries)
            if self.rate_low is None:
                envelope_a = envelope_b = None
            worst_offset = self._worst_offset

        triples = tuple(
            (proc.min_round, proc.max_round, proc.first_gap) if proc.resync_count else None
            for proc in self._honest
        )
        summary = OnlineMetricsSummary(
            end_time=end_time,
            steady_start=self._steady_start if steady_reached else end_time,
            steady_skew=self._steady_skew,
            overall_skew=self._overall_skew,
            period_min=self._period_min,
            period_max=self._period_max,
            period_count=self._period_count,
            acceptance_spread=self._acceptance_spread,
            max_adjustment=self._max_adjustment,
            max_backward_adjustment=self._max_backward,
            completed_round=self.min_completed_round(),
            max_round=max((p.max_round for p in self._honest if p.resync_count), default=0),
            liveness_triples=triples,
            slowest_long_run_rate=slowest_lr,
            fastest_long_run_rate=fastest_lr,
            slowest_window_rate=slowest_win,
            fastest_window_rate=fastest_win,
            envelope_a=envelope_a,
            envelope_b=envelope_b,
            worst_offset_from_real_time=worst_offset,
            total_messages=network_stats.total_messages,
            message_stats=dict(network_stats.messages_by_type),
            notes=list(self._notes),
            window_samples=window_samples,
            message_samples=tuple(self._message_samples) if self.sample_messages is not None else None,
        )
        self._finalized = (end_time, summary)
        return summary

    # -- introspection -----------------------------------------------------------

    def retained_state_size(self) -> int:
        """Number of dynamically retained bookkeeping entries.

        Used by tests and benchmarks to demonstrate that the streaming core
        stays O(n): unlike a full trace, this count does not grow with run
        length.  The optional window-rate sample buffer is accounted
        separately (:meth:`retained_window_samples`) because it necessarily
        grows with the number of resynchronizations -- though never with the
        event count, and not at all under ``window_rates=False``.
        """
        return (
            len(self._procs)
            + len(self._heap)
            + len(self._batch_before)
            + len(self._round_times)
            + len(self._notes)
        )

    def retained_window_samples(self) -> int:
        """Breakpoint samples retained for the exact window-rate pass.

        Zero with ``window_rates=False``; otherwise two samples per
        adjustment plus one per hardware-clock rate change inside the steady
        window (proportional to rounds completed, independent of how many
        messages each round took).
        """
        return sum(len(proc.win_t) for proc in self._procs.values())

    def retained_message_samples(self) -> int:
        """Sampled message summaries retained (0 with ``sample_messages=None``;
        otherwise one per ``sample_messages`` network messages)."""
        return len(self._message_samples)
